//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning
//! API: `lock()` returns a guard directly (a poisoned std lock is
//! recovered rather than propagated). Only the subset this workspace
//! uses is provided.
#![forbid(unsafe_code)]

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
