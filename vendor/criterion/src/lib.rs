//! Offline stand-in for the `criterion` crate.
//!
//! Provides the harness surface the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `Criterion`,
//! `benchmark_group`, `Bencher::iter`/`iter_batched`, `BatchSize`)
//! with a simple timer: each benchmark runs a short warmup plus a
//! fixed sample and prints the mean wall-clock per iteration. No
//! statistical analysis, HTML reports, or CLI filtering.
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How batched inputs are grouped; accepted for API compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Re-export so `criterion::black_box` callers work too.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        b.report(id);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    pub fn final_summary(&self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size(n);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, f);
        self
    }

    pub fn finish(self) {}
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        black_box(routine()); // warmup, untimed
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    fn report(&self, id: &str) {
        let per_iter = self.elapsed.as_secs_f64() / self.iters.max(1) as f64;
        println!(
            "{id:<48} {:>12.3} µs/iter ({} iters)",
            per_iter * 1e6,
            self.iters
        );
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut runs = 0u32;
        c.bench_function("smoke/add", |b| {
            b.iter(|| {
                runs += 1;
                black_box(2u64 + 2)
            })
        });
        assert_eq!(runs, 4, "warmup + 3 samples");
    }

    #[test]
    fn groups_apply_sample_size_and_batching() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        let mut setups = 0u32;
        g.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8, 2, 3]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
        assert_eq!(setups, 3, "warmup + 2 samples");
    }
}
