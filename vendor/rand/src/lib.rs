//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The reproduction container has no package registry, so the corpus
//! generator's randomness comes from this vendored implementation. It
//! mirrors the algorithms `rand` 0.8 uses for the subset we call so
//! seeded streams stay faithful to upstream:
//!
//! - `StdRng` is ChaCha12 with a 64-bit block counter and 64-bit
//!   stream id (both zero), buffering four blocks at a time exactly
//!   like `rand_chacha`'s `BlockRng` (including the `next_u64`
//!   straddle behaviour at the end of the 64-word buffer).
//! - `SeedableRng::seed_from_u64` expands the seed with the same
//!   PCG32-style generator as `rand_core`.
//! - `gen_range` uses widening-multiply (Lemire) rejection sampling
//!   with upstream's zone computation per integer width.
//! - `gen_bool` compares a `u64` draw against `(p * 2^64) as u64`.
//! - `shuffle` is the same reverse Fisher–Yates over `gen_range(0..=i)`.
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// A generator seedable from fixed-size keys or a `u64`.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with `rand_core`'s PCG32-based
    /// expansion (so streams match upstream `seed_from_u64`).
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing generation methods, blanket-implemented for any core.
pub trait Rng: RngCore {
    fn gen<T: StandardDist>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        if p == 1.0 {
            return true;
        }
        // Upstream scales by 2^64 and compares against a u64 draw.
        let p_int = (p * (2.0f64.powi(64))) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types drawable from the "standard" (full-width uniform) distribution.
pub trait StandardDist: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_from_u32 {
    ($($ty:ty),*) => {$(
        impl StandardDist for $ty {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u32() as $ty
            }
        }
    )*};
}

macro_rules! standard_from_u64 {
    ($($ty:ty),*) => {$(
        impl StandardDist for $ty {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

standard_from_u32!(u8, u16, u32, i8, i16, i32);
standard_from_u64!(u64, i64, usize, isize);

impl StandardDist for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Types `gen_range` can sample uniformly.
pub trait SampleUniform: Sized {
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// Range forms accepted by `gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_single_inclusive(start, end, rng)
    }
}

macro_rules! uniform_int_impl {
    ($ty:ty, $unsigned:ty, $u_large:ty, $wide:ty, $next:ident) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "gen_range: low >= high");
                Self::sample_single_inclusive(low, high - 1, rng)
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                assert!(low <= high, "gen_range: low > high");
                // Upstream computes the span in the native type (so a
                // full-range request wraps to zero), then widens.
                let range = high.wrapping_sub(low).wrapping_add(1) as $unsigned as $u_large;
                if range == 0 {
                    return rng.$next() as $ty;
                }
                let zone = if (<$unsigned>::MAX as $u_large) <= u16::MAX as $u_large {
                    // Small widths: modulus-derived zone.
                    let ints_to_reject = (<$u_large>::MAX - range + 1) % range;
                    <$u_large>::MAX - ints_to_reject
                } else {
                    // Lemire-style bitmask zone.
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v = rng.$next() as $u_large;
                    let t = (v as $wide) * (range as $wide);
                    let hi = (t >> <$u_large>::BITS) as $u_large;
                    let lo = t as $u_large;
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

uniform_int_impl!(u8, u8, u32, u64, next_u32);
uniform_int_impl!(i8, u8, u32, u64, next_u32);
uniform_int_impl!(u16, u16, u32, u64, next_u32);
uniform_int_impl!(i16, u16, u32, u64, next_u32);
uniform_int_impl!(u32, u32, u32, u64, next_u32);
uniform_int_impl!(i32, u32, u32, u64, next_u32);
uniform_int_impl!(u64, u64, u64, u128, next_u64);
uniform_int_impl!(i64, u64, u64, u128, next_u64);
uniform_int_impl!(usize, usize, usize, u128, next_u64);
uniform_int_impl!(isize, usize, usize, u128, next_u64);

impl SampleUniform for f64 {
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        // 53-bit mantissa scaling, as upstream's UniformFloat single draw.
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + unit * (high - low)
    }

    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
        Self::sample_single(low, high, rng)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    const BUF_WORDS: usize = 64; // four ChaCha blocks, as rand_chacha buffers

    /// The `rand` 0.8 standard generator: ChaCha with 12 rounds.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        key: [u32; 8],
        counter: u64,
        buf: [u32; BUF_WORDS],
        index: usize,
    }

    impl StdRng {
        fn refill(&mut self) {
            for block in 0..4 {
                let out = chacha12_block(&self.key, self.counter.wrapping_add(block as u64));
                self.buf[block * 16..(block + 1) * 16].copy_from_slice(&out);
            }
            self.counter = self.counter.wrapping_add(4);
            self.index = 0;
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut key = [0u32; 8];
            for (i, k) in key.iter_mut().enumerate() {
                let mut w = [0u8; 4];
                w.copy_from_slice(&seed[i * 4..i * 4 + 4]);
                *k = u32::from_le_bytes(w);
            }
            StdRng {
                key,
                counter: 0,
                buf: [0; BUF_WORDS],
                index: BUF_WORDS,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            if self.index >= BUF_WORDS {
                self.refill();
            }
            let v = self.buf[self.index];
            self.index += 1;
            v
        }

        // Mirrors rand_core's BlockRng::next_u64, including the
        // straddle at the end of the 64-word buffer.
        fn next_u64(&mut self) -> u64 {
            let index = self.index;
            if index < BUF_WORDS - 1 {
                self.index += 2;
                (self.buf[index] as u64) | ((self.buf[index + 1] as u64) << 32)
            } else if index >= BUF_WORDS {
                self.refill();
                self.index = 2;
                (self.buf[0] as u64) | ((self.buf[1] as u64) << 32)
            } else {
                let lo = self.buf[BUF_WORDS - 1] as u64;
                self.refill();
                self.index = 1;
                ((self.buf[0] as u64) << 32) | lo
            }
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(4) {
                let w = self.next_u32().to_le_bytes();
                chunk.copy_from_slice(&w[..chunk.len()]);
            }
        }
    }

    fn chacha12_block(key: &[u32; 8], counter: u64) -> [u32; 16] {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(key);
        state[12] = counter as u32;
        state[13] = (counter >> 32) as u32;
        // words 14..16: stream id, zero for seed_from_u64 streams

        let mut w = state;
        for _ in 0..6 {
            quarter(&mut w, 0, 4, 8, 12);
            quarter(&mut w, 1, 5, 9, 13);
            quarter(&mut w, 2, 6, 10, 14);
            quarter(&mut w, 3, 7, 11, 15);
            quarter(&mut w, 0, 5, 10, 15);
            quarter(&mut w, 1, 6, 11, 12);
            quarter(&mut w, 2, 7, 8, 13);
            quarter(&mut w, 3, 4, 9, 14);
        }
        for (wi, si) in w.iter_mut().zip(state.iter()) {
            *wi = wi.wrapping_add(*si);
        }
        w
    }

    fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }
}

pub mod seq {
    use super::{RngCore, SampleUniform};

    /// Slice extensions: shuffling and random element choice.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Reverse Fisher–Yates, identical to upstream's stream.
            for i in (1..self.len()).rev() {
                let j = gen_index(rng, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[gen_index(rng, self.len())])
            }
        }
    }

    /// Uniform index below `ubound`, using upstream's u32 fast path for
    /// small bounds (this choice is visible in the random stream).
    fn gen_index<R: RngCore + ?Sized>(rng: &mut R, ubound: usize) -> usize {
        if ubound <= u32::MAX as usize {
            u32::sample_single(0, ubound as u32, rng) as usize
        } else {
            usize::sample_single(0, ubound, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(0u64..10_000_000_000);
            assert!(v < 10_000_000_000);
            let w = rng.gen_range(2..=4usize);
            assert!((2..=4).contains(&w));
            let x = rng.gen_range(0..6);
            assert!((0..6).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.75)).count();
        assert!((7_000..8_000).contains(&hits), "got {hits}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn shuffle_permutes_in_place() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }

    #[test]
    fn next_u64_straddles_buffer_boundary() {
        // Drain 63 words, then force the split low/high read.
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..63 {
            rng.gen::<u32>();
        }
        let _ = rng.gen::<u64>();
        let _ = rng.gen::<u64>();
    }
}
