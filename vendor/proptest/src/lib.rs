//! Offline stand-in for the `proptest` crate.
//!
//! Provides the strategy combinators and macros this workspace's
//! property tests use — `any`, ranges, regex-class string strategies,
//! tuples, `Just`, `prop_oneof!`, `prop_map`, `prop_recursive`,
//! `collection::{vec, btree_map}`, and the `proptest!` /
//! `prop_assert!` macros. Cases are generated from a deterministic
//! per-test seed; failing cases are reported with their index but not
//! shrunk (upstream's shrinking machinery is out of scope for an
//! offline stub).
#![forbid(unsafe_code)]

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }

        /// Build a recursive strategy: `depth` levels of `recurse`
        /// applied over the leaf, each level choosing between a leaf
        /// and a recursive branch. The `_desired_size` and
        /// `_expected_branch` hints exist for upstream signature
        /// compatibility.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                let branch = recurse(cur).boxed();
                cur = Union::new(vec![leaf.clone(), branch]).boxed();
            }
            cur
        }
    }

    /// Object-safe mirror of [`Strategy`] for boxing.
    trait StrategyObj<T> {
        fn generate_obj(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> StrategyObj<S::Value> for S {
        fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply cloneable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn StrategyObj<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_obj(rng)
        }
    }

    /// `prop_map` combinator.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Marker strategy for `any::<T>()`.
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Full-range uniform strategy over `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next() as $ty
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next() & 1 == 1
        }
    }

    macro_rules! range_strategy_int {
        ($($ty:ty),*) => {$(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add(rng.below(span) as $ty)
                }
            }
        )*};
    }

    range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let unit = (rng.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    /// String strategies from a `[class]{m,n}` regex subset.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let (chars, lo, hi) = parse_class_pattern(self);
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len)
                .map(|_| chars[rng.below(chars.len() as u64) as usize])
                .collect()
        }
    }

    /// Parse `[class]{m,n}` into the expanded character set and length
    /// bounds. Supports ranges (`a-z`), escapes (`\\`, `\-`, `\"`,
    /// `\n`, `\t`), and literal characters (including a trailing `-`).
    fn parse_class_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
        let chars: Vec<char> = pattern.chars().collect();
        assert!(
            chars.first() == Some(&'['),
            "unsupported pattern {pattern:?}: expected [class]{{m,n}}"
        );
        let mut set = Vec::new();
        let mut i = 1;
        while i < chars.len() && chars[i] != ']' {
            let c = if chars[i] == '\\' {
                i += 1;
                match chars[i] {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                }
            } else {
                chars[i]
            };
            // `x-y` range when `-` sits between two class members.
            if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                let hi = chars[i + 2];
                for v in (c as u32)..=(hi as u32) {
                    set.push(char::from_u32(v).expect("class range within valid chars"));
                }
                i += 3;
            } else {
                set.push(c);
                i += 1;
            }
        }
        assert!(i < chars.len(), "unterminated class in {pattern:?}");
        let rest: String = chars[i + 1..].iter().collect();
        let bounds = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or_else(|| panic!("unsupported repetition in {pattern:?}"));
        let (lo, hi) = match bounds.split_once(',') {
            Some((l, h)) => (l.parse().expect("min"), h.parse().expect("max")),
            None => {
                let n = bounds.parse().expect("count");
                (n, n)
            }
        };
        assert!(!set.is_empty(), "empty character class in {pattern:?}");
        (set, lo, hi)
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident . $idx:tt),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Vec of `element` values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// BTreeMap with up to `size` entries (duplicate keys collapse).
    pub fn btree_map<K, V>(keys: K, values: V, size: Range<usize>) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy { keys, values, size }
    }

    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: Range<usize>,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span.max(1)) as usize;
            (0..len)
                .map(|_| (self.keys.generate(rng), self.values.generate(rng)))
                .collect()
        }
    }
}

pub mod test_runner {
    /// Deterministic splitmix64 generator driving case generation.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from the test name so runs are
        /// reproducible without a persistence file.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        #[allow(clippy::should_implement_trait)]
        pub fn next(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `0..n` (`n > 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            // Widening-multiply rejection keeps the draw unbiased.
            let zone = (n << n.leading_zeros()).wrapping_sub(1);
            loop {
                let v = self.next();
                let t = (v as u128) * (n as u128);
                if (t as u64) <= zone {
                    return (t >> 64) as u64;
                }
            }
        }
    }

    /// Failure raised by `prop_assert!` family.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// Cases generated per `proptest!` test.
pub const NUM_CASES: u32 = 64;

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..$crate::NUM_CASES {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("{} failed at case {}: {}", stringify!($name), case, e);
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn class_pattern_generates_in_alphabet() {
        let mut rng = TestRng::deterministic("class");
        for _ in 0..200 {
            let s = "[a-z0-9_\\-]{1,10}".generate(&mut rng);
            assert!((1..=10).contains(&s.len()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-'));
        }
    }

    #[test]
    fn escape_class_includes_whitespace_escapes() {
        let mut rng = TestRng::deterministic("esc");
        let mut seen_nl = false;
        for _ in 0..500 {
            let s = "[\n\t\\\\\"]{4,4}".generate(&mut rng);
            assert_eq!(s.len(), 4);
            assert!(s.chars().all(|c| "\n\t\\\"".contains(c)));
            seen_nl |= s.contains('\n');
        }
        assert!(seen_nl);
    }

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let mut rng = TestRng::deterministic("compose");
        let strat = (0u8..16, -(1i16 << 13)..(1i16 << 13)).prop_map(|(a, b)| (a, b));
        for _ in 0..100 {
            let (a, b) = strat.generate(&mut rng);
            assert!(a < 16);
            assert!((-(1i16 << 13)..(1i16 << 13)).contains(&b));
        }
    }

    proptest! {
        #[test]
        fn macro_smoke(v in crate::collection::vec(any::<u8>(), 0..8), flag in any::<bool>()) {
            prop_assert!(v.len() < 8);
            prop_assert_eq!(flag, flag);
        }

        #[test]
        fn oneof_and_just(x in prop_oneof![Just(1u32), Just(2u32), 5u32..9]) {
            prop_assert!(x == 1 || x == 2 || (5..9).contains(&x));
        }
    }
}
