//! Offline stand-in for the `bytes` crate.
//!
//! The registry is unreachable in the reproduction container, so the
//! workspace vendors the small API subset it actually uses: [`Bytes`],
//! [`BytesMut`], and the [`Buf`]/[`BufMut`] cursor traits with the
//! little-endian accessors. Semantics match the real crate for this
//! subset (consuming reads from the front, `freeze`, `copy_to_bytes`);
//! the zero-copy `Arc` machinery is intentionally omitted.
#![forbid(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable contiguous slice of memory with a read cursor.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        let v = data.to_vec();
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }

    /// The readable bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"{} bytes\"", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

/// A growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read access to a buffer of bytes, consuming from the front.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Advance the read cursor by `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `cnt` bytes remain (as in the real crate).
    fn advance(&mut self, cnt: usize);

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Consume a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(raw)
    }

    /// Consume a little-endian `i16`.
    fn get_i16_le(&mut self) -> i16 {
        self.get_u16_le() as i16
    }

    /// Consume a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Consume a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    /// Consume a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Consume a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Consume `len` bytes into a new [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes::copy_from_slice(&self.chunk()[..len]);
        self.advance(len);
        out
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.end - self.start
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of buffer");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i16`.
    fn put_i16_le(&mut self, v: i16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u128`.
    fn put_u128_le(&mut self, v: u128) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u16_le(0xBEEF);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_i16_le(-5);
        w.put_f32_le(1.5);
        w.put_f64_le(-2.25);
        w.put_slice(b"xyz");
        let mut r = w.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_i16_le(), -5);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_f64_le(), -2.25);
        assert_eq!(r.remaining(), 3);
        assert_eq!(&*r.copy_to_bytes(3), b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_deref_and_eq() {
        let b = Bytes::copy_from_slice(b"hello");
        assert_eq!(b.len(), 5);
        assert_eq!(&b[1..3], b"el");
        assert_eq!(b, Bytes::copy_from_slice(b"hello"));
        let c = b.clone();
        assert_eq!(c.to_vec(), b"hello");
    }

    #[test]
    fn slice_buf_advances() {
        let mut s: &[u8] = &[1, 2, 3, 4];
        assert_eq!(s.get_u8(), 1);
        assert_eq!(s.get_u16_le(), 0x0302);
        assert_eq!(s.remaining(), 1);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut b = Bytes::copy_from_slice(b"ab");
        b.advance(3);
    }
}
