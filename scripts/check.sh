#!/usr/bin/env bash
# Local tier-1 gate: everything CI would run, in order of increasing
# strictness. Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo doc --no-deps --workspace (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> analysis-cache cold/warm smoke (writes BENCH_cache.json)"
cargo run --release -q -p firmres-bench --bin cache_bench

echo "==> unit-parallel determinism suite (release, 1 and N threads)"
cargo test --release -q --test pipeline_units

echo "==> pipeline scaling bench (writes BENCH_pipeline.json)"
cargo run --release -q -p firmres-bench --bin pipeline_scaling

echo "==> cache smoke against a parallel-produced entry"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
cli() { cargo run --release -q -p firmres-suite --bin firmres-cli -- "$@"; }
cli gen 14 "$smoke_dir/dev14.fwi" > /dev/null
# Cold pass populates the store from a unit-parallel run; the warm pass
# must serve it to a sequential run with an identical report body.
cli analyze "$smoke_dir/dev14.fwi" --cache "$smoke_dir/cache" --jobs 8 > "$smoke_dir/cold.txt"
grep -q 'miss — entry stored' "$smoke_dir/cold.txt"
cli analyze "$smoke_dir/dev14.fwi" --cache "$smoke_dir/cache" > "$smoke_dir/warm.txt"
grep -q 'hit — pipeline skipped' "$smoke_dir/warm.txt"
cmp <(tail -n +2 "$smoke_dir/cold.txt") <(tail -n +2 "$smoke_dir/warm.txt")

echo "==> all checks passed"
