#!/usr/bin/env bash
# Local tier-1 gate: everything CI would run, in order of increasing
# strictness. Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo doc --no-deps --workspace (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> analysis-cache cold/warm smoke (writes BENCH_cache.json)"
cargo run --release -q -p firmres-bench --bin cache_bench

echo "==> all checks passed"
