#!/usr/bin/env bash
# Local tier-1 gate: everything CI would run, in order of increasing
# strictness. Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo doc --no-deps --workspace (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> analysis-cache cold/warm smoke (writes BENCH_cache.json)"
cargo run --release -q -p firmres-bench --bin cache_bench

echo "==> unit-parallel determinism suite (release, 1 and N threads)"
cargo test --release -q --test pipeline_units

echo "==> pipeline scaling bench (writes BENCH_pipeline.json)"
cargo run --release -q -p firmres-bench --bin pipeline_scaling

echo "==> cold-path optimization gate (writes BENCH_coldpath.json)"
# Reference vs optimized cold sweep: asserts every report is
# byte-identical under the cache codec and enforces the 1.5x
# single-thread speedup floor.
cargo run --release -q -p firmres-bench --bin coldpath_bench BENCH_coldpath.json 1.5

echo "==> semantics batching gate (writes BENCH_semantics.json)"
# PR-5 per-slice classification (nested weights, full softmax, per-image
# memo) vs the batched stack over a trained model and a 222-device
# corpus: asserts label identity across all configurations and enforces
# the 1.5x full-stack speedup floor.
cargo run --release -q -p firmres-bench --bin semantics_bench BENCH_semantics.json 1.5

echo "==> incremental re-analysis gate (writes BENCH_incremental.json)"
# Cold vs 1%-mutated re-analysis through the unit-granular store:
# asserts every result is byte-identical to the plain pipeline and
# enforces a 2x speedup floor (the corpus measures ~3.5-4x; a broken
# splice path measures ~1x — see the bench's module docs for what
# bounds the ratio on synthetic images).
cargo run --release -q -p firmres-bench --bin incremental_bench BENCH_incremental.json 2

echo "==> cache smoke against a parallel-produced entry"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
cli() { cargo run --release -q -p firmres-suite --bin firmres-cli -- "$@"; }
cli gen 14 "$smoke_dir/dev14.fwi" > /dev/null
# Cold pass populates the store from a unit-parallel run; the warm pass
# must serve it to a sequential run with an identical report body.
cli analyze "$smoke_dir/dev14.fwi" --cache "$smoke_dir/cache" --jobs 8 > "$smoke_dir/cold.txt"
grep -q 'miss — entry stored' "$smoke_dir/cold.txt"
# The cold run must show the semantics stage going through the batched
# classification layer (counted by the corpus driver, never in the
# report body below the summary line).
grep -q 'batch-classified' "$smoke_dir/cold.txt"
cli analyze "$smoke_dir/dev14.fwi" --cache "$smoke_dir/cache" > "$smoke_dir/warm.txt"
grep -q 'hit — pipeline skipped' "$smoke_dir/warm.txt"
cmp <(tail -n +2 "$smoke_dir/cold.txt") <(tail -n +2 "$smoke_dir/warm.txt")
cli cache-stats "$smoke_dir/cache" | grep -q '1 entry'

echo "==> service smoke (serve → submit → byte-compare → drain)"
# A local analyze is the ground truth the daemon must reproduce exactly.
cli analyze "$smoke_dir/dev14.fwi" > "$smoke_dir/local.txt"
cli serve 127.0.0.1:0 --cache "$smoke_dir/serve-cache" \
    --port-file "$smoke_dir/port" > "$smoke_dir/serve.txt" &
serve_pid=$!
for _ in $(seq 1 200); do
  [ -s "$smoke_dir/port" ] && break
  sleep 0.1
done
addr="$(cat "$smoke_dir/port")"
# The served report must be byte-identical to the local run.
cli submit "$addr" "$smoke_dir/dev14.fwi" > "$smoke_dir/served.txt"
cmp "$smoke_dir/local.txt" "$smoke_dir/served.txt"
# A hash resubmit answers from the daemon's cache without the bytes.
cli submit "$addr" "$smoke_dir/dev14.fwi" --hash --events | grep -q 'served from cache'
cli status "$addr" | grep -q 'served 2 (1 cache hit'
cli drain "$addr" | grep -q 'drained after serving 2 job(s)'
wait "$serve_pid"
grep -q 'served 2 job(s)' "$smoke_dir/serve.txt"

echo "==> incremental service smoke (update submit splices stored units)"
# Submit a firmware version, then a 1%-mutated update of it: the update
# misses the image cache but splices clean units from the previous
# version's bank, and the served report still matches a local
# from-scratch analysis byte-for-byte.
cli gen 10 "$smoke_dir/dev10-v1.fwi" > /dev/null
cli mutate "$smoke_dir/dev10-v1.fwi" "$smoke_dir/dev10-v2.fwi" 1 > /dev/null
cli serve 127.0.0.1:0 --cache "$smoke_dir/incr-cache" \
    --port-file "$smoke_dir/incr-port" > "$smoke_dir/incr-serve.txt" &
incr_pid=$!
for _ in $(seq 1 200); do
  [ -s "$smoke_dir/incr-port" ] && break
  sleep 0.1
done
iaddr="$(cat "$smoke_dir/incr-port")"
cli submit "$iaddr" "$smoke_dir/dev10-v1.fwi" > /dev/null
cli submit "$iaddr" "$smoke_dir/dev10-v2.fwi" > "$smoke_dir/incr-v2.txt"
cli status "$iaddr" | grep -Eq 'units [1-9][0-9]* spliced'
cli drain "$iaddr" > /dev/null
wait "$incr_pid"
cli analyze "$smoke_dir/dev10-v2.fwi" > "$smoke_dir/incr-local.txt"
cmp "$smoke_dir/incr-local.txt" "$smoke_dir/incr-v2.txt"
cli cache-stats "$smoke_dir/incr-cache" | grep -q 'unit artifacts'

echo "==> synthetic fleet + load smoke (synth → serve → load → saturate)"
# A small synthesized fleet must be byte-deterministic at any --jobs
# count, and a bounded load run against a live daemon must finish with
# zero wire/protocol errors while the saturation sweep engages the
# QueueFull admission path. The smoke writes its JSON to the temp dir —
# the committed BENCH_load.json is the full 1000-device run
# (`cargo run --release -p firmres-bench --bin load_bench`).
cli synth 64 "$smoke_dir/fleet-a" --seed 11 --jobs 1 > /dev/null
cli synth 64 "$smoke_dir/fleet-b" --seed 11 --jobs 8 > /dev/null
diff -r "$smoke_dir/fleet-a" "$smoke_dir/fleet-b"
cli serve 127.0.0.1:0 --cache "$smoke_dir/load-cache" \
    --port-file "$smoke_dir/load-port" > "$smoke_dir/load-serve.txt" &
load_pid=$!
for _ in $(seq 1 200); do
  [ -s "$smoke_dir/load-port" ] && break
  sleep 0.1
done
laddr="$(cat "$smoke_dir/load-port")"
cli load "$laddr" "$smoke_dir/fleet-a" --mix bytes --connections 4 \
    > "$smoke_dir/load-cold.txt"
grep -q 'errors 0 wire, 0 protocol' "$smoke_dir/load-cold.txt"
cli load "$laddr" "$smoke_dir/fleet-a" --requests 128 --rate 200 \
    > "$smoke_dir/load-warm.txt"
grep -q 'completed 128 (128 from cache)' "$smoke_dir/load-warm.txt"
grep -q 'latency p50' "$smoke_dir/load-warm.txt"
# Many-connection smoke: 64 concurrent sockets against the daemon's
# fixed 2-thread io pool — every request still answers from cache.
cli load "$laddr" "$smoke_dir/fleet-a" --requests 128 --connections 64 \
    > "$smoke_dir/load-many.txt"
grep -q 'completed 128 (128 from cache)' "$smoke_dir/load-many.txt"
cli drain "$laddr" > /dev/null
wait "$load_pid"
cargo run --release -q -p firmres-bench --bin load_bench -- \
    --devices 64 --rate 200 --out "$smoke_dir/BENCH_load_smoke.json"
test -s "$smoke_dir/BENCH_load_smoke.json"
grep -q '"saturation_connections"' "$smoke_dir/BENCH_load_smoke.json"

echo "==> eviction smoke (budgeted sharded serve keeps the store at budget)"
# A 64-image fleet against a 1 MiB budget overruns the store many times
# over: the collector must keep occupancy at the budget, surface its
# counters through cache-stats, and an evicted image resubmitted later
# must re-derive byte-identically to a local analyze — a miss, never an
# error.
cat > "$smoke_dir/evict.conf" <<'EOF'
[service]
workers = 2

[store]
shards = 4
byte_budget = 1M
EOF
cli serve 127.0.0.1:0 --config "$smoke_dir/evict.conf" \
    --cache "$smoke_dir/evict-cache" \
    --port-file "$smoke_dir/evict-port" > "$smoke_dir/evict-serve.txt" &
evict_pid=$!
for _ in $(seq 1 200); do
  [ -s "$smoke_dir/evict-port" ] && break
  sleep 0.1
done
eaddr="$(cat "$smoke_dir/evict-port")"
cli load "$eaddr" "$smoke_dir/fleet-a" --mix bytes --connections 4 > /dev/null
# The fleet's first image was evicted long ago; resubmitting it is a
# clean miss whose served report matches a from-scratch local run.
cli analyze "$smoke_dir/fleet-a/synth-00000.fwi" > "$smoke_dir/evict-local.txt"
cli submit "$eaddr" "$smoke_dir/fleet-a/synth-00000.fwi" > "$smoke_dir/evict-served.txt"
cmp "$smoke_dir/evict-local.txt" "$smoke_dir/evict-served.txt"
cli drain "$eaddr" > /dev/null
wait "$evict_pid"
cli cache-stats "$smoke_dir/evict-cache" > "$smoke_dir/evict-stats.txt"
grep -q 'evictions:' "$smoke_dir/evict-stats.txt"
grep -q 'per-shard occupancy:' "$smoke_dir/evict-stats.txt"
# Tracked artifacts (.frac/.fru/.frv) ended at or under the 1 MiB budget.
find "$smoke_dir/evict-cache" -type f \
    \( -name '*.frac' -o -name '*.fru' -o -name '*.frv' \) -printf '%s\n' \
  | awk '{ s += $1 } END { exit !(s <= 1048576) }'

echo "==> known-library identification smoke (libid build → analyze → cmp)"
# Index the roster fixture libraries, then analyze a linked device with
# and without the index: the reports must be byte-identical while the
# indexed run actually skips library traversals (counter must be
# nonzero in the cache-stats survey — a zero is a silent regression of
# the whole replay path and fails the gate).
cli libid fixtures "$smoke_dir/libsrc" > /dev/null
cli libid build "$smoke_dir/libsrc" "$smoke_dir/known.flix" > "$smoke_dir/libid-build.txt"
grep -q 'indexed 6 function(s)' "$smoke_dir/libid-build.txt"
cli libid inspect "$smoke_dir/known.flix" | grep -q 'zb_pack'
cli synth 8 "$smoke_dir/libfleet" --seed 11 --libraries > /dev/null
# Device 2 of seed 11 links roster libraries (pinned by the synth
# dimension's determinism; the counter grep below re-verifies it).
libdev="$smoke_dir/libfleet/synth-00002.fwi"
cli analyze "$libdev" > "$smoke_dir/lib-off.txt"
cli analyze "$libdev" --libid "$smoke_dir/known.flix" > "$smoke_dir/lib-on.txt"
cmp "$smoke_dir/lib-off.txt" "$smoke_dir/lib-on.txt"
cli analyze "$libdev" --libid "$smoke_dir/known.flix" --cache "$smoke_dir/lib-cache" > /dev/null
cli cache-stats "$smoke_dir/lib-cache" > "$smoke_dir/lib-stats.txt"
grep -E 'library summaries: [1-9][0-9]* function\(s\) matched, [1-9][0-9]* traversal\(s\) skipped' \
    "$smoke_dir/lib-stats.txt"

echo "==> library summary-replay gate (writes BENCH_libid.json)"
# Off vs On cold sweep over the library-heavy 200-device fleet: asserts
# byte-identical reports under the cache codec and enforces the 1.3x
# taint-stage speedup floor.
cargo run --release -q -p firmres-bench --bin libid_bench BENCH_libid.json 1.3

echo "==> service wire + end-to-end suites (release)"
cargo test --release -q -p firmres-service
cargo test --release -q --test service_end_to_end

echo "==> service cold/warm bench (writes BENCH_service.json)"
cargo run --release -q -p firmres-bench --bin service_bench

echo "==> all checks passed"
