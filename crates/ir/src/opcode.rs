//! The P-Code operation vocabulary.

use std::fmt;

/// Operation codes of the IR, a pragmatic subset of Ghidra P-Code.
///
/// Every opcode documents its operand convention in terms of the
/// `inputs` / `output` fields of [`crate::PcodeOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Opcode {
    /// `output = input0` — move/copy a value.
    Copy,
    /// `output = *input0` — load from the address held in `input0`.
    Load,
    /// `*input0 = input1` — store `input1` to the address held in `input0`.
    Store,
    /// Unconditional branch to the address constant `input0`.
    Branch,
    /// Conditional branch: to `input0` if `input1` is non-zero.
    CBranch,
    /// Indirect branch to the address held in `input0`.
    BranchInd,
    /// Direct call: `input0` is the target address constant, `input1..`
    /// are arguments; `output` receives the return value when present.
    Call,
    /// Indirect call through the value in `input0`; `input1..` are arguments.
    CallInd,
    /// Return from the current function; `input0` (optional) is the value.
    Return,
    /// `output = input0 == input1` (1-byte boolean result).
    IntEqual,
    /// `output = input0 != input1`.
    IntNotEqual,
    /// `output = input0 < input1` (unsigned).
    IntLess,
    /// `output = input0 < input1` (signed).
    IntSLess,
    /// `output = input0 <= input1` (unsigned).
    IntLessEqual,
    /// `output = input0 + input1`.
    IntAdd,
    /// `output = input0 - input1`.
    IntSub,
    /// `output = input0 * input1`.
    IntMult,
    /// `output = input0 / input1` (unsigned; division by zero yields 0 in
    /// analyses, the lifter never emits a trapping form).
    IntDiv,
    /// `output = input0 % input1` (unsigned remainder).
    IntRem,
    /// `output = input0 & input1`.
    IntAnd,
    /// `output = input0 | input1`.
    IntOr,
    /// `output = input0 ^ input1`.
    IntXor,
    /// `output = input0 << input1`.
    IntLeft,
    /// `output = input0 >> input1` (logical).
    IntRight,
    /// `output = input0 >> input1` (arithmetic).
    IntSRight,
    /// `output = -input0` (two's complement negate).
    Int2Comp,
    /// `output = ~input0` (bitwise negate).
    IntNegate,
    /// `output = zext(input0)` to the output size.
    IntZExt,
    /// `output = sext(input0)` to the output size.
    IntSExt,
    /// `output = !input0` (boolean negate).
    BoolNegate,
    /// `output = input0 && input1`.
    BoolAnd,
    /// `output = input0 || input1`.
    BoolOr,
    /// `output = concat(input0, input1)` — piece two values together.
    Piece,
    /// `output = truncate(input0, input1)` — take a sub-piece.
    SubPiece,
    /// `output = input0 + input1 * input2` — pointer arithmetic as emitted
    /// by decompilers for array indexing.
    PtrAdd,
    /// SSA-style merge of `inputs` at a control-flow join. Only produced by
    /// analyses that need it, never by the lifter.
    MultiEqual,
    /// A no-op marker preserving an address (alignment, hints).
    Nop,
}

impl Opcode {
    /// Every opcode, in a stable order. The position of an opcode in this
    /// array is its persistent [`tag`](Opcode::tag) — serializers (e.g.
    /// the analysis cache) rely on the order never being reshuffled; new
    /// opcodes are appended.
    pub const ALL: [Opcode; 37] = [
        Opcode::Copy,
        Opcode::Load,
        Opcode::Store,
        Opcode::Branch,
        Opcode::CBranch,
        Opcode::BranchInd,
        Opcode::Call,
        Opcode::CallInd,
        Opcode::Return,
        Opcode::IntEqual,
        Opcode::IntNotEqual,
        Opcode::IntLess,
        Opcode::IntSLess,
        Opcode::IntLessEqual,
        Opcode::IntAdd,
        Opcode::IntSub,
        Opcode::IntMult,
        Opcode::IntDiv,
        Opcode::IntRem,
        Opcode::IntAnd,
        Opcode::IntOr,
        Opcode::IntXor,
        Opcode::IntLeft,
        Opcode::IntRight,
        Opcode::IntSRight,
        Opcode::Int2Comp,
        Opcode::IntNegate,
        Opcode::IntZExt,
        Opcode::IntSExt,
        Opcode::BoolNegate,
        Opcode::BoolAnd,
        Opcode::BoolOr,
        Opcode::Piece,
        Opcode::SubPiece,
        Opcode::PtrAdd,
        Opcode::MultiEqual,
        Opcode::Nop,
    ];

    /// Stable serialization tag (index into [`Opcode::ALL`]).
    ///
    /// Written as an exhaustive match so adding an `Opcode` variant is a
    /// compile error here — the prompt to append it to [`Opcode::ALL`]
    /// (the `tags_match_all_positions` test pins the two in sync) and to
    /// bump the cache's pipeline version.
    pub fn tag(self) -> u8 {
        match self {
            Opcode::Copy => 0,
            Opcode::Load => 1,
            Opcode::Store => 2,
            Opcode::Branch => 3,
            Opcode::CBranch => 4,
            Opcode::BranchInd => 5,
            Opcode::Call => 6,
            Opcode::CallInd => 7,
            Opcode::Return => 8,
            Opcode::IntEqual => 9,
            Opcode::IntNotEqual => 10,
            Opcode::IntLess => 11,
            Opcode::IntSLess => 12,
            Opcode::IntLessEqual => 13,
            Opcode::IntAdd => 14,
            Opcode::IntSub => 15,
            Opcode::IntMult => 16,
            Opcode::IntDiv => 17,
            Opcode::IntRem => 18,
            Opcode::IntAnd => 19,
            Opcode::IntOr => 20,
            Opcode::IntXor => 21,
            Opcode::IntLeft => 22,
            Opcode::IntRight => 23,
            Opcode::IntSRight => 24,
            Opcode::Int2Comp => 25,
            Opcode::IntNegate => 26,
            Opcode::IntZExt => 27,
            Opcode::IntSExt => 28,
            Opcode::BoolNegate => 29,
            Opcode::BoolAnd => 30,
            Opcode::BoolOr => 31,
            Opcode::Piece => 32,
            Opcode::SubPiece => 33,
            Opcode::PtrAdd => 34,
            Opcode::MultiEqual => 35,
            Opcode::Nop => 36,
        }
    }

    /// Opcode from a serialization tag, `None` for unknown tags.
    pub fn from_tag(t: u8) -> Option<Opcode> {
        Self::ALL.get(t as usize).copied()
    }

    /// Textual mnemonic matching Ghidra's dump style.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Copy => "COPY",
            Opcode::Load => "LOAD",
            Opcode::Store => "STORE",
            Opcode::Branch => "BRANCH",
            Opcode::CBranch => "CBRANCH",
            Opcode::BranchInd => "BRANCHIND",
            Opcode::Call => "CALL",
            Opcode::CallInd => "CALLIND",
            Opcode::Return => "RETURN",
            Opcode::IntEqual => "INT_EQUAL",
            Opcode::IntNotEqual => "INT_NOTEQUAL",
            Opcode::IntLess => "INT_LESS",
            Opcode::IntSLess => "INT_SLESS",
            Opcode::IntLessEqual => "INT_LESSEQUAL",
            Opcode::IntAdd => "INT_ADD",
            Opcode::IntSub => "INT_SUB",
            Opcode::IntMult => "INT_MULT",
            Opcode::IntDiv => "INT_DIV",
            Opcode::IntRem => "INT_REM",
            Opcode::IntAnd => "INT_AND",
            Opcode::IntOr => "INT_OR",
            Opcode::IntXor => "INT_XOR",
            Opcode::IntLeft => "INT_LEFT",
            Opcode::IntRight => "INT_RIGHT",
            Opcode::IntSRight => "INT_SRIGHT",
            Opcode::Int2Comp => "INT_2COMP",
            Opcode::IntNegate => "INT_NEGATE",
            Opcode::IntZExt => "INT_ZEXT",
            Opcode::IntSExt => "INT_SEXT",
            Opcode::BoolNegate => "BOOL_NEGATE",
            Opcode::BoolAnd => "BOOL_AND",
            Opcode::BoolOr => "BOOL_OR",
            Opcode::Piece => "PIECE",
            Opcode::SubPiece => "SUBPIECE",
            Opcode::PtrAdd => "PTRADD",
            Opcode::MultiEqual => "MULTIEQUAL",
            Opcode::Nop => "NOP",
        }
    }

    /// Whether the opcode is a comparison producing a boolean — the
    /// "predicate" operations counted by the request-handler identification
    /// statistic (paper Eq. 1).
    pub fn is_predicate(self) -> bool {
        matches!(
            self,
            Opcode::IntEqual
                | Opcode::IntNotEqual
                | Opcode::IntLess
                | Opcode::IntSLess
                | Opcode::IntLessEqual
                | Opcode::BoolNegate
                | Opcode::BoolAnd
                | Opcode::BoolOr
        )
    }

    /// Whether the opcode transfers control flow.
    pub fn is_control_flow(self) -> bool {
        matches!(
            self,
            Opcode::Branch
                | Opcode::CBranch
                | Opcode::BranchInd
                | Opcode::Call
                | Opcode::CallInd
                | Opcode::Return
        )
    }

    /// Whether the opcode is a direct or indirect call.
    pub fn is_call(self) -> bool {
        matches!(self, Opcode::Call | Opcode::CallInd)
    }

    /// Whether data flows from every input to the output (pure dataflow
    /// ops). Calls, branches and stores are excluded.
    pub fn is_dataflow(self) -> bool {
        !self.is_control_flow() && !matches!(self, Opcode::Store | Opcode::Nop)
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicates_are_comparisons() {
        assert!(Opcode::IntEqual.is_predicate());
        assert!(Opcode::IntSLess.is_predicate());
        assert!(!Opcode::IntAdd.is_predicate());
        assert!(!Opcode::Call.is_predicate());
    }

    #[test]
    fn control_flow_classification() {
        for op in [
            Opcode::Branch,
            Opcode::CBranch,
            Opcode::Call,
            Opcode::Return,
        ] {
            assert!(op.is_control_flow(), "{op}");
            assert!(!op.is_dataflow(), "{op}");
        }
        assert!(Opcode::Copy.is_dataflow());
        assert!(!Opcode::Store.is_dataflow());
    }

    #[test]
    fn call_classification() {
        assert!(Opcode::Call.is_call());
        assert!(Opcode::CallInd.is_call());
        assert!(!Opcode::Branch.is_call());
    }

    #[test]
    fn mnemonics_match_ghidra_style() {
        assert_eq!(Opcode::IntAdd.mnemonic(), "INT_ADD");
        assert_eq!(Opcode::Call.to_string(), "CALL");
        assert_eq!(Opcode::MultiEqual.mnemonic(), "MULTIEQUAL");
    }

    #[test]
    fn tags_round_trip() {
        for op in Opcode::ALL {
            assert_eq!(Opcode::from_tag(op.tag()), Some(op), "{op}");
        }
        assert_eq!(Opcode::from_tag(Opcode::ALL.len() as u8), None);
        // The tag order is a persistence contract: spot-check anchors.
        assert_eq!(Opcode::Copy.tag(), 0);
        assert_eq!(Opcode::Nop.tag(), 36);
    }

    #[test]
    fn tags_match_all_positions() {
        // tag() is an exhaustive match; ALL drives from_tag. This pins
        // the two enumerations to each other, so forgetting to append a
        // new variant to ALL (after the compiler forces a tag) fails
        // here instead of corrupting persisted entries.
        for (i, op) in Opcode::ALL.iter().enumerate() {
            assert_eq!(op.tag() as usize, i, "{op}");
        }
    }
}
