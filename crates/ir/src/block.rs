//! Basic blocks of the control-flow graph.

use crate::program::PcodeOp;
use std::fmt;

/// Index of a basic block within its [`crate::Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// A straight-line run of P-Code operations with a single entry and exits
/// only at the end.
///
/// Blocks are stored inside a [`crate::Function`]; `successors` index into
/// the owning function's block list.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BasicBlock {
    /// Operations in execution order.
    pub ops: Vec<PcodeOp>,
    /// Control-flow successor blocks (0, 1 or 2 entries; indirect branches
    /// may have more once resolved).
    pub successors: Vec<BlockId>,
}

impl BasicBlock {
    /// An empty block with no successors.
    pub fn new() -> Self {
        Self::default()
    }

    /// Address of the first operation, if the block is non-empty.
    pub fn start_address(&self) -> Option<u64> {
        self.ops.first().map(|op| op.addr)
    }

    /// Whether the block ends in a `Return`.
    pub fn is_exit(&self) -> bool {
        self.ops
            .last()
            .is_some_and(|op| op.opcode == crate::Opcode::Return)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Opcode, Varnode};

    #[test]
    fn start_address_and_exit() {
        let mut bb = BasicBlock::new();
        assert_eq!(bb.start_address(), None);
        assert!(!bb.is_exit());
        bb.ops.push(PcodeOp::new(
            0x10,
            Opcode::Copy,
            Some(Varnode::register(1, 4)),
            vec![Varnode::constant(0, 4)],
        ));
        bb.ops
            .push(PcodeOp::new(0x14, Opcode::Return, None, vec![]));
        assert_eq!(bb.start_address(), Some(0x10));
        assert!(bb.is_exit());
    }

    #[test]
    fn block_id_display() {
        assert_eq!(BlockId(3).to_string(), "bb3");
    }
}
