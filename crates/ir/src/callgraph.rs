//! Call graph construction and queries.
//!
//! The FIRMRES executable-identification stage (paper §IV-A) pairs anchor
//! callsites "by their closest distances on the call graph" and walks
//! callers during backward taint analysis (§IV-B); both are served by this
//! module.

use crate::program::is_import_address;
use crate::{Address, Program};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One direct call edge `caller → callee` at a specific callsite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CallEdge {
    /// Entry address of the calling function.
    pub caller: Address,
    /// Target address (function entry or import pseudo-address).
    pub callee: Address,
    /// Address of the call instruction.
    pub callsite: Address,
}

/// The program call graph over direct calls.
///
/// Nodes are function entry addresses plus import pseudo-addresses; edges
/// carry their callsite so analyses can map back to the calling
/// instruction.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    edges: Vec<CallEdge>,
    out: BTreeMap<Address, Vec<usize>>,
    into: BTreeMap<Address, Vec<usize>>,
}

impl CallGraph {
    /// Build the call graph of `program`.
    pub fn build(program: &Program) -> Self {
        let mut g = CallGraph::default();
        for f in program.functions() {
            for op in f.callsites() {
                if let Some(target) = op.call_target() {
                    g.add_edge(CallEdge {
                        caller: f.entry(),
                        callee: target,
                        callsite: op.addr,
                    });
                }
            }
        }
        g
    }

    fn add_edge(&mut self, e: CallEdge) {
        let idx = self.edges.len();
        self.edges.push(e);
        self.out.entry(e.caller).or_default().push(idx);
        self.into.entry(e.callee).or_default().push(idx);
    }

    /// All edges.
    pub fn edges(&self) -> &[CallEdge] {
        &self.edges
    }

    /// Edges leaving `caller`.
    pub fn callees_of(&self, caller: Address) -> impl Iterator<Item = &CallEdge> {
        self.out
            .get(&caller)
            .into_iter()
            .flatten()
            .map(|&i| &self.edges[i])
    }

    /// Edges entering `callee`.
    pub fn callers_of(&self, callee: Address) -> impl Iterator<Item = &CallEdge> {
        self.into
            .get(&callee)
            .into_iter()
            .flatten()
            .map(|&i| &self.edges[i])
    }

    /// Whether any function directly calls `callee`.
    pub fn has_callers(&self, callee: Address) -> bool {
        self.into.get(&callee).is_some_and(|v| !v.is_empty())
    }

    /// Undirected breadth-first distance between two functions, in call
    /// edges, ignoring imports as intermediate hops. `None` when
    /// disconnected.
    ///
    /// Used to pair `recv`-anchor and `send`-anchor callsites by their
    /// closest call-graph distance (paper Fig. 4).
    pub fn distance(&self, a: Address, b: Address) -> Option<usize> {
        if a == b {
            return Some(0);
        }
        let mut seen = BTreeSet::new();
        let mut q = VecDeque::new();
        seen.insert(a);
        q.push_back((a, 0usize));
        while let Some((n, d)) = q.pop_front() {
            let neighbors = self
                .callees_of(n)
                .map(|e| e.callee)
                .chain(self.callers_of(n).map(|e| e.caller));
            for m in neighbors {
                if m == b {
                    return Some(d + 1);
                }
                if is_import_address(m) {
                    continue; // do not route paths through library stubs
                }
                if seen.insert(m) {
                    q.push_back((m, d + 1));
                }
            }
        }
        None
    }

    /// All functions on some directed call path from `from` to `to`
    /// (inclusive), or an empty vector when no path exists.
    ///
    /// The returned sequence is the shortest such path; FIRMRES treats the
    /// "function call sequences between anchor nodes" as candidate request
    /// handlers.
    pub fn path(&self, from: Address, to: Address) -> Vec<Address> {
        if from == to {
            return vec![from];
        }
        let mut prev: BTreeMap<Address, Address> = BTreeMap::new();
        let mut q = VecDeque::new();
        q.push_back(from);
        prev.insert(from, from);
        while let Some(n) = q.pop_front() {
            for e in self.callees_of(n) {
                let m = e.callee;
                if prev.contains_key(&m) || is_import_address(m) && m != to {
                    continue;
                }
                prev.insert(m, n);
                if m == to {
                    let mut path = vec![to];
                    let mut cur = to;
                    while cur != from {
                        cur = prev[&cur];
                        path.push(cur);
                    }
                    path.reverse();
                    return path;
                }
                q.push_back(m);
            }
        }
        Vec::new()
    }

    /// Functions reachable from `root` via directed call edges, including
    /// `root` itself, excluding imports.
    pub fn reachable_from(&self, root: Address) -> BTreeSet<Address> {
        let mut seen = BTreeSet::new();
        let mut q = VecDeque::new();
        seen.insert(root);
        q.push_back(root);
        while let Some(n) = q.pop_front() {
            for e in self.callees_of(n) {
                if is_import_address(e.callee) {
                    continue;
                }
                if seen.insert(e.callee) {
                    q.push_back(e.callee);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FunctionBuilder, Program, Varnode};

    /// main -> parse -> handle, main -> log; handle calls import send.
    fn sample_program() -> Program {
        let mut p = Program::new("t");
        let mut handle = FunctionBuilder::new("handle", 0x3000);
        let buf = handle.local("buf", 4);
        handle.call_import("send", &[buf]);
        handle.ret();
        p.add_function(handle.finish());

        let mut parse = FunctionBuilder::new("parse", 0x2000);
        parse.call_fn(0x3000, &[]);
        parse.ret();
        p.add_function(parse.finish());

        let mut log = FunctionBuilder::new("log", 0x4000);
        log.ret();
        p.add_function(log.finish());

        let mut main = FunctionBuilder::new("main", 0x1000);
        main.call_fn(0x2000, &[]);
        main.call_fn(0x4000, &[Varnode::constant(1, 4)]);
        main.ret();
        p.add_function(main.finish());
        p
    }

    #[test]
    fn edges_and_adjacency() {
        let p = sample_program();
        let g = p.call_graph();
        assert_eq!(g.edges().len(), 4);
        assert_eq!(g.callees_of(0x1000).count(), 2);
        assert_eq!(g.callers_of(0x3000).count(), 1);
        assert!(g.has_callers(0x2000));
        assert!(!g.has_callers(0x1000));
    }

    #[test]
    fn distances_are_undirected() {
        let p = sample_program();
        let g = p.call_graph();
        assert_eq!(g.distance(0x1000, 0x3000), Some(2));
        assert_eq!(g.distance(0x3000, 0x1000), Some(2));
        assert_eq!(g.distance(0x2000, 0x4000), Some(2)); // via main
        assert_eq!(g.distance(0x1000, 0x1000), Some(0));
        assert_eq!(g.distance(0x1000, 0x9999), None);
    }

    #[test]
    fn directed_paths() {
        let p = sample_program();
        let g = p.call_graph();
        assert_eq!(g.path(0x1000, 0x3000), vec![0x1000, 0x2000, 0x3000]);
        assert!(g.path(0x3000, 0x1000).is_empty(), "no reverse path");
        assert_eq!(g.path(0x2000, 0x2000), vec![0x2000]);
    }

    #[test]
    fn reachability_excludes_imports() {
        let p = sample_program();
        let g = p.call_graph();
        let r = g.reachable_from(0x1000);
        assert_eq!(r.len(), 4, "main, parse, handle, log");
        assert!(r.iter().all(|a| !is_import_address(*a)));
    }
}
