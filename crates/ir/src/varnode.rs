//! Varnodes: the storage-location operands of P-Code operations.

use std::fmt;

/// The address space a [`Varnode`] lives in.
///
/// Mirrors Ghidra's space model: `ram` for memory, `register` for processor
/// registers, `unique` for compiler/lifter temporaries, `const` for inline
/// constants, and `stack` for frame-relative locals recovered by the
/// decompiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AddressSpace {
    /// Main memory (code, data segment, heap).
    Ram,
    /// Processor registers.
    Register,
    /// Temporaries introduced during lifting; never aliased.
    Unique,
    /// Inline constants; the varnode offset *is* the value.
    Const,
    /// Stack-frame relative storage (negative offsets are encoded as the
    /// two's-complement `u64`).
    Stack,
}

impl AddressSpace {
    /// Short lowercase name used in textual P-Code dumps.
    pub fn name(self) -> &'static str {
        match self {
            AddressSpace::Ram => "ram",
            AddressSpace::Register => "register",
            AddressSpace::Unique => "unique",
            AddressSpace::Const => "const",
            AddressSpace::Stack => "stack",
        }
    }
}

impl fmt::Display for AddressSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A storage location `(space, offset, size)` — the operand unit of the IR.
///
/// Two varnodes refer to the same storage exactly when they compare equal.
/// This representation deliberately ignores partial overlap (e.g. the low
/// byte of a register): the MR32 lifter in `firmres-isa` only emits
/// whole-location accesses, matching how the FIRMRES analyses treat
/// Ghidra varnodes.
///
/// # Examples
///
/// ```
/// use firmres_ir::{AddressSpace, Varnode};
///
/// let k = Varnode::constant(0x2a, 4);
/// assert!(k.is_const());
/// assert_eq!(k.const_value(), Some(0x2a));
/// let r = Varnode::register(3, 4);
/// assert_eq!(r.space, AddressSpace::Register);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Varnode {
    /// The address space this varnode names storage in.
    pub space: AddressSpace,
    /// Offset within the space; for [`AddressSpace::Const`] this is the value.
    pub offset: u64,
    /// Size in bytes of the storage location.
    pub size: u8,
}

impl Varnode {
    /// Create a varnode in an arbitrary space.
    pub fn new(space: AddressSpace, offset: u64, size: u8) -> Self {
        Varnode {
            space,
            offset,
            size,
        }
    }

    /// A memory location at `offset`.
    pub fn ram(offset: u64, size: u8) -> Self {
        Self::new(AddressSpace::Ram, offset, size)
    }

    /// Register number `n`.
    pub fn register(n: u64, size: u8) -> Self {
        Self::new(AddressSpace::Register, n, size)
    }

    /// A lifter temporary with the given id.
    pub fn unique(id: u64, size: u8) -> Self {
        Self::new(AddressSpace::Unique, id, size)
    }

    /// An inline constant holding `value`.
    pub fn constant(value: u64, size: u8) -> Self {
        Self::new(AddressSpace::Const, value, size)
    }

    /// A stack slot at the (possibly negative, two's-complement) offset.
    pub fn stack(offset: i64, size: u8) -> Self {
        Self::new(AddressSpace::Stack, offset as u64, size)
    }

    /// Whether this varnode is an inline constant.
    pub fn is_const(&self) -> bool {
        self.space == AddressSpace::Const
    }

    /// The value of an inline constant, or `None` for non-constants.
    pub fn const_value(&self) -> Option<u64> {
        self.is_const().then_some(self.offset)
    }

    /// Whether this varnode refers to memory (the `ram` space).
    pub fn is_ram(&self) -> bool {
        self.space == AddressSpace::Ram
    }

    /// Whether this varnode is a lifter temporary.
    pub fn is_unique(&self) -> bool {
        self.space == AddressSpace::Unique
    }

    /// Stack offset as a signed quantity, if this is a stack varnode.
    pub fn stack_offset(&self) -> Option<i64> {
        (self.space == AddressSpace::Stack).then_some(self.offset as i64)
    }
}

impl fmt::Display for Varnode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_const() {
            write!(f, "(const, {:#x}, {})", self.offset, self.size)
        } else {
            write!(f, "({}, {:#x}, {})", self.space, self.offset, self.size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_round_trip() {
        let v = Varnode::constant(123, 4);
        assert!(v.is_const());
        assert_eq!(v.const_value(), Some(123));
        assert!(!v.is_ram());
    }

    #[test]
    fn stack_offsets_are_signed() {
        let v = Varnode::stack(-8, 4);
        assert_eq!(v.stack_offset(), Some(-8));
        assert_eq!(Varnode::stack(16, 4).stack_offset(), Some(16));
        assert_eq!(Varnode::ram(0, 4).stack_offset(), None);
    }

    #[test]
    fn display_matches_pcode_syntax() {
        assert_eq!(Varnode::ram(0x12bd4, 8).to_string(), "(ram, 0x12bd4, 8)");
        assert_eq!(Varnode::constant(7, 4).to_string(), "(const, 0x7, 4)");
        assert_eq!(
            Varnode::register(0x2c, 4).to_string(),
            "(register, 0x2c, 4)"
        );
    }

    #[test]
    fn equality_is_structural() {
        assert_eq!(Varnode::unique(5, 4), Varnode::unique(5, 4));
        assert_ne!(Varnode::unique(5, 4), Varnode::unique(5, 8));
        assert_ne!(Varnode::unique(5, 4), Varnode::register(5, 4));
    }

    #[test]
    fn space_names() {
        for (s, n) in [
            (AddressSpace::Ram, "ram"),
            (AddressSpace::Register, "register"),
            (AddressSpace::Unique, "unique"),
            (AddressSpace::Const, "const"),
            (AddressSpace::Stack, "stack"),
        ] {
            assert_eq!(s.name(), n);
            assert_eq!(s.to_string(), n);
        }
    }
}
