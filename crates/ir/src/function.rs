//! Functions, their control-flow graphs, and the [`FunctionBuilder`].

use crate::program::{import_address, PcodeOp};
use crate::{Address, BasicBlock, BlockId, DataType, Opcode, Symbol, SymbolTable, Varnode};
use std::collections::BTreeMap;

/// A recovered function: a CFG of P-Code operations plus symbol data.
#[derive(Debug, Clone)]
pub struct Function {
    name: String,
    entry: Address,
    params: Vec<Varnode>,
    blocks: Vec<BasicBlock>,
    symbols: SymbolTable,
    import_refs: BTreeMap<Address, String>,
}

impl Function {
    /// The function's recovered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Entry address.
    pub fn entry(&self) -> Address {
        self.entry
    }

    /// Formal parameters in declaration order.
    pub fn params(&self) -> &[Varnode] {
        &self.params
    }

    /// All basic blocks, entry first.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// The block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this function.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0 as usize]
    }

    /// The per-function symbol table.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Import pseudo-addresses referenced by this function's calls,
    /// with their names.
    pub fn import_refs(&self) -> &BTreeMap<Address, String> {
        &self.import_refs
    }

    /// Iterate over every operation in block order.
    pub fn ops(&self) -> impl Iterator<Item = &PcodeOp> {
        self.blocks.iter().flat_map(|b| b.ops.iter())
    }

    /// Iterate over `(block id, operation)` pairs in block order.
    pub fn ops_with_blocks(&self) -> impl Iterator<Item = (BlockId, &PcodeOp)> {
        self.blocks
            .iter()
            .enumerate()
            .flat_map(|(i, b)| b.ops.iter().map(move |op| (BlockId(i as u32), op)))
    }

    /// Iterate over the call operations (direct and indirect).
    pub fn callsites(&self) -> impl Iterator<Item = &PcodeOp> {
        self.ops().filter(|op| op.opcode.is_call())
    }

    /// The operation at machine address `addr`, if any.
    pub fn op_at(&self, addr: Address) -> Option<&PcodeOp> {
        self.ops().find(|op| op.addr == addr)
    }

    /// Predecessor block ids, computed from successor edges.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (i, b) in self.blocks.iter().enumerate() {
            for s in &b.successors {
                preds[s.0 as usize].push(BlockId(i as u32));
            }
        }
        preds
    }

    /// Number of predicate operations (comparisons) in the function.
    pub fn predicate_count(&self) -> usize {
        self.ops().filter(|op| op.opcode.is_predicate()).count()
    }
}

/// Incremental builder for a [`Function`].
///
/// The builder hands out varnodes for locals, parameters and temporaries,
/// assigns monotonically increasing instruction addresses, and maintains
/// the CFG as blocks are created and linked.
///
/// # Examples
///
/// ```
/// use firmres_ir::{FunctionBuilder, Varnode};
///
/// let mut fb = FunctionBuilder::new("check", 0x1000);
/// let x = fb.param("x", 4);
/// let ok = fb.cmp_eq(x, Varnode::constant(1, 4));
/// let then_b = fb.new_block();
/// let else_b = fb.new_block();
/// fb.cbranch(ok, then_b, else_b);
/// fb.switch_to(then_b);
/// fb.ret();
/// fb.switch_to(else_b);
/// fb.ret();
/// let f = fb.finish();
/// assert_eq!(f.blocks().len(), 3);
/// assert_eq!(f.predicate_count(), 1);
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    name: String,
    entry: Address,
    params: Vec<Varnode>,
    blocks: Vec<BasicBlock>,
    current: BlockId,
    symbols: SymbolTable,
    import_refs: BTreeMap<Address, String>,
    next_addr: Address,
    next_stack: i64,
    next_unique: u64,
    next_param_reg: u64,
}

/// First register used for parameter passing (mirrors the MR32 ABI's `a0`).
const PARAM_REG_BASE: u64 = 4;

impl FunctionBuilder {
    /// Start building a function named `name` at `entry`.
    pub fn new(name: impl Into<String>, entry: Address) -> Self {
        FunctionBuilder {
            name: name.into(),
            entry,
            params: Vec::new(),
            blocks: vec![BasicBlock::new()],
            current: BlockId(0),
            symbols: SymbolTable::new(entry),
            import_refs: BTreeMap::new(),
            next_addr: entry,
            next_stack: 0,
            next_unique: 0,
            next_param_reg: PARAM_REG_BASE,
        }
    }

    /// Declare the next formal parameter, returning its varnode.
    pub fn param(&mut self, name: impl Into<String>, size: u8) -> Varnode {
        let v = Varnode::register(self.next_param_reg, size);
        self.next_param_reg += 1;
        self.symbols
            .insert(v.clone(), Symbol::new(name, DataType::Param));
        self.params.push(v.clone());
        v
    }

    /// Allocate a named stack local, returning its varnode.
    pub fn local(&mut self, name: impl Into<String>, size: u8) -> Varnode {
        self.next_stack -= size.max(4) as i64;
        let v = Varnode::stack(self.next_stack, size);
        self.symbols
            .insert(v.clone(), Symbol::new(name, DataType::Local));
        v
    }

    /// Allocate an anonymous temporary.
    pub fn temp(&mut self, size: u8) -> Varnode {
        let v = Varnode::unique(self.next_unique, size);
        self.next_unique += 1;
        v
    }

    /// Name a varnode as a data pointer in the symbol table (e.g. a pointer
    /// to a format string in the data segment).
    pub fn name_data_ptr(&mut self, varnode: &Varnode, name: impl Into<String>) {
        self.symbols
            .insert(varnode.clone(), Symbol::new(name, DataType::DataPtr));
    }

    /// Name an externally-allocated varnode as a local variable. Used by
    /// lifters that recover stack slots themselves rather than allocating
    /// them through [`FunctionBuilder::local`].
    pub fn name_local(&mut self, varnode: &Varnode, name: impl Into<String>) {
        self.symbols
            .insert(varnode.clone(), Symbol::new(name, DataType::Local));
    }

    /// Declare a parameter varnode directly (for lifters that map the ABI
    /// themselves). The varnode is appended to the parameter list and named.
    pub fn param_varnode(&mut self, varnode: Varnode, name: impl Into<String>) {
        self.symbols
            .insert(varnode.clone(), Symbol::new(name, DataType::Param));
        self.params.push(varnode);
    }

    fn bump_addr(&mut self) -> Address {
        let a = self.next_addr;
        self.next_addr += 4;
        a
    }

    /// Append a raw operation to the current block.
    pub fn emit(
        &mut self,
        opcode: Opcode,
        output: Option<Varnode>,
        inputs: Vec<Varnode>,
    ) -> &PcodeOp {
        let addr = self.bump_addr();
        let op = PcodeOp::new(addr, opcode, output, inputs);
        let blk = &mut self.blocks[self.current.0 as usize];
        blk.ops.push(op);
        blk.ops.last().expect("just pushed")
    }

    /// `dst = src`.
    pub fn copy(&mut self, dst: Varnode, src: Varnode) {
        self.emit(Opcode::Copy, Some(dst), vec![src]);
    }

    /// `dst = *addr`.
    pub fn load(&mut self, dst: Varnode, addr: Varnode) {
        self.emit(Opcode::Load, Some(dst), vec![addr]);
    }

    /// `*addr = value`.
    pub fn store(&mut self, addr: Varnode, value: Varnode) {
        self.emit(Opcode::Store, None, vec![addr, value]);
    }

    /// Emit a binary operation into a fresh temporary and return it.
    pub fn binop(&mut self, opcode: Opcode, a: Varnode, b: Varnode) -> Varnode {
        let size = a.size.max(b.size);
        let out = self.temp(size);
        self.emit(opcode, Some(out.clone()), vec![a, b]);
        out
    }

    /// `a + b` into a fresh temporary.
    pub fn add(&mut self, a: Varnode, b: Varnode) -> Varnode {
        self.binop(Opcode::IntAdd, a, b)
    }

    /// `a == b` (predicate) into a fresh 1-byte temporary.
    pub fn cmp_eq(&mut self, a: Varnode, b: Varnode) -> Varnode {
        let out = self.temp(1);
        self.emit(Opcode::IntEqual, Some(out.clone()), vec![a, b]);
        out
    }

    /// `a != b` (predicate).
    pub fn cmp_ne(&mut self, a: Varnode, b: Varnode) -> Varnode {
        let out = self.temp(1);
        self.emit(Opcode::IntNotEqual, Some(out.clone()), vec![a, b]);
        out
    }

    /// `a < b` unsigned (predicate).
    pub fn cmp_lt(&mut self, a: Varnode, b: Varnode) -> Varnode {
        let out = self.temp(1);
        self.emit(Opcode::IntLess, Some(out.clone()), vec![a, b]);
        out
    }

    /// Call an imported library function, discarding the return value.
    pub fn call_import(&mut self, name: &str, args: &[Varnode]) {
        let target = import_address(name);
        self.import_refs.insert(target, name.to_string());
        let mut inputs = vec![Varnode::constant(target, 8)];
        inputs.extend_from_slice(args);
        self.emit(Opcode::Call, None, inputs);
    }

    /// Call an imported library function and capture the return value in a
    /// fresh temporary.
    pub fn call_import_ret(&mut self, name: &str, args: &[Varnode]) -> Varnode {
        let target = import_address(name);
        self.import_refs.insert(target, name.to_string());
        let out = self.temp(4);
        let mut inputs = vec![Varnode::constant(target, 8)];
        inputs.extend_from_slice(args);
        self.emit(Opcode::Call, Some(out.clone()), inputs);
        out
    }

    /// Call another function in the same program by entry address.
    pub fn call_fn(&mut self, entry: Address, args: &[Varnode]) {
        let mut inputs = vec![Varnode::constant(entry, 8)];
        inputs.extend_from_slice(args);
        self.emit(Opcode::Call, None, inputs);
    }

    /// Call another function by entry address, capturing the return value.
    pub fn call_fn_ret(&mut self, entry: Address, args: &[Varnode]) -> Varnode {
        let out = self.temp(4);
        let mut inputs = vec![Varnode::constant(entry, 8)];
        inputs.extend_from_slice(args);
        self.emit(Opcode::Call, Some(out.clone()), inputs);
        out
    }

    /// Call indirectly through a varnode holding the target.
    pub fn call_ind(&mut self, target: Varnode, args: &[Varnode]) {
        let mut inputs = vec![target];
        inputs.extend_from_slice(args);
        self.emit(Opcode::CallInd, None, inputs);
    }

    /// Create a new, initially unreachable block and return its id.
    pub fn new_block(&mut self) -> BlockId {
        self.blocks.push(BasicBlock::new());
        BlockId((self.blocks.len() - 1) as u32)
    }

    /// Redirect subsequent emission into `block`.
    pub fn switch_to(&mut self, block: BlockId) {
        assert!(
            (block.0 as usize) < self.blocks.len(),
            "unknown block {block}"
        );
        self.current = block;
    }

    /// The block currently being emitted into.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// End the current block with a conditional branch.
    pub fn cbranch(&mut self, cond: Varnode, then_block: BlockId, else_block: BlockId) {
        self.emit(
            Opcode::CBranch,
            None,
            vec![Varnode::constant(then_block.0 as u64, 8), cond],
        );
        let blk = &mut self.blocks[self.current.0 as usize];
        blk.successors = vec![then_block, else_block];
    }

    /// End the current block with an unconditional jump.
    pub fn jump(&mut self, target: BlockId) {
        self.emit(
            Opcode::Branch,
            None,
            vec![Varnode::constant(target.0 as u64, 8)],
        );
        let blk = &mut self.blocks[self.current.0 as usize];
        blk.successors = vec![target];
    }

    /// Return without a value.
    pub fn ret(&mut self) {
        self.emit(Opcode::Return, None, vec![]);
    }

    /// Return `value`.
    pub fn ret_val(&mut self, value: Varnode) {
        self.emit(Opcode::Return, None, vec![value]);
    }

    /// Finalize into a [`Function`].
    pub fn finish(self) -> Function {
        Function {
            name: self.name,
            entry: self.entry,
            params: self.params,
            blocks: self.blocks,
            symbols: self.symbols,
            import_refs: self.import_refs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_linear_function() {
        let mut fb = FunctionBuilder::new("f", 0x100);
        let a = fb.param("a", 4);
        let buf = fb.local("buf", 4);
        fb.copy(buf.clone(), a.clone());
        let t = fb.add(buf.clone(), Varnode::constant(1, 4));
        fb.ret_val(t);
        let f = fb.finish();
        assert_eq!(f.name(), "f");
        assert_eq!(f.entry(), 0x100);
        assert_eq!(f.params().len(), 1);
        assert_eq!(f.blocks().len(), 1);
        assert_eq!(f.ops().count(), 3);
        // addresses are monotone, 4 apart
        let addrs: Vec<_> = f.ops().map(|o| o.addr).collect();
        assert_eq!(addrs, vec![0x100, 0x104, 0x108]);
        assert_eq!(f.symbols().lookup(&a).unwrap().data_type, DataType::Param);
        assert_eq!(f.symbols().lookup(&buf).unwrap().name, "buf");
    }

    #[test]
    fn cfg_edges_and_predecessors() {
        let mut fb = FunctionBuilder::new("g", 0);
        let x = fb.param("x", 4);
        let c = fb.cmp_ne(x, Varnode::constant(0, 4));
        let t = fb.new_block();
        let e = fb.new_block();
        let join = fb.new_block();
        fb.cbranch(c, t, e);
        fb.switch_to(t);
        fb.jump(join);
        fb.switch_to(e);
        fb.jump(join);
        fb.switch_to(join);
        fb.ret();
        let f = fb.finish();
        assert_eq!(f.blocks()[0].successors, vec![t, e]);
        let preds = f.predecessors();
        assert_eq!(preds[join.0 as usize].len(), 2);
        assert_eq!(preds[0].len(), 0);
        assert!(f.block(join).is_exit());
    }

    #[test]
    fn callsites_and_import_refs() {
        let mut fb = FunctionBuilder::new("h", 0x40);
        let buf = fb.local("buf", 4);
        let n = fb.call_import_ret("recv", &[Varnode::constant(0, 4), buf.clone()]);
        fb.call_import("send", &[Varnode::constant(0, 4), buf, n]);
        fb.ret();
        let f = fb.finish();
        assert_eq!(f.callsites().count(), 2);
        assert_eq!(f.import_refs().len(), 2);
        let names: Vec<_> = f.import_refs().values().cloned().collect();
        assert!(names.contains(&"recv".to_string()));
        assert!(names.contains(&"send".to_string()));
    }

    #[test]
    fn op_at_finds_by_address() {
        let mut fb = FunctionBuilder::new("k", 0x200);
        fb.copy(Varnode::register(1, 4), Varnode::constant(7, 4));
        fb.ret();
        let f = fb.finish();
        assert!(f.op_at(0x200).is_some());
        assert!(f.op_at(0x204).is_some());
        assert!(f.op_at(0x208).is_none());
    }

    #[test]
    #[should_panic(expected = "unknown block")]
    fn switch_to_unknown_block_panics() {
        let mut fb = FunctionBuilder::new("p", 0);
        fb.switch_to(BlockId(9));
    }

    #[test]
    fn locals_do_not_collide() {
        let mut fb = FunctionBuilder::new("l", 0);
        let a = fb.local("a", 4);
        let b = fb.local("b", 8);
        let c = fb.local("c", 4);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
        assert!(a.stack_offset().unwrap() < 0);
    }
}
