//! Symbol and type information recovered for varnodes.
//!
//! The FIRMRES semantics-recovery step (paper §IV-C) enriches raw P-Code
//! operands with `(Datatype, Name/Constant, NodeID)` triples drawn from the
//! decompiler's symbol tables. This module holds that symbol information.

use crate::Varnode;
use std::collections::BTreeMap;
use std::fmt;

/// The high-level kind of a named storage location.
///
/// These are the data types the paper embeds into slices: function, local
/// variable, parameter, constant, and data pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DataType {
    /// A function entry point.
    Function,
    /// A function-local variable.
    Local,
    /// A formal parameter.
    Param,
    /// An inline constant (numeric or string).
    Constant,
    /// A pointer into the data segment.
    DataPtr,
}

impl DataType {
    /// Short tag used in the enriched slice representation, e.g. `Local`.
    pub fn tag(self) -> &'static str {
        match self {
            DataType::Function => "Fun",
            DataType::Local => "Local",
            DataType::Param => "Param",
            DataType::Constant => "Cons",
            DataType::DataPtr => "DataPtr",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// A named storage location with its recovered [`DataType`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Symbol {
    /// Recovered name (`finalBuf`, `mac`, …).
    pub name: String,
    /// The kind of storage the symbol names.
    pub data_type: DataType,
}

impl Symbol {
    /// Create a symbol.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Symbol {
            name: name.into(),
            data_type,
        }
    }
}

/// A per-function mapping from varnodes to recovered symbols.
///
/// Node IDs (paper: "randomly generated to differentiate same-named
/// variables across functions") are derived deterministically from the
/// function address and the varnode so that runs are reproducible.
///
/// # Examples
///
/// ```
/// use firmres_ir::{DataType, Symbol, SymbolTable, Varnode};
///
/// let mut table = SymbolTable::new(0x1000);
/// let buf = Varnode::stack(-16, 4);
/// table.insert(buf.clone(), Symbol::new("buf", DataType::Local));
/// assert_eq!(table.lookup(&buf).unwrap().name, "buf");
/// let id = table.node_id(&buf);
/// assert_eq!(id, table.node_id(&buf)); // deterministic
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymbolTable {
    function_addr: u64,
    entries: BTreeMap<Varnode, Symbol>,
}

impl SymbolTable {
    /// Create an empty table for the function at `function_addr`.
    pub fn new(function_addr: u64) -> Self {
        SymbolTable {
            function_addr,
            entries: BTreeMap::new(),
        }
    }

    /// Record `symbol` as the name of `varnode`, replacing any previous
    /// symbol for the same storage. Returns the replaced symbol if any.
    pub fn insert(&mut self, varnode: Varnode, symbol: Symbol) -> Option<Symbol> {
        self.entries.insert(varnode, symbol)
    }

    /// The symbol recorded for `varnode`, if any.
    pub fn lookup(&self, varnode: &Varnode) -> Option<&Symbol> {
        self.entries.get(varnode)
    }

    /// Number of named varnodes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over `(varnode, symbol)` pairs in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&Varnode, &Symbol)> {
        self.entries.iter()
    }

    /// A deterministic node id for `varnode`, unique per function.
    ///
    /// The paper uses random ids to disambiguate same-named variables in
    /// different functions; we instead hash `(function, varnode)` with FNV-1a
    /// so identical inputs always produce identical slice text.
    pub fn node_id(&self, varnode: &Varnode) -> u32 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self
            .function_addr
            .to_le_bytes()
            .into_iter()
            .chain(varnode.offset.to_le_bytes())
            .chain([varnode.space as u8, varnode.size])
        {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Fold to a short, human-readable id like the paper's `v_1357`.
        (h % 9000 + 1000) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut t = SymbolTable::new(0x400);
        let v = Varnode::register(3, 4);
        assert!(t.is_empty());
        assert!(t
            .insert(v.clone(), Symbol::new("mac", DataType::Param))
            .is_none());
        assert_eq!(t.lookup(&v).unwrap().data_type, DataType::Param);
        let old = t
            .insert(v.clone(), Symbol::new("mac2", DataType::Local))
            .unwrap();
        assert_eq!(old.name, "mac");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn node_ids_deterministic_and_function_scoped() {
        let v = Varnode::stack(-8, 4);
        let a = SymbolTable::new(0x1000);
        let b = SymbolTable::new(0x2000);
        assert_eq!(a.node_id(&v), a.node_id(&v));
        assert_ne!(a.node_id(&v), b.node_id(&v), "ids differ across functions");
        assert!((1000..10000).contains(&a.node_id(&v)));
    }

    #[test]
    fn datatype_tags() {
        assert_eq!(DataType::Function.tag(), "Fun");
        assert_eq!(DataType::Constant.tag(), "Cons");
        assert_eq!(DataType::Local.to_string(), "Local");
    }

    #[test]
    fn iteration_is_deterministic() {
        let mut t = SymbolTable::new(0);
        t.insert(Varnode::register(2, 4), Symbol::new("b", DataType::Local));
        t.insert(Varnode::register(1, 4), Symbol::new("a", DataType::Local));
        let names: Vec<_> = t.iter().map(|(_, s)| s.name.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
    }
}
