//! Graphviz (DOT) export for CFGs and call graphs — the visual aids an
//! analyst reaches for when triaging a device-cloud executable.

use crate::{CallGraph, Function, Program};
use std::fmt::Write as _;

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Render a function's control-flow graph as a DOT digraph. Each basic
/// block becomes a node listing its operations; edges follow successor
/// lists.
///
/// # Examples
///
/// ```
/// use firmres_ir::{dot, FunctionBuilder};
///
/// let mut fb = FunctionBuilder::new("f", 0);
/// fb.ret();
/// let text = dot::function_cfg(&fb.finish());
/// assert!(text.starts_with("digraph"));
/// ```
pub fn function_cfg(f: &Function) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(f.name()));
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    for (i, block) in f.blocks().iter().enumerate() {
        let mut label = format!("bb{i}\\l");
        for op in &block.ops {
            let _ = write!(label, "{}\\l", escape(&op.to_string()));
        }
        let _ = writeln!(out, "  bb{i} [label=\"{label}\"];");
        for s in &block.successors {
            let _ = writeln!(out, "  bb{i} -> bb{};", s.0);
        }
        // Implicit fallthrough edges are materialized as jumps by the
        // lifter, so successor lists are complete.
    }
    let _ = writeln!(out, "}}");
    out
}

/// Render the program call graph as a DOT digraph. Imports are drawn as
/// ellipses, defined functions as boxes; edge labels carry callsites.
pub fn call_graph(program: &Program, graph: &CallGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(program.name()));
    let _ = writeln!(out, "  rankdir=LR;");
    for f in program.functions() {
        let _ = writeln!(
            out,
            "  \"{}\" [shape=box, label=\"{}\"];",
            f.entry(),
            escape(f.name())
        );
    }
    for (addr, imp) in program.imports() {
        let _ = writeln!(
            out,
            "  \"{}\" [shape=ellipse, style=dashed, label=\"{}\"];",
            addr,
            escape(&imp.name)
        );
    }
    for e in graph.edges() {
        let _ = writeln!(
            out,
            "  \"{}\" -> \"{}\" [label=\"{:#x}\"];",
            e.caller, e.callee, e.callsite
        );
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FunctionBuilder, Program, Varnode};

    fn sample() -> Program {
        let mut p = Program::new("demo");
        let mut helper = FunctionBuilder::new("helper", 0x2000);
        helper.call_import("send", &[Varnode::constant(0, 4)]);
        helper.ret();
        p.add_function(helper.finish());
        let mut main = FunctionBuilder::new("main", 0x1000);
        let x = main.param("x", 4);
        let c = main.cmp_ne(x, Varnode::constant(0, 4));
        let t = main.new_block();
        let e = main.new_block();
        main.cbranch(c, t, e);
        main.switch_to(t);
        main.call_fn(0x2000, &[]);
        main.ret();
        main.switch_to(e);
        main.ret();
        p.add_function(main.finish());
        p
    }

    #[test]
    fn cfg_dot_lists_blocks_and_edges() {
        let p = sample();
        let f = p.function_by_name("main").unwrap();
        let dot = function_cfg(f);
        assert!(dot.starts_with("digraph \"main\""));
        assert!(dot.contains("bb0 -> bb1"));
        assert!(dot.contains("bb0 -> bb2"));
        assert!(dot.contains("CBRANCH"), "{dot}");
        assert_eq!(dot.matches("[label=").count(), 3, "one label per block");
    }

    #[test]
    fn call_graph_dot_distinguishes_imports() {
        let p = sample();
        let g = p.call_graph();
        let dot = call_graph(&p, &g);
        assert!(dot.contains("shape=box, label=\"main\""));
        assert!(dot.contains("shape=ellipse, style=dashed, label=\"send\""));
        assert!(dot.contains("->"));
    }

    #[test]
    fn quotes_are_escaped() {
        let mut p = Program::new("q");
        let mut fb = FunctionBuilder::new("f", 0);
        let s = p.add_string_constant("say \"hi\"");
        fb.copy(Varnode::register(1, 4), Varnode::constant(s, 4));
        fb.ret();
        p.add_function(fb.finish());
        let dot = function_cfg(p.function_by_name("f").unwrap());
        assert!(
            !dot.contains("label=\"say \"hi\"\""),
            "inner quotes escaped"
        );
    }
}
