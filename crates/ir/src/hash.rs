//! Content hashing of lifted IR, the identity substrate of unit-granular
//! incremental re-analysis.
//!
//! A firmware *update* typically leaves most functions byte-identical to
//! the previous version. To reuse per-unit analysis artifacts across
//! versions, the cache needs a stable identity for "this function's lifted
//! body" and for "everything about the program a unit's analysis can read
//! besides function bodies". This module provides both:
//!
//! * [`function_content_hash`] — FNV-128 over one function's complete
//!   lifted content: name, entry, parameters, every operation of every
//!   block (addresses, opcodes, varnodes), CFG successor edges, the
//!   per-function symbol table and import references. Two functions hash
//!   equal exactly when every analysis in this workspace treats them
//!   identically.
//! * [`program_context_hash`] — FNV-128 over the program-wide inputs that
//!   are *not* function bodies: program name, the data segment (string
//!   constants), the function directory (entries, names, parameter
//!   shapes) and the import table. Analyses resolve strings, callee names
//!   and symbols through exactly these, so a unit whose footprint
//!   functions are unchanged *and* whose context hash is unchanged has
//!   byte-identical inputs.
//! * [`caller_edges_hash`] — FNV-64 over the `(caller, callsite)` edge
//!   set entering a function. The backward taint engine enumerates
//!   callers when it runs out of local definitions; this hash detects a
//!   *new* caller appearing even when no previously-footprinted function
//!   body changed.
//!
//! # Examples
//!
//! ```
//! use firmres_ir::{function_content_hash, FunctionBuilder, Varnode};
//!
//! let build = |k: u64| {
//!     let mut fb = FunctionBuilder::new("f", 0x1000);
//!     let x = fb.param("x", 4);
//!     let t = fb.add(x, Varnode::constant(k, 4));
//!     fb.ret_val(t);
//!     fb.finish()
//! };
//! assert_eq!(function_content_hash(&build(1)), function_content_hash(&build(1)));
//! assert_ne!(function_content_hash(&build(1)), function_content_hash(&build(2)));
//! ```

use crate::{Address, CallGraph, Function, Program, Varnode};
use std::collections::BTreeMap;

/// Streaming 128-bit hasher: FNV-1a folded over 64-bit words.
///
/// Uses the FNV-128 offset basis and prime (the constants of
/// `firmres_firmware::content_hash_packed_wide`), but absorbs eight
/// input bytes per multiply instead of one — this hasher digests every
/// lifted function body and executable image on the incremental
/// re-analysis hot path, where the byte-at-a-time variant's serial
/// 128-bit multiply per byte dominated the planning cost. Tail bytes are
/// zero-padded into a final word and the total input length is folded
/// last, so inputs differing only in trailing zero bytes still hash
/// apart.
#[derive(Debug, Clone)]
pub struct Fnv128 {
    state: u128,
    buf: [u8; 8],
    buffered: usize,
    total: u64,
}

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

impl Default for Fnv128 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv128 {
    /// A fresh hasher at the FNV-128 offset basis.
    pub fn new() -> Self {
        Fnv128 {
            state: FNV128_OFFSET,
            buf: [0; 8],
            buffered: 0,
            total: 0,
        }
    }

    #[inline]
    fn absorb(&mut self, word: u64) {
        self.state ^= word as u128;
        self.state = self.state.wrapping_mul(FNV128_PRIME);
    }

    /// Fold raw bytes into the state.
    pub fn write(&mut self, bytes: &[u8]) {
        self.total = self.total.wrapping_add(bytes.len() as u64);
        let mut rest = bytes;
        if self.buffered > 0 {
            let take = rest.len().min(8 - self.buffered);
            self.buf[self.buffered..self.buffered + take].copy_from_slice(&rest[..take]);
            self.buffered += take;
            rest = &rest[take..];
            if self.buffered < 8 {
                return;
            }
            let word = u64::from_le_bytes(self.buf);
            self.absorb(word);
            self.buffered = 0;
        }
        let mut chunks = rest.chunks_exact(8);
        for c in &mut chunks {
            self.absorb(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let tail = chunks.remainder();
        self.buf[..tail.len()].copy_from_slice(tail);
        self.buffered = tail.len();
    }

    /// Fold a single byte. IR traversals issue thousands of these per
    /// function, so the byte goes straight into the word buffer instead
    /// of through the slice path.
    #[inline]
    pub fn write_u8(&mut self, v: u8) {
        self.total = self.total.wrapping_add(1);
        self.buf[self.buffered] = v;
        self.buffered += 1;
        if self.buffered == 8 {
            let word = u64::from_le_bytes(self.buf);
            self.absorb(word);
            self.buffered = 0;
        }
    }

    /// Fold a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Fold a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        if self.buffered == 0 {
            self.total = self.total.wrapping_add(8);
            self.absorb(v);
        } else {
            self.write(&v.to_le_bytes());
        }
    }

    /// Fold a `u128` (little-endian).
    pub fn write_u128(&mut self, v: u128) {
        self.write(&v.to_le_bytes());
    }

    /// Fold a length-prefixed string (so `("ab","c")` ≠ `("a","bc")`).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The current 128-bit digest: any buffered tail is zero-padded into
    /// a final word, then the total input length is folded.
    pub fn finish(&self) -> u128 {
        let mut s = self.clone();
        if s.buffered > 0 {
            s.buf[s.buffered..].fill(0);
            let word = u64::from_le_bytes(s.buf);
            s.absorb(word);
            s.buffered = 0;
        }
        let total = s.total;
        s.absorb(total);
        s.state
    }

    fn write_varnode(&mut self, v: &Varnode) {
        self.write_u8(v.space as u8);
        self.write_u64(v.offset);
        self.write_u8(v.size);
    }
}

/// FNV-128 over one function's complete lifted content.
///
/// Covers everything any analysis stage reads out of a [`Function`]:
/// name, entry address, parameter list, each block's operations
/// (instruction address, opcode tag, output and input varnodes), the CFG
/// successor edges, the symbol table (in its deterministic iteration
/// order) and the import references. Any observable change to the lifted
/// body changes the hash.
pub fn function_content_hash(f: &Function) -> u128 {
    let mut h = Fnv128::new();
    h.write_str(f.name());
    h.write_u64(f.entry());
    h.write_u64(f.params().len() as u64);
    for p in f.params() {
        h.write_varnode(p);
    }
    h.write_u64(f.blocks().len() as u64);
    for b in f.blocks() {
        h.write_u64(b.ops.len() as u64);
        for op in &b.ops {
            h.write_u64(op.addr);
            h.write_u8(op.opcode.tag());
            match &op.output {
                Some(v) => {
                    h.write_u8(1);
                    h.write_varnode(v);
                }
                None => h.write_u8(0),
            }
            h.write_u64(op.inputs.len() as u64);
            for v in &op.inputs {
                h.write_varnode(v);
            }
        }
        h.write_u64(b.successors.len() as u64);
        for s in &b.successors {
            h.write_u32(s.0);
        }
    }
    h.write_u64(f.symbols().len() as u64);
    for (v, sym) in f.symbols().iter() {
        h.write_varnode(v);
        h.write_str(&sym.name);
        h.write_str(sym.data_type.tag());
    }
    h.write_u64(f.import_refs().len() as u64);
    for (addr, name) in f.import_refs() {
        h.write_u64(*addr);
        h.write_str(name);
    }
    h.finish()
}

/// Content hashes of every function in `program`, keyed by entry address.
pub fn program_function_hashes(program: &Program) -> BTreeMap<Address, u128> {
    program
        .functions()
        .map(|f| (f.entry(), function_content_hash(f)))
        .collect()
}

/// FNV-128 over the program-wide analysis inputs that are *not* function
/// bodies.
///
/// Covers the program name, the data segment base and bytes (string
/// constants), the function directory — entry addresses, names and
/// parameter shapes, which is what callee-name resolution and unit
/// enumeration read — and the import table. Function *bodies* are
/// deliberately excluded: body changes are detected per-function via
/// [`function_content_hash`] footprints, so a code-only update keeps the
/// context hash (and with it every unit's identity) stable.
pub fn program_context_hash(program: &Program) -> u128 {
    let mut h = Fnv128::new();
    h.write_str(program.name());
    h.write_u64(program.data_base());
    h.write_u64(program.data_bytes().len() as u64);
    h.write(program.data_bytes());
    h.write_u64(program.function_count() as u64);
    for f in program.functions() {
        h.write_u64(f.entry());
        h.write_str(f.name());
        h.write_u64(f.params().len() as u64);
        for p in f.params() {
            h.write_varnode(p);
        }
    }
    let imports: Vec<_> = program.imports().collect();
    h.write_u64(imports.len() as u64);
    for (addr, imp) in imports {
        h.write_u64(addr);
        h.write_str(&imp.name);
    }
    h.finish()
}

/// FNV-64 over the sorted `(caller, callsite)` edge set entering `callee`.
///
/// The backward taint engine enumerates the callers of a function when a
/// traced value has no local definition; a firmware update that *adds* a
/// caller changes that enumeration without changing any function the
/// trace previously visited. Footprinting this hash for each
/// caller-enumerated function closes that gap.
pub fn caller_edges_hash(graph: &CallGraph, callee: Address) -> u64 {
    let mut edges: Vec<(Address, Address)> = graph
        .callers_of(callee)
        .map(|e| (e.caller, e.callsite))
        .collect();
    edges.sort_unstable();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    fold(edges.len() as u64);
    for (caller, callsite) in edges {
        fold(caller);
        fold(callsite);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FunctionBuilder;

    fn two_fn_program(log_body: bool) -> Program {
        let mut p = Program::new("t");
        p.add_string_constant("mac");
        let mut fb = FunctionBuilder::new("handle", 0x1000);
        let buf = fb.local("buf", 4);
        fb.call_import("SSL_write", &[buf]);
        fb.ret();
        p.add_function(fb.finish());
        let mut lg = FunctionBuilder::new("log", 0x2000);
        if log_body {
            lg.copy(
                crate::Varnode::register(1, 4),
                crate::Varnode::constant(7, 4),
            );
        }
        lg.ret();
        p.add_function(lg.finish());
        p
    }

    #[test]
    fn function_hash_is_stable_and_body_sensitive() {
        let a = two_fn_program(false);
        let b = two_fn_program(false);
        let c = two_fn_program(true);
        let fa = a.function_by_name("log").unwrap();
        let fb = b.function_by_name("log").unwrap();
        let fc = c.function_by_name("log").unwrap();
        assert_eq!(function_content_hash(fa), function_content_hash(fb));
        assert_ne!(function_content_hash(fa), function_content_hash(fc));
        // The untouched function is unaffected by the neighbor's change.
        assert_eq!(
            function_content_hash(a.function_by_name("handle").unwrap()),
            function_content_hash(c.function_by_name("handle").unwrap()),
        );
    }

    #[test]
    fn context_hash_ignores_bodies_but_sees_directory_changes() {
        // Body-only change: context identical.
        assert_eq!(
            program_context_hash(&two_fn_program(false)),
            program_context_hash(&two_fn_program(true)),
        );
        // Data segment change: context differs.
        let mut p = two_fn_program(false);
        p.add_string_constant("serial");
        assert_ne!(
            program_context_hash(&p),
            program_context_hash(&two_fn_program(false))
        );
        // New function in the directory: context differs.
        let mut q = two_fn_program(false);
        let mut fb = FunctionBuilder::new("extra", 0x3000);
        fb.ret();
        q.add_function(fb.finish());
        assert_ne!(
            program_context_hash(&q),
            program_context_hash(&two_fn_program(false))
        );
    }

    #[test]
    fn program_function_hashes_cover_all_functions() {
        let p = two_fn_program(false);
        let m = program_function_hashes(&p);
        assert_eq!(m.len(), 2);
        assert!(m.contains_key(&0x1000) && m.contains_key(&0x2000));
    }

    #[test]
    fn fnv128_streaming_matches_one_shot_and_sees_zero_tails() {
        let data: Vec<u8> = (0u32..1000).map(|i| (i * 7) as u8).collect();
        let mut one = Fnv128::new();
        one.write(&data);
        let mut parts = Fnv128::new();
        for chunk in data.chunks(7) {
            parts.write(chunk);
        }
        assert_eq!(one.finish(), parts.finish(), "chunking must not matter");
        // A trailing zero byte lands in the padded tail word; the folded
        // length still separates the digests.
        let mut a = Fnv128::new();
        a.write(b"ab");
        let mut b = Fnv128::new();
        b.write(b"ab\0");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn caller_edges_hash_sees_new_callers() {
        let mut p = Program::new("t");
        let mut callee = FunctionBuilder::new("callee", 0x1000);
        callee.ret();
        p.add_function(callee.finish());
        let mut a = FunctionBuilder::new("a", 0x2000);
        a.call_fn(0x1000, &[]);
        a.ret();
        p.add_function(a.finish());
        let h1 = caller_edges_hash(&p.call_graph(), 0x1000);

        let mut b = FunctionBuilder::new("b", 0x3000);
        b.call_fn(0x1000, &[]);
        b.ret();
        p.add_function(b.finish());
        let h2 = caller_edges_hash(&p.call_graph(), 0x1000);
        assert_ne!(h1, h2, "a new caller must change the edge hash");
        assert_eq!(h2, caller_edges_hash(&p.call_graph(), 0x1000));
    }
}
