//! Whole-program container: functions, data segment, imports.

use crate::{Address, CallGraph, Function, Opcode, Varnode};
use std::collections::BTreeMap;
use std::fmt;

/// A single P-Code operation `<addr: output OP input0, input1, …>`.
///
/// # Examples
///
/// ```
/// use firmres_ir::{Opcode, PcodeOp, Varnode};
///
/// let op = PcodeOp::new(
///     0x12bd4,
///     Opcode::IntAdd,
///     Some(Varnode::register(1, 4)),
///     vec![Varnode::register(2, 4), Varnode::constant(8, 4)],
/// );
/// assert!(op.to_string().contains("INT_ADD"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PcodeOp {
    /// Address of the machine instruction this operation was lifted from.
    pub addr: Address,
    /// The operation.
    pub opcode: Opcode,
    /// Destination varnode, when the operation produces a value.
    pub output: Option<Varnode>,
    /// Operand varnodes; see [`Opcode`] for per-opcode conventions.
    pub inputs: Vec<Varnode>,
}

impl PcodeOp {
    /// Create an operation.
    pub fn new(
        addr: Address,
        opcode: Opcode,
        output: Option<Varnode>,
        inputs: Vec<Varnode>,
    ) -> Self {
        PcodeOp {
            addr,
            opcode,
            output,
            inputs,
        }
    }

    /// For a direct [`Opcode::Call`], the constant target address.
    pub fn call_target(&self) -> Option<Address> {
        (self.opcode == Opcode::Call)
            .then(|| self.inputs.first().and_then(Varnode::const_value))
            .flatten()
    }

    /// The argument varnodes of a call (everything after the target).
    pub fn call_args(&self) -> &[Varnode] {
        if self.opcode.is_call() && !self.inputs.is_empty() {
            &self.inputs[1..]
        } else {
            &[]
        }
    }
}

impl fmt::Display for PcodeOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{:#x}: ", self.addr)?;
        if let Some(out) = &self.output {
            write!(f, "{out} = ")?;
        }
        write!(f, "{}", self.opcode)?;
        for (i, input) in self.inputs.iter().enumerate() {
            if i == 0 {
                write!(f, " {input}")?;
            } else {
                write!(f, ", {input}")?;
            }
        }
        write!(f, ">")
    }
}

/// An imported library function (e.g. `sprintf`, `SSL_write`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Import {
    /// The library function name.
    pub name: String,
}

/// Deterministic pseudo-address for an import stub, derived from its name.
///
/// Import addresses live in a reserved high range so they can never collide
/// with lifted code or data. Both the [`crate::FunctionBuilder`] and the
/// MR32 lifter use this function, so a call to `sprintf` resolves to the
/// same address everywhere.
pub fn import_address(name: &str) -> Address {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    0xFFFF_0000_0000_0000 | (h & 0x0000_FFFF_FFFF_FFFF)
}

/// Whether an address is in the reserved import range.
pub fn is_import_address(addr: Address) -> bool {
    addr >= 0xFFFF_0000_0000_0000
}

/// A whole binary program: functions, the data segment, and imports.
///
/// The program is the unit FIRMRES analyzes — one executable extracted from
/// a firmware image.
#[derive(Debug, Clone, Default)]
pub struct Program {
    name: String,
    functions: BTreeMap<Address, Function>,
    data_base: Address,
    data: Vec<u8>,
    imports: BTreeMap<Address, Import>,
}

impl Program {
    /// Default base address of the data segment.
    pub const DATA_BASE: Address = 0x0040_0000;

    /// Create an empty program named `name` (the executable's path stem).
    pub fn new(name: impl Into<String>) -> Self {
        Program {
            name: name.into(),
            functions: BTreeMap::new(),
            data_base: Self::DATA_BASE,
            data: Vec::new(),
            imports: BTreeMap::new(),
        }
    }

    /// The executable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Add a function; its import references are merged into the program
    /// import table. Replaces any function previously at the same entry.
    pub fn add_function(&mut self, function: Function) {
        for (addr, name) in function.import_refs() {
            self.imports
                .entry(*addr)
                .or_insert_with(|| Import { name: name.clone() });
        }
        self.functions.insert(function.entry(), function);
    }

    /// Register an import by explicit address (used by the loader when the
    /// executable carries its own import table).
    pub fn add_import(&mut self, addr: Address, name: impl Into<String>) {
        self.imports.insert(addr, Import { name: name.into() });
    }

    /// Look up a function by entry address.
    pub fn function(&self, entry: Address) -> Option<&Function> {
        self.functions.get(&entry)
    }

    /// Look up a function by name (names are unique in lifted programs).
    pub fn function_by_name(&self, name: &str) -> Option<&Function> {
        self.functions.values().find(|f| f.name() == name)
    }

    /// Iterate over all functions in address order.
    pub fn functions(&self) -> impl Iterator<Item = &Function> {
        self.functions.values()
    }

    /// Number of functions.
    pub fn function_count(&self) -> usize {
        self.functions.len()
    }

    /// The import registered at `addr`, if any.
    pub fn import(&self, addr: Address) -> Option<&Import> {
        self.imports.get(&addr)
    }

    /// Iterate over `(address, import)` pairs.
    pub fn imports(&self) -> impl Iterator<Item = (Address, &Import)> {
        self.imports.iter().map(|(a, i)| (*a, i))
    }

    /// Resolve the human-readable name of a call target: an import name,
    /// a defined function name, or `None` for unknown/indirect targets.
    pub fn callee_name(&self, target: Address) -> Option<&str> {
        if let Some(imp) = self.imports.get(&target) {
            return Some(&imp.name);
        }
        self.functions.get(&target).map(|f| f.name())
    }

    /// Append raw bytes to the data segment, returning their address.
    pub fn add_data(&mut self, bytes: &[u8]) -> Address {
        let addr = self.data_base + self.data.len() as u64;
        self.data.extend_from_slice(bytes);
        addr
    }

    /// Append a NUL-terminated string constant, returning its address.
    pub fn add_string_constant(&mut self, s: &str) -> Address {
        let addr = self.add_data(s.as_bytes());
        self.data.push(0);
        addr
    }

    /// Replace the data segment wholesale (used by the loader).
    pub fn set_data_segment(&mut self, base: Address, bytes: Vec<u8>) {
        self.data_base = base;
        self.data = bytes;
    }

    /// Base address of the data segment.
    pub fn data_base(&self) -> Address {
        self.data_base
    }

    /// Raw data segment bytes.
    pub fn data_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Read the NUL-terminated string at `addr` in the data segment.
    ///
    /// Returns `None` when `addr` is outside the segment or the bytes are
    /// not valid UTF-8.
    pub fn string_at(&self, addr: Address) -> Option<&str> {
        let start = addr.checked_sub(self.data_base)? as usize;
        if start >= self.data.len() {
            return None;
        }
        let rest = &self.data[start..];
        let end = rest.iter().position(|&b| b == 0).unwrap_or(rest.len());
        std::str::from_utf8(&rest[..end]).ok()
    }

    /// If `varnode` is a constant or ram pointer into the data segment,
    /// the string it refers to.
    pub fn string_for(&self, varnode: &Varnode) -> Option<&str> {
        match varnode.space {
            crate::AddressSpace::Const | crate::AddressSpace::Ram => self.string_at(varnode.offset),
            _ => None,
        }
    }

    /// Build the call graph over the program's direct calls.
    pub fn call_graph(&self) -> CallGraph {
        CallGraph::build(self)
    }

    /// Total number of P-Code operations across all functions.
    pub fn op_count(&self) -> usize {
        self.functions.values().map(|f| f.ops().count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FunctionBuilder;

    #[test]
    fn string_constants_round_trip() {
        let mut p = Program::new("t");
        let a = p.add_string_constant("?m=camera&a=login");
        let b = p.add_string_constant("mac");
        assert_eq!(p.string_at(a), Some("?m=camera&a=login"));
        assert_eq!(p.string_at(b), Some("mac"));
        assert_eq!(p.string_at(b + 100), None);
        assert_eq!(
            p.string_for(&Varnode::constant(a, 4)),
            Some("?m=camera&a=login")
        );
    }

    #[test]
    fn import_addresses_are_stable_and_high() {
        let a = import_address("sprintf");
        assert_eq!(a, import_address("sprintf"));
        assert_ne!(a, import_address("snprintf"));
        assert!(is_import_address(a));
        assert!(!is_import_address(Program::DATA_BASE));
    }

    #[test]
    fn add_function_merges_imports() {
        let mut p = Program::new("t");
        let mut fb = FunctionBuilder::new("f", 0x1000);
        let buf = fb.local("buf", 4);
        fb.call_import("SSL_write", &[buf]);
        fb.ret();
        p.add_function(fb.finish());
        let target = import_address("SSL_write");
        assert_eq!(p.callee_name(target), Some("SSL_write"));
        assert_eq!(p.imports().count(), 1);
    }

    #[test]
    fn callee_name_resolves_functions_too() {
        let mut p = Program::new("t");
        let mut fb = FunctionBuilder::new("helper", 0x2000);
        fb.ret();
        p.add_function(fb.finish());
        assert_eq!(p.callee_name(0x2000), Some("helper"));
        assert_eq!(p.callee_name(0x9999), None);
        assert!(p.function_by_name("helper").is_some());
        assert!(p.function_by_name("nope").is_none());
    }

    #[test]
    fn pcode_op_display() {
        let op = PcodeOp::new(
            0x12bd4,
            Opcode::Call,
            None,
            vec![
                Varnode::constant(import_address("printf"), 8),
                Varnode::register(4, 4),
            ],
        );
        let s = op.to_string();
        assert!(s.starts_with("<0x12bd4: CALL"), "{s}");
        assert!(s.contains("(register, 0x4, 4)"), "{s}");
    }

    #[test]
    fn call_helpers() {
        let t = import_address("send");
        let op = PcodeOp::new(
            0,
            Opcode::Call,
            None,
            vec![
                Varnode::constant(t, 8),
                Varnode::register(4, 4),
                Varnode::register(5, 4),
            ],
        );
        assert_eq!(op.call_target(), Some(t));
        assert_eq!(op.call_args().len(), 2);
        let non_call = PcodeOp::new(0, Opcode::Copy, None, vec![]);
        assert_eq!(non_call.call_target(), None);
        assert!(non_call.call_args().is_empty());
    }
}
