//! # firmres-ir
//!
//! A P-Code-style register-transfer intermediate representation (IR) for
//! binary programs, modeled after the representation Ghidra exposes to
//! analyses in the FIRMRES paper (DSN 2024, §IV-C).
//!
//! The IR is the substrate every other FIRMRES crate builds on:
//!
//! * [`Varnode`] — a typed storage location `(address space, offset, size)`,
//!   the operand unit of every IR operation.
//! * [`PcodeOp`] — a single register-transfer operation
//!   `<addr: output OP input1, input2, …>`.
//! * [`Function`] / [`BasicBlock`] — a control-flow graph of operations,
//!   with a per-function symbol table that names locals and parameters
//!   (what Ghidra's decompiler recovers for real binaries).
//! * [`Program`] — a whole executable: functions, a data segment with
//!   string constants, an import table for library functions, and a
//!   [`CallGraph`].
//!
//! # Examples
//!
//! Build a function that formats a MAC address into a buffer and sends it:
//!
//! ```
//! use firmres_ir::{FunctionBuilder, Program, Varnode};
//!
//! let mut prog = Program::new("rms_connect");
//! let fmt = prog.add_string_constant("{\"mac\":\"%s\"}");
//! let mut fb = FunctionBuilder::new("send_ident", 0x1000);
//! let buf = fb.local("buf", 4);
//! let mac = fb.param("mac", 4);
//! fb.call_import("sprintf", &[buf.clone(), Varnode::ram(fmt, 4), mac]);
//! fb.call_import("SSL_write", &[buf]);
//! fb.ret();
//! prog.add_function(fb.finish());
//! assert_eq!(prog.functions().count(), 1);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dot;

mod block;
mod callgraph;
mod function;
mod hash;
mod intern;
mod opcode;
mod program;
mod symbol;
mod varnode;

pub use block::{BasicBlock, BlockId};
pub use callgraph::{CallEdge, CallGraph};
pub use function::{Function, FunctionBuilder};
pub use hash::{
    caller_edges_hash, function_content_hash, program_context_hash, program_function_hashes, Fnv128,
};
pub use intern::{ColdPath, FnvBuildHasher, FnvHasher, Interner, Sym};
pub use opcode::Opcode;
pub use program::{import_address, is_import_address, Import, PcodeOp, Program};
pub use symbol::{DataType, Symbol, SymbolTable};
pub use varnode::{AddressSpace, Varnode};

/// A code or data address inside a program image.
///
/// Addresses are plain 64-bit offsets into the flat program address space;
/// the IR does not distinguish segments beyond the [`AddressSpace`] of each
/// varnode.
pub type Address = u64;
