//! String interning and the cold-path mode switch.
//!
//! The cold analysis path (first sight of an image, nothing cached)
//! spends a measurable share of its time hashing, comparing and cloning
//! short strings: function names, callee names, symbol names. An
//! [`Interner`] maps each distinct string to a dense [`Sym`] handle —
//! a `u32` — so the hot loops hash and compare 4-byte integers and only
//! touch the character data when a name is actually materialized into
//! output.
//!
//! [`ColdPath`] selects between the pre-optimization data structures
//! (kept in-tree as the *reference* implementation) and the optimized
//! ones; see `DESIGN.md` §10. Both produce byte-identical analysis
//! output — the benchmark gate in `scripts/check.sh` asserts exactly
//! that while measuring the speedup.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Which cold-path data-structure implementation the analysis uses.
///
/// Output is byte-identical either way (`coldpath_bench` asserts it on
/// every run); only speed differs. The knob is therefore deliberately
/// **excluded** from the cache's `config_fingerprint` — entries computed
/// under either mode are interchangeable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ColdPath {
    /// The pre-optimization implementations: `BTreeSet` visited sets and
    /// block-entry states, debug-formatted region keys, full-scan
    /// reaching-def queries, per-slice dictionary scans. Kept as the
    /// baseline the optimized path is benchmarked and byte-compared
    /// against.
    Reference,
    /// Interned keys, bitset dataflow states, memoized classification.
    #[default]
    Optimized,
}

/// Interned handle for a string: dense, `Copy`, 4 bytes.
///
/// Handles are only meaningful relative to the [`Interner`] that issued
/// them; two interners number their strings independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub u32);

/// A string interner: each distinct string gets one [`Sym`], equal
/// strings always get the same one.
///
/// # Examples
///
/// ```
/// use firmres_ir::Interner;
///
/// let mut names = Interner::new();
/// let a = names.intern("SSL_write");
/// let b = names.intern("sprintf");
/// assert_ne!(a, b);
/// assert_eq!(a, names.intern("SSL_write"));
/// assert_eq!(names.resolve(a), "SSL_write");
/// ```
#[derive(Debug, Default, Clone)]
pub struct Interner {
    index: HashMap<Box<str>, Sym, FnvBuildHasher>,
    strings: Vec<Box<str>>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Intern `s`, returning its handle (allocating one if unseen).
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.index.get(s) {
            return sym;
        }
        let sym = Sym(u32::try_from(self.strings.len()).expect("interner overflow"));
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.index.insert(boxed, sym);
        sym
    }

    /// The handle of `s` if it was interned before, without interning it.
    pub fn get(&self, s: &str) -> Option<Sym> {
        self.index.get(s).copied()
    }

    /// The string behind `sym`.
    ///
    /// # Panics
    ///
    /// Panics when `sym` was not issued by this interner.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.0 as usize]
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

/// FNV-1a, the workspace's standard hasher for small keys.
///
/// The standard library's default hasher (SipHash) is keyed and
/// DoS-resistant but noticeably slower on the 4–40 byte keys the
/// analysis hashes in bulk (interned symbols, op positions, region
/// keys). All inputs here are derived from the firmware image under
/// analysis, not from untrusted network peers, so the cheaper
/// non-keyed hash is appropriate.
#[derive(Debug, Clone, Copy)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

/// [`std::hash::BuildHasher`] for [`FnvHasher`], for `HashMap`/`HashSet`
/// type parameters.
pub type FnvBuildHasher = BuildHasherDefault<FnvHasher>;

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn intern_round_trips() {
        let mut i = Interner::new();
        let names = ["sprintf", "SSL_write", "nvram_get", "", "日本語"];
        let syms: Vec<Sym> = names.iter().map(|n| i.intern(n)).collect();
        for (name, sym) in names.iter().zip(&syms) {
            assert_eq!(i.resolve(*sym), *name);
            assert_eq!(i.get(name), Some(*sym));
        }
        assert_eq!(i.len(), names.len());
    }

    #[test]
    fn equal_strings_share_a_handle() {
        let mut i = Interner::new();
        let a = i.intern("strcat");
        let b = i.intern("strcat");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn get_does_not_intern() {
        let i = Interner::new();
        assert_eq!(i.get("missing"), None);
        assert!(i.is_empty());
    }

    #[test]
    fn cold_path_defaults_to_optimized() {
        assert_eq!(ColdPath::default(), ColdPath::Optimized);
    }

    proptest::proptest! {
        #[test]
        fn interning_round_trips(names in proptest::collection::vec("[a-zA-Z0-9_=%. -]{0,24}", 0..40)) {
            let mut i = Interner::new();
            let syms: Vec<Sym> = names.iter().map(|n| i.intern(n)).collect();
            for (name, sym) in names.iter().zip(&syms) {
                proptest::prop_assert_eq!(i.resolve(*sym), name.as_str());
            }
        }

        #[test]
        fn distinct_strings_never_conflate(names in proptest::collection::vec("[a-zA-Z0-9_]{0,16}", 0..40)) {
            let mut i = Interner::new();
            let syms: Vec<Sym> = names.iter().map(|n| i.intern(n)).collect();
            for (a, sa) in names.iter().zip(&syms) {
                for (b, sb) in names.iter().zip(&syms) {
                    // Same handle exactly when the strings are equal.
                    proptest::prop_assert_eq!(sa == sb, a == b);
                }
            }
            proptest::prop_assert_eq!(
                i.len(),
                names.iter().collect::<HashSet<_>>().len()
            );
        }
    }

    #[test]
    fn fnv_hasher_is_deterministic_and_spreads() {
        use std::hash::BuildHasher;
        let bh = FnvBuildHasher::default();
        let h = |s: &str| bh.hash_one(s);
        assert_eq!(h("mac"), h("mac"));
        let distinct: HashSet<u64> = ["mac", "sn", "uid", "token", ""]
            .iter()
            .map(|s| h(s))
            .collect();
        assert_eq!(distinct.len(), 5);
    }
}
