//! Known-library script recording and replay: `LibId::On` must produce
//! node-for-node identical taint trees to the full-traversal oracle,
//! while actually skipping the library-body traversals.

use firmres_dataflow::{
    FieldSource, LibFunc, LibId, LibIndex, TaintConfig, TaintEngine, TaintTree,
};
use firmres_ir::{function_content_hash, Program};
use firmres_isa::{lift, Assembler};
use std::sync::Arc;

/// Two library-shaped functions: `z_pack` writes its second argument
/// into the buffer arriving through its first (out-param role), `z_fmt`
/// derives its return value from its argument (return role). Both
/// thread values through stack slots, the def-use shape that makes real
/// library bodies expensive to traverse.
const SRC: &str = r#"
.func z_pack dst src
.local s0 4
.local s1 4
    sw  a1, s0(sp)
    lw  t0, s0(sp)
    sw  t0, s1(sp)
    lw  a1, s1(sp)
    callx strcat
    ret
.endfunc
.func z_fmt val
.local r0 4
.local r1 4
    sw  a0, r0(sp)
    lw  t0, r0(sp)
    sw  t0, r1(sp)
    lw  a0, r1(sp)
    callx hmac_sign
    ret
.endfunc
.func main
.local buf 64
.local v0 4
.local v1 4
.local saved 4
    sw  ra, saved(sp)
    la  a0, key
    callx nvram_get
    sw  rv, v0(sp)
    lea a0, buf
    lw  a1, v0(sp)
    call z_pack
    la  a0, sk
    callx cfg_get
    mov a0, rv
    call z_fmt
    sw  rv, v1(sp)
    lea a0, buf
    lw  a1, v1(sp)
    callx strcat
    lea a1, buf
    li  a0, 1
    callx SSL_write
    lw  ra, saved(sp)
    ret
.endfunc
.data
key: .asciz "serial"
sk:  .asciz "secret"
"#;

fn program() -> Program {
    let exe = Assembler::new().assemble(SRC).unwrap();
    lift(&exe, "libid-replay").unwrap()
}

fn build_index(p: &Program) -> Arc<LibIndex> {
    let recorder = TaintEngine::new(p);
    let mut entries = Vec::new();
    for name in ["z_pack", "z_fmt"] {
        let f = p.function_by_name(name).unwrap();
        let scripts = recorder.record_lib_function(f.entry()).unwrap();
        assert!(
            scripts.rejected.is_empty(),
            "{name} roles all record: {:?}",
            scripts.rejected
        );
        assert!(!scripts.is_empty(), "{name} recorded at least one role");
        entries.push((
            function_content_hash(f),
            LibFunc {
                lib: "zlibx".into(),
                version: "1.2".into(),
                func: name.into(),
                entry: f.entry(),
                scripts,
            },
        ));
    }
    Arc::new(LibIndex::new(entries, p.data_base()))
}

fn delivery_query(p: &Program) -> (u64, u64) {
    let f = p.function_by_name("main").unwrap();
    let call = f
        .callsites()
        .find(|c| c.call_target().and_then(|t| p.callee_name(t)) == Some("SSL_write"))
        .unwrap()
        .addr;
    (f.entry(), call)
}

fn render(tree: &TaintTree) -> String {
    format!("{:?}", tree.nodes())
}

#[test]
fn replay_reproduces_the_full_traversal_tree_exactly() {
    let p = program();
    let index = build_index(&p);
    let (func, call) = delivery_query(&p);

    let off = TaintEngine::new(&p);
    let on = TaintEngine::with_config(
        &p,
        TaintConfig {
            libid: LibId::On,
            lib_index: Some(Arc::clone(&index)),
            ..TaintConfig::default()
        },
    );
    assert_eq!(off.lib_matched(), 0);
    assert_eq!(on.lib_matched(), 2, "both library functions hash-match");

    let (tree_off, stats_off) = off.trace_with_stats(func, call, 1);
    let (tree_on, stats_on) = on.trace_with_stats(func, call, 1);
    assert_eq!(
        render(&tree_off),
        render(&tree_on),
        "LibId::On tree is node-for-node identical to the oracle"
    );
    assert_eq!(stats_off, Default::default(), "oracle replays nothing");
    assert!(
        stats_on.traversals_skipped >= 2,
        "both the out-param and the return application replayed: {stats_on:?}"
    );
    assert!(stats_on.summary_applications > 0, "{stats_on:?}");

    // The trace still reaches the concrete sources through the replayed
    // library regions.
    let srcs: Vec<String> = tree_on
        .sources()
        .map(|n| n.source().unwrap().to_string())
        .collect();
    assert!(
        srcs.iter().any(|s| s.contains("nvram_get(\"serial\")")),
        "value packed through z_pack resolves: {srcs:?}"
    );
    assert!(
        srcs.iter().any(|s| s.contains("cfg_get(\"secret\")")),
        "value derived through z_fmt resolves: {srcs:?}"
    );
}

#[test]
fn deps_match_between_oracle_and_replay() {
    let p = program();
    let index = build_index(&p);
    let (func, call) = delivery_query(&p);
    let off = TaintEngine::new(&p);
    let on = TaintEngine::with_config(
        &p,
        TaintConfig {
            libid: LibId::On,
            lib_index: Some(index),
            ..TaintConfig::default()
        },
    );
    let (_, deps_off) = off.trace_with_deps(func, call, 1);
    let (_, deps_on) = on.trace_with_deps(func, call, 1);
    assert_eq!(
        deps_off, deps_on,
        "incremental invalidation sees identical inputs either way"
    );
}

#[test]
fn recorder_rejects_image_dependent_functions() {
    let src = r#"
.func uses_data out
    la  a1, tag
    callx strcat
    ret
.endfunc
.func main
    ret
.endfunc
.data
tag: .asciz "v1"
"#;
    let exe = Assembler::new().assemble(src).unwrap();
    let p = lift(&exe, "t").unwrap();
    let engine = TaintEngine::new(&p);
    let f = p.function_by_name("uses_data").unwrap();
    let scripts = engine.record_lib_function(f.entry()).unwrap();
    assert!(
        scripts.is_empty(),
        "data-segment constant rejects every role"
    );
    assert!(
        scripts
            .rejected
            .iter()
            .any(|(_, r)| r.contains("data segment")),
        "{:?}",
        scripts.rejected
    );
}

#[test]
fn matching_is_gated_on_ablated_configs() {
    let p = program();
    let index = build_index(&p);
    for (overtaint, decompose) in [(false, true), (true, false)] {
        let engine = TaintEngine::with_config(
            &p,
            TaintConfig {
                overtaint,
                decompose_buffers: decompose,
                libid: LibId::On,
                lib_index: Some(Arc::clone(&index)),
                ..TaintConfig::default()
            },
        );
        assert_eq!(
            engine.lib_matched(),
            0,
            "scripts were recorded under default semantics; ablations fall back"
        );
    }
}

#[test]
fn unresolved_leaves_replay_with_interned_reasons() {
    // A replayed script may carry Unresolved leaves ("no definition",
    // "no writes to buffer"); they must compare identical to the
    // oracle's interned &'static strs.
    let p = program();
    let index = build_index(&p);
    let (func, call) = delivery_query(&p);
    let on = TaintEngine::with_config(
        &p,
        TaintConfig {
            libid: LibId::On,
            lib_index: Some(index),
            ..TaintConfig::default()
        },
    );
    let tree = on.trace(func, call, 1);
    for node in tree.nodes() {
        if let Some(FieldSource::Unresolved { reason }) = node.source() {
            assert!(
                firmres_dataflow::UNRESOLVED_REASONS.contains(reason),
                "replayed reason is canonical: {reason}"
            );
        }
    }
}
