//! Additional backward-taint scenarios over lifted MR32 programs:
//! message-construction idioms beyond the unit-test basics.

use firmres_dataflow::{FieldSource, SourceKind, TaintEngine};
use firmres_ir::Program;
use firmres_isa::{lift, Assembler};

fn trace(src: &str, delivery: &str, arg: usize) -> (Vec<String>, Program) {
    let exe = Assembler::new().assemble(src).unwrap();
    let p = lift(&exe, "t").unwrap();
    let mut found = None;
    for f in p.functions() {
        for c in f.callsites() {
            if c.call_target().and_then(|t| p.callee_name(t)) == Some(delivery) {
                found = Some((f.entry(), c.addr));
            }
        }
    }
    let (func, call) = found.expect("delivery present");
    let tree = TaintEngine::new(&p).trace(func, call, arg);
    let sources = tree
        .sources()
        .map(|n| n.source().unwrap().to_string())
        .collect();
    (sources, p)
}

#[test]
fn config_and_env_sources_resolve_with_keys() {
    let (srcs, _) = trace(
        r#"
.func main
.local buf 128
    la  a0, k1
    callx cfg_get
    mov a2, rv
    la  a0, k2
    callx getenv
    mov a3, rv
    lea a0, buf
    la  a1, fmt
    callx sprintf
    lea a1, buf
    li  a0, 1
    callx SSL_write
    ret
.endfunc
.data
k1: .asciz "product_id"
k2: .asciz "HTTP_PROXY"
fmt: .asciz "pid=%s&proxy=%s"
"#,
        "SSL_write",
        1,
    );
    assert!(
        srcs.iter().any(|s| s.contains("cfg_get(\"product_id\")")),
        "{srcs:?}"
    );
    assert!(
        srcs.iter().any(|s| s.contains("getenv(\"HTTP_PROXY\")")),
        "{srcs:?}"
    );
}

#[test]
fn derived_signature_flows_through_hmac() {
    let (srcs, _) = trace(
        r#"
.func main
.local buf 64
.local sig 4
    la  a0, sk
    callx nvram_get
    mov a0, rv
    la  a1, data
    callx hmac_sign
    sw  rv, sig(sp)
    lea a0, buf
    la  a1, ksig
    callx strcpy
    lea a0, buf
    lw  a1, sig(sp)
    callx strcat
    lea a1, buf
    li  a0, 1
    callx SSL_write
    ret
.endfunc
.data
sk: .asciz "device_secret"
data: .asciz "payload"
ksig: .asciz "sign="
"#,
        "SSL_write",
        1,
    );
    assert!(
        srcs.iter()
            .any(|s| s.contains("nvram_get(\"device_secret\")")),
        "the secret feeding the HMAC is reached: {srcs:?}"
    );
    assert!(srcs.iter().any(|s| s.contains("payload")), "{srcs:?}");
}

#[test]
fn time_and_rand_are_terminal_sources() {
    let (srcs, _) = trace(
        r#"
.func main
.local buf 64
.local ts 4
    callx time
    sw  rv, ts(sp)
    lw  a2, ts(sp)
    callx rand
    mov a3, rv
    lea a0, buf
    la  a1, fmt
    callx sprintf
    lea a1, buf
    li  a0, 3
    callx send
    ret
.endfunc
.data
fmt: .asciz "ts=%d&nonce=%d"
"#,
        "send",
        1,
    );
    assert!(srcs.iter().any(|s| s.contains("time()")), "{srcs:?}");
    assert!(srcs.iter().any(|s| s.contains("rand()")), "{srcs:?}");
}

#[test]
fn two_level_helper_chain_with_buffer_params() {
    // main -> fill_outer(buf) -> fill_inner(buf): writes two levels deep.
    let (srcs, _) = trace(
        r#"
.func fill_inner out
    mov a0, a0
    la  a1, deep
    callx strcat
    ret
.endfunc
.func fill_outer out
.local saved 4
    sw  ra, saved(sp)
    mov a0, a0
    la  a1, shallow
    callx strcpy
    call fill_inner
    lw  ra, saved(sp)
    ret
.endfunc
.func main
.local buf 64
.local saved 4
    sw  ra, saved(sp)
    lea a0, buf
    call fill_outer
    lea a1, buf
    li  a0, 1
    callx SSL_write
    lw  ra, saved(sp)
    ret
.endfunc
.data
shallow: .asciz "level1="
deep: .asciz "level2"
"#,
        "SSL_write",
        1,
    );
    assert!(
        srcs.iter().any(|s| s.contains("level1=")),
        "outer write found: {srcs:?}"
    );
    assert!(
        srcs.iter().any(|s| s.contains("level2")),
        "inner write found: {srcs:?}"
    );
}

#[test]
fn numeric_constants_surface_as_noise() {
    let (srcs, _) = trace(
        r#"
.func main
.local buf 32
    lea a0, buf
    la  a1, fmt
    li  a2, 404
    callx sprintf
    lea a1, buf
    li  a0, 1
    callx SSL_write
    ret
.endfunc
.data
fmt: .asciz "code=%d"
"#,
        "SSL_write",
        1,
    );
    assert!(
        srcs.iter().any(|s| s.contains("0x194")),
        "inline numeric constant reported: {srcs:?}"
    );
}

#[test]
fn network_input_classified_as_net_in() {
    let src = r#"
.func main
.local req 64
    li  a0, 4
    lea a1, req
    li  a2, 64
    li  a3, 0
    callx recv
    lea a1, req
    li  a0, 4
    li  a2, 0
    li  a3, 0
    callx send
    ret
.endfunc
"#;
    let exe = Assembler::new().assemble(src).unwrap();
    let p = lift(&exe, "t").unwrap();
    let f = p.function_by_name("main").unwrap();
    let call = f
        .callsites()
        .find(|c| c.call_target().and_then(|t| p.callee_name(t)) == Some("send"))
        .unwrap()
        .addr;
    let tree = TaintEngine::new(&p).trace(f.entry(), call, 1);
    let net_in = tree.sources().filter_map(|n| n.source()).any(|s| {
        matches!(
            s,
            FieldSource::LibCall {
                kind: SourceKind::NetworkIn,
                ..
            }
        )
    });
    assert!(net_in, "echoed buffer traces to the recv source");
}
