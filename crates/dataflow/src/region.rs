//! Pointer/region resolution.
//!
//! Message buffers are referenced through pointers (a `lea` of a stack
//! local, a data-segment address, or the result of an allocator such as
//! `cJSON_CreateObject`). To find the *writes* that filled a buffer, the
//! taint engine first resolves a pointer-valued varnode to an abstract
//! [`Region`], then looks for operations whose destination resolves to the
//! same region.

use crate::defuse::{op_at, DefUse, OpRef};
use firmres_ir::{AddressSpace, Function, Opcode, Program, Varnode};

/// An abstract memory region a pointer may refer to.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Region {
    /// A stack buffer rooted at the given frame offset.
    Stack(i64),
    /// A data-segment object at the given absolute address.
    Data(u64),
    /// Memory allocated by a call (e.g. `cJSON_CreateObject`), identified
    /// by the allocating callsite address.
    Alloc(u64),
    /// Unknown — resolution failed.
    Unknown,
}

impl Region {
    /// Whether the region was resolved.
    pub fn is_known(&self) -> bool {
        !matches!(self, Region::Unknown)
    }
}

/// Maximum definition-chain length walked during resolution.
const MAX_STEPS: usize = 32;

/// Resolve the pointer value held in `varnode` just before `at` executes.
///
/// Resolution walks back through `COPY`, constant folding of
/// `INT_ADD`/`PTRADD` with constant displacement, stack-slot copies, and
/// call results (which become [`Region::Alloc`] identified by the call
/// address). Over-approximation is deliberate: an unresolvable pointer
/// yields [`Region::Unknown`], which the engine treats conservatively.
pub fn resolve_region(
    program: &Program,
    f: &Function,
    du: &DefUse,
    at: OpRef,
    varnode: &Varnode,
) -> Region {
    resolve_inner(program, f, du, at, varnode, 0, MAX_STEPS)
}

fn resolve_inner(
    program: &Program,
    f: &Function,
    du: &DefUse,
    at: OpRef,
    varnode: &Varnode,
    disp: i64,
    budget: usize,
) -> Region {
    if budget == 0 {
        return Region::Unknown;
    }
    // Constants: either data pointers or plain numbers (numbers yield a
    // data region only when they land inside the data segment).
    if let Some(value) = varnode.const_value() {
        let addr = (value as i64 + disp) as u64;
        let data_end = program.data_base() + program.data_bytes().len() as u64;
        if addr >= program.data_base() && addr < data_end {
            return Region::Data(addr);
        }
        return Region::Unknown;
    }
    // A stack varnode used *as a value* holds whatever was stored there;
    // chase the store. (Its own address is Region::Stack(offset), but that
    // is only relevant when it appears as an address expression — the
    // lifter never takes addresses of slots except via sp arithmetic.)
    let defs = du.reaching_defs(at, varnode);
    if defs.is_empty() {
        // Parameters and sp: sp + disp is a stack region.
        if varnode.space == AddressSpace::Register && varnode.offset == 2 {
            return Region::Stack(disp);
        }
        return Region::Unknown;
    }
    let mut result: Option<Region> = None;
    for d in defs {
        let op = op_at(f, d);
        let r = match op.opcode {
            Opcode::Copy => resolve_inner(program, f, du, d, &op.inputs[0], disp, budget - 1),
            Opcode::IntAdd | Opcode::PtrAdd => {
                let (a, b) = (&op.inputs[0], &op.inputs[1]);
                match (a.const_value(), b.const_value()) {
                    (_, Some(k)) => {
                        resolve_inner(program, f, du, d, a, disp + k as i32 as i64, budget - 1)
                    }
                    (Some(k), _) => {
                        resolve_inner(program, f, du, d, b, disp + k as i32 as i64, budget - 1)
                    }
                    _ => Region::Unknown,
                }
            }
            // Only genuine allocator calls (RetAlloc summaries, e.g.
            // cJSON_CreateObject) produce a fresh region. Other call
            // results stay Unknown so value-level tainting handles them
            // through summaries or by descending into the callee.
            Opcode::Call => {
                let is_alloc = op
                    .call_target()
                    .and_then(|t| program.callee_name(t))
                    .and_then(crate::summary::summary_for)
                    .is_some_and(|s| {
                        s.effects
                            .iter()
                            .any(|e| matches!(e, crate::summary::SummaryEffect::RetAlloc))
                    });
                if is_alloc {
                    Region::Alloc(op.addr)
                } else {
                    Region::Unknown
                }
            }
            _ => Region::Unknown,
        };
        match (&result, &r) {
            (None, _) => result = Some(r),
            (Some(prev), next) if prev == next => {}
            // Conflicting resolutions across paths: give up.
            _ => return Region::Unknown,
        }
    }
    result.unwrap_or(Region::Unknown)
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmres_isa::{lift, Assembler};

    fn setup(src: &str) -> (Program, String) {
        let exe = Assembler::new().assemble(src).unwrap();
        let p = lift(&exe, "t").unwrap();
        (p, "main".to_string())
    }

    fn region_of_call_arg(program: &Program, func: &str, callee: &str, arg: usize) -> Region {
        let f = program.function_by_name(func).unwrap();
        let du = DefUse::compute(f);
        let call = f
            .callsites()
            .find(|c| {
                c.call_target()
                    .and_then(|t| program.callee_name(t))
                    .is_some_and(|n| n == callee)
            })
            .unwrap()
            .clone();
        let at = du.position_of(call.addr).unwrap();
        resolve_region(program, f, &du, at, &call.call_args()[arg])
    }

    #[test]
    fn lea_of_local_resolves_to_stack() {
        let (p, f) = setup(
            r#"
.func main
.local buf 64
    lea a0, buf
    callx SSL_write
    ret
.endfunc
"#,
        );
        assert_eq!(region_of_call_arg(&p, &f, "SSL_write", 0), Region::Stack(0));
    }

    #[test]
    fn second_local_resolves_with_offset() {
        let (p, f) = setup(
            r#"
.func main
.local a 16
.local b 16
    lea a0, b
    callx SSL_write
    ret
.endfunc
"#,
        );
        assert_eq!(
            region_of_call_arg(&p, &f, "SSL_write", 0),
            Region::Stack(16)
        );
    }

    #[test]
    fn data_label_resolves_to_data() {
        let (p, f) = setup(
            ".func main\n la a0, msg\n callx SSL_write\n ret\n.endfunc\n.data\nmsg: .asciz \"hi\"\n",
        );
        match region_of_call_arg(&p, &f, "SSL_write", 0) {
            Region::Data(addr) => assert_eq!(p.string_at(addr), Some("hi")),
            other => panic!("expected data region, got {other:?}"),
        }
    }

    #[test]
    fn call_results_become_alloc_regions() {
        let (p, f) = setup(
            r#"
.func main
    callx cJSON_CreateObject
    mov a0, rv
    callx cJSON_Print
    ret
.endfunc
"#,
        );
        match region_of_call_arg(&p, &f, "cJSON_Print", 0) {
            Region::Alloc(_) => {}
            other => panic!("expected alloc region, got {other:?}"),
        }
    }

    #[test]
    fn copies_through_registers_are_followed() {
        let (p, f) = setup(
            r#"
.func main
.local buf 32
    lea t0, buf
    mov t1, t0
    mov a0, t1
    callx SSL_write
    ret
.endfunc
"#,
        );
        assert_eq!(region_of_call_arg(&p, &f, "SSL_write", 0), Region::Stack(0));
    }

    #[test]
    fn pointer_arithmetic_accumulates_displacement() {
        let (p, f) = setup(
            r#"
.func main
.local buf 64
    lea t0, buf
    addi a0, t0, 8
    callx SSL_write
    ret
.endfunc
"#,
        );
        assert_eq!(region_of_call_arg(&p, &f, "SSL_write", 0), Region::Stack(8));
    }

    #[test]
    fn unresolvable_pointer_is_unknown() {
        let (p, f) = setup(
            r#"
.func main p
    lw a0, 0(a0)
    callx SSL_write
    ret
.endfunc
"#,
        );
        assert_eq!(region_of_call_arg(&p, &f, "SSL_write", 0), Region::Unknown);
        assert!(!Region::Unknown.is_known());
    }
}
