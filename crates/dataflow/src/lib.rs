//! # firmres-dataflow
//!
//! The static dataflow framework underpinning FIRMRES (paper §IV-B):
//! intra-procedural reaching definitions, pointer/region resolution,
//! library-call summaries, and the backward inter-procedural taint engine
//! that traces device-cloud message contents from their delivery callsites
//! back to the sources of individual message fields.
//!
//! Terminology follows the paper: the **taint sources** are the arguments
//! of message-delivery callsites (`SSL_write`, `mosquitto_publish`,
//! `http_post`, …) and the **taint sinks** are the origins of message
//! fields (string constants, NVRAM/config reads, device-info getters,
//! front-end input). [`TaintEngine::trace`] returns a [`TaintTree`] whose
//! root is the delivery argument and whose leaves are those field sources —
//! exactly the structure the `firmres-mft` crate turns into a Message
//! Field Tree.
//!
//! # Examples
//!
//! ```
//! use firmres_dataflow::TaintEngine;
//! use firmres_isa::{Assembler, lift};
//!
//! let exe = Assembler::new().assemble(r#"
//! .func main
//! .local buf 64
//!     lea a0, buf
//!     la  a1, fmt
//!     callx nvram_get      ; rv = nvram_get(fmt)... (illustrative)
//!     lea a0, buf
//!     callx SSL_write
//!     ret
//! .endfunc
//! .data
//! fmt: .asciz "mac"
//! "#)?;
//! let prog = lift(&exe, "demo")?;
//! let engine = TaintEngine::new(&prog);
//! let f = prog.function_by_name("main").unwrap();
//! let callsite = f.callsites().last().unwrap().addr;
//! let tree = engine.trace(f.entry(), callsite, 0);
//! assert!(tree.len() >= 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod defuse;
mod libsum;
mod region;
mod summary;
mod taint;

pub use defuse::{DefUse, OpRef};
pub use libsum::{
    intern_rejection_reason, LibFunc, LibFuncScripts, LibId, LibIndex, LibRegionKey, LibScript,
    LibStats, LibStep, REJECTION_REASONS,
};
pub use region::{resolve_region, Region};
pub use summary::{
    delivery_endpoint_arg, delivery_payload_arg, incoming_buffer_arg, is_outgoing, summary_for,
    SourceKind, Summary, SummaryEffect,
};
pub use taint::{
    intern_unresolved_reason, FieldSource, TaintConfig, TaintEngine, TaintNode, TaintNodeId,
    TaintNodeKind, TaintSummary, TaintTree, TraceDeps, UNRESOLVED_REASONS,
};
