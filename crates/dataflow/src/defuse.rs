//! Intra-procedural reaching definitions over the IR.

use firmres_ir::{BlockId, Function, PcodeOp, Varnode};
use std::collections::{BTreeMap, BTreeSet};

/// Position of an operation within a function: `(block, index in block)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpRef {
    /// Containing basic block.
    pub block: BlockId,
    /// Index of the operation within the block.
    pub index: usize,
}

/// Reaching-definitions analysis for one function.
///
/// Definitions are operations whose `output` is a given varnode. The
/// analysis is a standard forward may-analysis with gen/kill per block,
/// solved with a worklist; queries then combine block-entry states with a
/// backward scan inside the block.
///
/// # Examples
///
/// ```
/// use firmres_dataflow::DefUse;
/// use firmres_ir::{FunctionBuilder, Varnode};
///
/// let mut fb = FunctionBuilder::new("f", 0);
/// let x = fb.local("x", 4);
/// fb.copy(x.clone(), Varnode::constant(1, 4));
/// fb.copy(x.clone(), Varnode::constant(2, 4));
/// fb.ret();
/// let f = fb.finish();
/// let du = DefUse::compute(&f);
/// // At the ret (index 2), only the second copy reaches.
/// let defs = du.reaching_defs(
///     firmres_dataflow::OpRef { block: firmres_ir::BlockId(0), index: 2 },
///     &x,
/// );
/// assert_eq!(defs.len(), 1);
/// assert_eq!(defs[0].index, 1);
/// ```
#[derive(Debug)]
pub struct DefUse {
    /// All definition sites, in block order.
    defs: Vec<(OpRef, Varnode)>,
    /// Per-block set of reaching definition indices at block entry.
    block_in: Vec<BTreeSet<usize>>,
    /// Map from op address to position (first occurrence).
    addr_index: BTreeMap<u64, OpRef>,
    /// Block op lists are borrowed through the function; we keep block
    /// lengths for validation.
    block_lens: Vec<usize>,
}

impl DefUse {
    /// Run the analysis on `f`.
    pub fn compute(f: &Function) -> Self {
        let nblocks = f.blocks().len();
        let mut defs: Vec<(OpRef, Varnode)> = Vec::new();
        let mut addr_index = BTreeMap::new();
        let mut block_lens = Vec::with_capacity(nblocks);
        for (bi, block) in f.blocks().iter().enumerate() {
            block_lens.push(block.ops.len());
            for (oi, op) in block.ops.iter().enumerate() {
                let r = OpRef {
                    block: BlockId(bi as u32),
                    index: oi,
                };
                addr_index.entry(op.addr).or_insert(r);
                if let Some(out) = &op.output {
                    defs.push((r, out.clone()));
                }
            }
        }
        // gen[b]: last def index per varnode in block b.
        // kill handled implicitly: a def of v kills all other defs of v.
        let mut gen_last: Vec<BTreeMap<&Varnode, usize>> = vec![BTreeMap::new(); nblocks];
        let mut killed_vars: Vec<BTreeSet<&Varnode>> = vec![BTreeSet::new(); nblocks];
        for (i, (r, v)) in defs.iter().enumerate() {
            let b = r.block.0 as usize;
            gen_last[b].insert(v, i);
            killed_vars[b].insert(v);
        }
        let preds = f.predecessors();
        let mut block_in: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); nblocks];
        let mut block_out: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); nblocks];
        let mut work: Vec<usize> = (0..nblocks).collect();
        while let Some(b) = work.pop() {
            let mut input = BTreeSet::new();
            for p in &preds[b] {
                input.extend(block_out[p.0 as usize].iter().copied());
            }
            let mut out: BTreeSet<usize> = input
                .iter()
                .copied()
                .filter(|&d| !killed_vars[b].contains(&defs[d].1))
                .collect();
            out.extend(gen_last[b].values().copied());
            let changed = out != block_out[b] || input != block_in[b];
            block_in[b] = input;
            if changed {
                block_out[b] = out;
                for (sb, blk) in f.blocks().iter().enumerate() {
                    let _ = blk;
                    // successors of b get re-queued
                    if f.blocks()[b].successors.iter().any(|s| s.0 as usize == sb)
                        && !work.contains(&sb)
                    {
                        work.push(sb);
                    }
                }
            }
        }
        DefUse {
            defs,
            block_in,
            addr_index,
            block_lens,
        }
    }

    /// Position of the operation at machine address `addr`, if present.
    pub fn position_of(&self, addr: u64) -> Option<OpRef> {
        self.addr_index.get(&addr).copied()
    }

    /// All definition sites of `varnode` anywhere in the function.
    pub fn all_defs(&self, varnode: &Varnode) -> Vec<OpRef> {
        self.defs
            .iter()
            .filter(|(_, v)| v == varnode)
            .map(|(r, _)| *r)
            .collect()
    }

    /// Definitions of `varnode` that reach the program point just *before*
    /// `at` executes.
    pub fn reaching_defs(&self, at: OpRef, varnode: &Varnode) -> Vec<OpRef> {
        let b = at.block.0 as usize;
        if b >= self.block_lens.len() {
            return Vec::new();
        }
        // Backward scan within the block.
        let mut best: Option<OpRef> = None;
        for (r, v) in self.defs.iter().rev() {
            if r.block == at.block && r.index < at.index && v == varnode {
                best = Some(*r);
                break;
            }
        }
        if let Some(r) = best {
            return vec![r];
        }
        // Fall back to block-entry state.
        self.block_in[b]
            .iter()
            .filter(|&&d| &self.defs[d].1 == varnode)
            .map(|&d| self.defs[d].0)
            .collect()
    }

    /// Total number of definition sites.
    pub fn def_count(&self) -> usize {
        self.defs.len()
    }
}

/// Fetch the operation at `r` in `f`.
///
/// # Panics
///
/// Panics when `r` does not index a valid operation of `f`; positions must
/// come from the same function the query targets.
pub fn op_at(f: &Function, r: OpRef) -> &PcodeOp {
    &f.block(r.block).ops[r.index]
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmres_ir::{FunctionBuilder, Opcode, Varnode};

    /// x = 1; if (p) { x = 2 } ; use x
    fn diamond() -> Function {
        let mut fb = FunctionBuilder::new("f", 0);
        let p = fb.param("p", 4);
        let x = fb.local("x", 4);
        fb.copy(x.clone(), Varnode::constant(1, 4));
        let c = fb.cmp_ne(p, Varnode::constant(0, 4));
        let then_b = fb.new_block();
        let join = fb.new_block();
        fb.cbranch(c, then_b, join);
        fb.switch_to(then_b);
        fb.copy(x.clone(), Varnode::constant(2, 4));
        fb.jump(join);
        fb.switch_to(join);
        let t = fb.temp(4);
        fb.emit(Opcode::Copy, Some(t), vec![x]);
        fb.ret();
        fb.finish()
    }

    fn local_x(f: &Function) -> Varnode {
        f.symbols()
            .iter()
            .find(|(_, s)| s.name == "x")
            .map(|(v, _)| v.clone())
            .unwrap()
    }

    #[test]
    fn both_branch_defs_reach_join() {
        let f = diamond();
        let du = DefUse::compute(&f);
        let x = local_x(&f);
        // join block is block 2; the use of x is its first op.
        let defs = du.reaching_defs(
            OpRef {
                block: BlockId(2),
                index: 0,
            },
            &x,
        );
        assert_eq!(defs.len(), 2, "defs from both paths reach the join");
    }

    #[test]
    fn in_block_def_shadows_earlier_ones() {
        let f = diamond();
        let du = DefUse::compute(&f);
        let x = local_x(&f);
        // Inside the then-block, after `x = 2`, only that def reaches.
        let defs = du.reaching_defs(
            OpRef {
                block: BlockId(1),
                index: 1,
            },
            &x,
        );
        assert_eq!(defs.len(), 1);
        assert_eq!(
            defs[0],
            OpRef {
                block: BlockId(1),
                index: 0
            }
        );
    }

    #[test]
    fn no_defs_for_params() {
        let f = diamond();
        let du = DefUse::compute(&f);
        let p = f.params()[0].clone();
        let defs = du.reaching_defs(
            OpRef {
                block: BlockId(0),
                index: 1,
            },
            &p,
        );
        assert!(defs.is_empty(), "parameters have no defining op");
    }

    #[test]
    fn loop_defs_flow_around_back_edge() {
        // x = 0; loop: x = x + 1; if (c) goto loop; use x
        let mut fb = FunctionBuilder::new("g", 0);
        let c = fb.param("c", 4);
        let x = fb.local("x", 4);
        fb.copy(x.clone(), Varnode::constant(0, 4));
        let loop_b = fb.new_block();
        let exit = fb.new_block();
        fb.jump(loop_b);
        fb.switch_to(loop_b);
        let t = fb.add(x.clone(), Varnode::constant(1, 4));
        fb.copy(x.clone(), t);
        let cond = fb.cmp_ne(c, Varnode::constant(0, 4));
        fb.cbranch(cond, loop_b, exit);
        fb.switch_to(exit);
        fb.ret();
        let f = fb.finish();
        let du = DefUse::compute(&f);
        // At the top of the loop body, both the init and the loop def reach.
        let defs = du.reaching_defs(
            OpRef {
                block: BlockId(1),
                index: 0,
            },
            &x,
        );
        assert_eq!(defs.len(), 2);
    }

    #[test]
    fn position_and_counts() {
        let f = diamond();
        let du = DefUse::compute(&f);
        assert!(du.def_count() >= 4);
        let first = f.ops().next().unwrap();
        assert_eq!(
            du.position_of(first.addr),
            Some(OpRef {
                block: BlockId(0),
                index: 0
            })
        );
        assert_eq!(du.position_of(0xdead), None);
        let x = local_x(&f);
        assert_eq!(du.all_defs(&x).len(), 2);
    }
}
