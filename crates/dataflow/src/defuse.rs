//! Intra-procedural reaching definitions over the IR.

use firmres_ir::{BlockId, ColdPath, FnvBuildHasher, Function, PcodeOp, Varnode};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// Position of an operation within a function: `(block, index in block)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpRef {
    /// Containing basic block.
    pub block: BlockId,
    /// Index of the operation within the block.
    pub index: usize,
}

/// Per-block entry states of the fixpoint, in one of the two cold-path
/// layouts (see `DESIGN.md` §10). Both hold the same least-fixpoint
/// solution — the unique solution of the dataflow equations — so queries
/// answer identically from either.
#[derive(Debug)]
enum EntryStates {
    /// One ordered set of reaching definition indices per block — the
    /// pre-optimization layout, kept as the benchmark baseline.
    Reference(Vec<BTreeSet<usize>>),
    /// One dense bitset per block: `stride` words per block, bit `d` of
    /// block `b`'s row set iff definition `d` reaches `b`'s entry.
    Bitset { words: Vec<u64>, stride: usize },
}

/// Reaching-definitions analysis for one function.
///
/// Definitions are operations whose `output` is a given varnode. The
/// analysis is a standard forward may-analysis with gen/kill per block,
/// solved with a worklist; queries then combine block-entry states with a
/// backward scan inside the block.
///
/// [`DefUse::compute`] solves with dense u64-word bitsets and a
/// dirty-block worklist; [`DefUse::compute_reference`] runs the original
/// `BTreeSet` formulation. Both reach the same (unique) least fixpoint,
/// so [`DefUse::reaching_defs`] returns identical results either way —
/// `compute_reference` exists as the measured baseline of the cold-path
/// benchmark.
///
/// # Examples
///
/// ```
/// use firmres_dataflow::DefUse;
/// use firmres_ir::{FunctionBuilder, Varnode};
///
/// let mut fb = FunctionBuilder::new("f", 0);
/// let x = fb.local("x", 4);
/// fb.copy(x.clone(), Varnode::constant(1, 4));
/// fb.copy(x.clone(), Varnode::constant(2, 4));
/// fb.ret();
/// let f = fb.finish();
/// let du = DefUse::compute(&f);
/// // At the ret (index 2), only the second copy reaches.
/// let defs = du.reaching_defs(
///     firmres_dataflow::OpRef { block: firmres_ir::BlockId(0), index: 2 },
///     &x,
/// );
/// assert_eq!(defs.len(), 1);
/// assert_eq!(defs[0].index, 1);
/// ```
#[derive(Debug)]
pub struct DefUse {
    /// All definition sites, in block order.
    defs: Vec<(OpRef, Varnode)>,
    /// Contiguous range of `defs` indices per block (defs are collected
    /// in block order, so each block's definitions form one run).
    block_def_ranges: Vec<(u32, u32)>,
    /// Per-block reaching-definition state at block entry.
    entry: EntryStates,
    /// Map from op address to position (first occurrence).
    addr_index: BTreeMap<u64, OpRef>,
    /// Block op lists are borrowed through the function; we keep block
    /// lengths for validation.
    block_lens: Vec<usize>,
}

/// The common front half of both solvers: definition sites, address
/// index, block lengths and per-block def ranges.
struct DefSites {
    defs: Vec<(OpRef, Varnode)>,
    block_def_ranges: Vec<(u32, u32)>,
    addr_index: BTreeMap<u64, OpRef>,
    block_lens: Vec<usize>,
}

fn collect_defs(f: &Function) -> DefSites {
    let nblocks = f.blocks().len();
    let mut defs: Vec<(OpRef, Varnode)> = Vec::new();
    let mut block_def_ranges = Vec::with_capacity(nblocks);
    let mut addr_index = BTreeMap::new();
    let mut block_lens = Vec::with_capacity(nblocks);
    for (bi, block) in f.blocks().iter().enumerate() {
        block_lens.push(block.ops.len());
        let start = defs.len() as u32;
        for (oi, op) in block.ops.iter().enumerate() {
            let r = OpRef {
                block: BlockId(bi as u32),
                index: oi,
            };
            addr_index.entry(op.addr).or_insert(r);
            if let Some(out) = &op.output {
                defs.push((r, out.clone()));
            }
        }
        block_def_ranges.push((start, defs.len() as u32));
    }
    DefSites {
        defs,
        block_def_ranges,
        addr_index,
        block_lens,
    }
}

impl DefUse {
    /// Run the analysis on `f` with the optimized (bitset) state layout.
    pub fn compute(f: &Function) -> Self {
        Self::compute_with(f, ColdPath::Optimized)
    }

    /// Run the analysis with the layout `mode` selects.
    pub fn compute_with(f: &Function, mode: ColdPath) -> Self {
        match mode {
            ColdPath::Reference => Self::compute_reference(f),
            ColdPath::Optimized => Self::compute_bitset(f),
        }
    }

    /// Bitset solver: per-block gen/kill masks over the definition
    /// index space, a dirty-block worklist, and word-wise transfer.
    fn compute_bitset(f: &Function) -> Self {
        let sites = collect_defs(f);
        let nblocks = f.blocks().len();
        let ndefs = sites.defs.len();
        let stride = ndefs.div_ceil(64).max(1);

        // Defs of the same varnode kill each other: group definition
        // indices by varnode once, then OR each group into the kill mask
        // of every block defining that varnode.
        let mut by_var: HashMap<&Varnode, Vec<u32>, FnvBuildHasher> = HashMap::default();
        for (i, (_, v)) in sites.defs.iter().enumerate() {
            by_var.entry(v).or_default().push(i as u32);
        }
        let mut gen_mask = vec![0u64; nblocks * stride];
        let mut kill_mask = vec![0u64; nblocks * stride];
        for (bi, &(start, end)) in sites.block_def_ranges.iter().enumerate() {
            let base = bi * stride;
            // Last def per varnode within the block generates; walking the
            // block's defs backward and skipping already-killed varnodes
            // finds exactly those.
            for i in (start..end).rev() {
                let v = &sites.defs[i as usize].1;
                let group = &by_var[v];
                let killed = group
                    .iter()
                    .any(|&g| kill_mask[base + (g as usize >> 6)] >> (g & 63) & 1 == 1);
                if !killed {
                    gen_mask[base + (i as usize >> 6)] |= 1u64 << (i & 63);
                    for &g in group {
                        kill_mask[base + (g as usize >> 6)] |= 1u64 << (g & 63);
                    }
                }
            }
        }

        let preds = f.predecessors();
        let successors: Vec<&[BlockId]> =
            f.blocks().iter().map(|b| b.successors.as_slice()).collect();
        let mut block_in = vec![0u64; nblocks * stride];
        let mut block_out = vec![0u64; nblocks * stride];
        let mut queued = vec![true; nblocks];
        let mut work: VecDeque<u32> = (0..nblocks as u32).collect();
        while let Some(b) = work.pop_front() {
            let b = b as usize;
            queued[b] = false;
            let base = b * stride;
            for w in 0..stride {
                block_in[base + w] = 0;
            }
            for p in &preds[b] {
                let pbase = p.0 as usize * stride;
                for w in 0..stride {
                    block_in[base + w] |= block_out[pbase + w];
                }
            }
            let mut changed = false;
            for w in 0..stride {
                let out = (block_in[base + w] & !kill_mask[base + w]) | gen_mask[base + w];
                if out != block_out[base + w] {
                    block_out[base + w] = out;
                    changed = true;
                }
            }
            if changed {
                for s in successors[b] {
                    let sb = s.0 as usize;
                    if !queued[sb] {
                        queued[sb] = true;
                        work.push_back(s.0);
                    }
                }
            }
        }
        DefUse {
            defs: sites.defs,
            block_def_ranges: sites.block_def_ranges,
            entry: EntryStates::Bitset {
                words: block_in,
                stride,
            },
            addr_index: sites.addr_index,
            block_lens: sites.block_lens,
        }
    }

    /// The pre-optimization solver, verbatim: `BTreeSet` states and a
    /// `Vec` worklist with linear membership scans.
    pub fn compute_reference(f: &Function) -> Self {
        let sites = collect_defs(f);
        let nblocks = f.blocks().len();
        let defs = &sites.defs;
        // gen[b]: last def index per varnode in block b.
        // kill handled implicitly: a def of v kills all other defs of v.
        let mut gen_last: Vec<BTreeMap<&Varnode, usize>> = vec![BTreeMap::new(); nblocks];
        let mut killed_vars: Vec<BTreeSet<&Varnode>> = vec![BTreeSet::new(); nblocks];
        for (i, (r, v)) in defs.iter().enumerate() {
            let b = r.block.0 as usize;
            gen_last[b].insert(v, i);
            killed_vars[b].insert(v);
        }
        let preds = f.predecessors();
        let mut block_in: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); nblocks];
        let mut block_out: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); nblocks];
        let mut work: Vec<usize> = (0..nblocks).collect();
        while let Some(b) = work.pop() {
            let mut input = BTreeSet::new();
            for p in &preds[b] {
                input.extend(block_out[p.0 as usize].iter().copied());
            }
            let mut out: BTreeSet<usize> = input
                .iter()
                .copied()
                .filter(|&d| !killed_vars[b].contains(&defs[d].1))
                .collect();
            out.extend(gen_last[b].values().copied());
            let changed = out != block_out[b] || input != block_in[b];
            block_in[b] = input;
            if changed {
                block_out[b] = out;
                for (sb, blk) in f.blocks().iter().enumerate() {
                    let _ = blk;
                    // successors of b get re-queued
                    if f.blocks()[b].successors.iter().any(|s| s.0 as usize == sb)
                        && !work.contains(&sb)
                    {
                        work.push(sb);
                    }
                }
            }
        }
        DefUse {
            defs: sites.defs,
            block_def_ranges: sites.block_def_ranges,
            entry: EntryStates::Reference(block_in),
            addr_index: sites.addr_index,
            block_lens: sites.block_lens,
        }
    }

    /// Position of the operation at machine address `addr`, if present.
    pub fn position_of(&self, addr: u64) -> Option<OpRef> {
        self.addr_index.get(&addr).copied()
    }

    /// All definition sites of `varnode` anywhere in the function.
    pub fn all_defs(&self, varnode: &Varnode) -> Vec<OpRef> {
        self.defs
            .iter()
            .filter(|(_, v)| v == varnode)
            .map(|(r, _)| *r)
            .collect()
    }

    /// Definitions of `varnode` that reach the program point just *before*
    /// `at` executes.
    pub fn reaching_defs(&self, at: OpRef, varnode: &Varnode) -> Vec<OpRef> {
        let b = at.block.0 as usize;
        if b >= self.block_lens.len() {
            return Vec::new();
        }
        match &self.entry {
            EntryStates::Reference(block_in) => {
                // Backward scan within the block (the original full-`defs`
                // walk, preserved as the benchmark baseline).
                let mut best: Option<OpRef> = None;
                for (r, v) in self.defs.iter().rev() {
                    if r.block == at.block && r.index < at.index && v == varnode {
                        best = Some(*r);
                        break;
                    }
                }
                if let Some(r) = best {
                    return vec![r];
                }
                // Fall back to block-entry state.
                block_in[b]
                    .iter()
                    .filter(|&&d| &self.defs[d].1 == varnode)
                    .map(|&d| self.defs[d].0)
                    .collect()
            }
            EntryStates::Bitset { words, stride } => {
                // Backward scan within the block, restricted to the
                // block's own contiguous run of definitions.
                let (start, end) = self.block_def_ranges[b];
                for i in (start..end).rev() {
                    let (r, v) = &self.defs[i as usize];
                    if r.index < at.index && v == varnode {
                        return vec![*r];
                    }
                }
                // Fall back to block-entry state: walk the set bits in
                // ascending definition order (matching the ordered-set
                // iteration of the reference layout).
                let row = &words[b * stride..(b + 1) * stride];
                let mut out = Vec::new();
                for (w, &word) in row.iter().enumerate() {
                    let mut bits = word;
                    while bits != 0 {
                        let d = (w << 6) + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let (r, v) = &self.defs[d];
                        if v == varnode {
                            out.push(*r);
                        }
                    }
                }
                out
            }
        }
    }

    /// Total number of definition sites.
    pub fn def_count(&self) -> usize {
        self.defs.len()
    }
}

/// Fetch the operation at `r` in `f`.
///
/// # Panics
///
/// Panics when `r` does not index a valid operation of `f`; positions must
/// come from the same function the query targets.
pub fn op_at(f: &Function, r: OpRef) -> &PcodeOp {
    &f.block(r.block).ops[r.index]
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmres_ir::{FunctionBuilder, Opcode, Varnode};

    /// x = 1; if (p) { x = 2 } ; use x
    fn diamond() -> Function {
        let mut fb = FunctionBuilder::new("f", 0);
        let p = fb.param("p", 4);
        let x = fb.local("x", 4);
        fb.copy(x.clone(), Varnode::constant(1, 4));
        let c = fb.cmp_ne(p, Varnode::constant(0, 4));
        let then_b = fb.new_block();
        let join = fb.new_block();
        fb.cbranch(c, then_b, join);
        fb.switch_to(then_b);
        fb.copy(x.clone(), Varnode::constant(2, 4));
        fb.jump(join);
        fb.switch_to(join);
        let t = fb.temp(4);
        fb.emit(Opcode::Copy, Some(t), vec![x]);
        fb.ret();
        fb.finish()
    }

    fn local_x(f: &Function) -> Varnode {
        f.symbols()
            .iter()
            .find(|(_, s)| s.name == "x")
            .map(|(v, _)| v.clone())
            .unwrap()
    }

    #[test]
    fn both_branch_defs_reach_join() {
        let f = diamond();
        let du = DefUse::compute(&f);
        let x = local_x(&f);
        // join block is block 2; the use of x is its first op.
        let defs = du.reaching_defs(
            OpRef {
                block: BlockId(2),
                index: 0,
            },
            &x,
        );
        assert_eq!(defs.len(), 2, "defs from both paths reach the join");
    }

    #[test]
    fn in_block_def_shadows_earlier_ones() {
        let f = diamond();
        let du = DefUse::compute(&f);
        let x = local_x(&f);
        // Inside the then-block, after `x = 2`, only that def reaches.
        let defs = du.reaching_defs(
            OpRef {
                block: BlockId(1),
                index: 1,
            },
            &x,
        );
        assert_eq!(defs.len(), 1);
        assert_eq!(
            defs[0],
            OpRef {
                block: BlockId(1),
                index: 0
            }
        );
    }

    #[test]
    fn no_defs_for_params() {
        let f = diamond();
        let du = DefUse::compute(&f);
        let p = f.params()[0].clone();
        let defs = du.reaching_defs(
            OpRef {
                block: BlockId(0),
                index: 1,
            },
            &p,
        );
        assert!(defs.is_empty(), "parameters have no defining op");
    }

    #[test]
    fn loop_defs_flow_around_back_edge() {
        // x = 0; loop: x = x + 1; if (c) goto loop; use x
        let mut fb = FunctionBuilder::new("g", 0);
        let c = fb.param("c", 4);
        let x = fb.local("x", 4);
        fb.copy(x.clone(), Varnode::constant(0, 4));
        let loop_b = fb.new_block();
        let exit = fb.new_block();
        fb.jump(loop_b);
        fb.switch_to(loop_b);
        let t = fb.add(x.clone(), Varnode::constant(1, 4));
        fb.copy(x.clone(), t);
        let cond = fb.cmp_ne(c, Varnode::constant(0, 4));
        fb.cbranch(cond, loop_b, exit);
        fb.switch_to(exit);
        fb.ret();
        let f = fb.finish();
        let du = DefUse::compute(&f);
        // At the top of the loop body, both the init and the loop def reach.
        let defs = du.reaching_defs(
            OpRef {
                block: BlockId(1),
                index: 0,
            },
            &x,
        );
        assert_eq!(defs.len(), 2);
    }

    #[test]
    fn position_and_counts() {
        let f = diamond();
        let du = DefUse::compute(&f);
        assert!(du.def_count() >= 4);
        let first = f.ops().next().unwrap();
        assert_eq!(
            du.position_of(first.addr),
            Some(OpRef {
                block: BlockId(0),
                index: 0
            })
        );
        assert_eq!(du.position_of(0xdead), None);
        let x = local_x(&f);
        assert_eq!(du.all_defs(&x).len(), 2);
    }

    /// Every query point of every varnode answers identically from the
    /// bitset and reference solvers.
    fn assert_same_analysis(f: &Function) {
        let fast = DefUse::compute(f);
        let slow = DefUse::compute_reference(f);
        assert_eq!(fast.def_count(), slow.def_count());
        let vars: Vec<Varnode> = {
            let mut vs: Vec<Varnode> = f
                .ops()
                .flat_map(|op| op.inputs.iter().cloned().chain(op.output.clone()))
                .collect();
            vs.sort();
            vs.dedup();
            vs
        };
        for (bi, block) in f.blocks().iter().enumerate() {
            for oi in 0..=block.ops.len() {
                let at = OpRef {
                    block: BlockId(bi as u32),
                    index: oi,
                };
                for v in &vars {
                    assert_eq!(
                        fast.reaching_defs(at, v),
                        slow.reaching_defs(at, v),
                        "divergence at {at:?} for {v:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn bitset_matches_reference_on_branchy_functions() {
        assert_same_analysis(&diamond());
        // Loop shape.
        let mut fb = FunctionBuilder::new("g", 0);
        let c = fb.param("c", 4);
        let x = fb.local("x", 4);
        fb.copy(x.clone(), Varnode::constant(0, 4));
        let loop_b = fb.new_block();
        let exit = fb.new_block();
        fb.jump(loop_b);
        fb.switch_to(loop_b);
        let t = fb.add(x.clone(), Varnode::constant(1, 4));
        fb.copy(x.clone(), t);
        let cond = fb.cmp_ne(c, Varnode::constant(0, 4));
        fb.cbranch(cond, loop_b, exit);
        fb.switch_to(exit);
        fb.ret();
        assert_same_analysis(&fb.finish());
    }

    #[test]
    fn bitset_matches_reference_past_64_defs() {
        // More than 64 definitions forces the multi-word bitset path.
        let mut fb = FunctionBuilder::new("wide", 0);
        let p = fb.param("p", 4);
        let mut locals = Vec::new();
        for i in 0..40 {
            locals.push(fb.local(format!("l{i}"), 4));
        }
        for (i, l) in locals.iter().enumerate() {
            fb.copy(l.clone(), Varnode::constant(i as u64, 4));
        }
        let c = fb.cmp_ne(p, Varnode::constant(0, 4));
        let then_b = fb.new_block();
        let join = fb.new_block();
        fb.cbranch(c, then_b, join);
        fb.switch_to(then_b);
        for (i, l) in locals.iter().enumerate().take(20) {
            fb.copy(l.clone(), Varnode::constant(100 + i as u64, 4));
        }
        fb.jump(join);
        fb.switch_to(join);
        for l in &locals {
            let t = fb.temp(4);
            fb.emit(Opcode::Copy, Some(t), vec![l.clone()]);
        }
        fb.ret();
        let f = fb.finish();
        let du = DefUse::compute(&f);
        assert!(du.def_count() > 64, "need multi-word rows");
        assert_same_analysis(&f);
    }
}
