//! Backward inter-procedural taint analysis (paper §IV-B).
//!
//! The engine starts at a message-delivery callsite argument (the paper's
//! *taint source*) and walks data flows backwards — through copies,
//! arithmetic, summarized library calls, buffer writes, callee returns and
//! caller arguments — until it reaches terminal *taint sinks*: the origins
//! of individual message fields. The result is a [`TaintTree`] whose paths
//! the `firmres-mft` crate renders into code slices and the Message Field
//! Tree.

use crate::defuse::{op_at, DefUse, OpRef};
use crate::libsum::{
    LibFunc, LibFuncScripts, LibId, LibIndex, LibRegionKey, LibScript, LibStats, LibStep,
};
use crate::region::{resolve_region, Region};
use crate::summary::{summary_for, SourceKind, Summary, SummaryEffect};
use firmres_ir::{
    function_content_hash, is_import_address, Address, BlockId, CallGraph, ColdPath,
    FnvBuildHasher, Function, Interner, Opcode, PcodeOp, Program, Sym, Varnode,
};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identifier of a node in a [`TaintTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaintNodeId(pub usize);

/// Terminal origin of a message-field value (the paper's taint sink).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FieldSource {
    /// A string constant in the data segment (request paths, format
    /// strings, JSON keys, hard-coded values).
    StringConstant {
        /// Address in the data segment.
        addr: u64,
        /// The string contents.
        value: String,
    },
    /// A plain numeric constant.
    NumericConstant {
        /// The value.
        value: u64,
    },
    /// A value produced by a summarized source call (`nvram_get`,
    /// `get_mac_addr`, `getenv`, …).
    LibCall {
        /// Source category.
        kind: SourceKind,
        /// The callee name.
        callee: String,
        /// The resolved lookup key (e.g. the NVRAM variable name).
        key: Option<String>,
    },
    /// Flowed to a parameter of an entry-point function with no callers:
    /// front-end/user input.
    EntryParam {
        /// Function name.
        func: String,
        /// Parameter index.
        index: usize,
    },
    /// Resolution gave up (analysis budget, unmodeled operation, …).
    Unresolved {
        /// Why resolution stopped.
        reason: &'static str,
    },
}

/// Every `reason` string the engine puts into
/// [`FieldSource::Unresolved`], in a stable order. Deserializers use
/// [`intern_unresolved_reason`] to map a persisted reason back to the
/// `&'static str` the enum requires.
pub const UNRESOLVED_REASONS: [&str; 14] = [
    "function not found",
    "callsite not found",
    "argument missing",
    "budget exceeded",
    "buffer not decomposed",
    "no definition",
    "non-string data load",
    "unresolved load",
    "unmodeled op",
    "indirect call",
    "summary without return effect",
    "unknown import",
    "missing callee",
    "no writes to buffer",
];

/// Map an arbitrary reason string to the matching `&'static str` from
/// [`UNRESOLVED_REASONS`], so a [`FieldSource::Unresolved`] read back
/// from persistent storage round-trips exactly. Unknown strings (from a
/// newer engine version, say) intern to `"unknown"`.
pub fn intern_unresolved_reason(reason: &str) -> &'static str {
    UNRESOLVED_REASONS
        .iter()
        .find(|r| **r == reason)
        .copied()
        .unwrap_or("unknown")
}

impl FieldSource {
    /// Whether the source is a concrete, decomposable-no-further origin
    /// ("single-information-source" in the paper's terms).
    pub fn is_concrete(&self) -> bool {
        !matches!(self, FieldSource::Unresolved { .. })
    }
}

impl fmt::Display for FieldSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldSource::StringConstant { value, .. } => write!(f, "\"{value}\""),
            FieldSource::NumericConstant { value } => write!(f, "{value:#x}"),
            FieldSource::LibCall { callee, key, .. } => match key {
                Some(k) => write!(f, "{callee}(\"{k}\")"),
                None => write!(f, "{callee}()"),
            },
            FieldSource::EntryParam { func, index } => write!(f, "{func}#param{index}"),
            FieldSource::Unresolved { reason } => write!(f, "<unresolved: {reason}>"),
        }
    }
}

/// What a taint-tree node represents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaintNodeKind {
    /// The root: a message argument at a delivery callsite.
    Root {
        /// Delivery function name (`SSL_write`, …).
        delivery: String,
    },
    /// A write into the message buffer (one concatenation step).
    Write {
        /// The function performing the write (`sprintf`, `strcat`, a
        /// `STORE`, …).
        via: String,
    },
    /// A value-producing operation on the path.
    Transform {
        /// The operation.
        opcode: Opcode,
    },
    /// Flow through a call (into a callee's return or a summary).
    ThroughCall {
        /// Callee name.
        callee: String,
    },
    /// Flow crossed from a parameter out to a caller's argument.
    ParamCross {
        /// Parameter index in the callee.
        param: usize,
    },
    /// A terminal field source.
    Source(FieldSource),
}

/// One node of a [`TaintTree`].
#[derive(Debug, Clone)]
pub struct TaintNode {
    /// This node's id.
    pub id: TaintNodeId,
    /// Parent node (None only for the root).
    pub parent: Option<TaintNodeId>,
    /// Children in discovery order.
    pub children: Vec<TaintNodeId>,
    /// Entry address of the function this node was discovered in.
    pub func: Address,
    /// The IR operation associated with the node, when there is one.
    pub op: Option<PcodeOp>,
    /// The varnode being traced at this node, when meaningful.
    pub varnode: Option<Varnode>,
    /// Node kind.
    pub kind: TaintNodeKind,
    /// Discovery sequence number (backward order; the MFT inversion step
    /// restores construction order).
    pub seq: u64,
}

impl TaintNode {
    /// The terminal source, when this is a leaf source node.
    pub fn source(&self) -> Option<&FieldSource> {
        match &self.kind {
            TaintNodeKind::Source(s) => Some(s),
            _ => None,
        }
    }
}

/// The backward-taint result: a tree rooted at the delivery argument with
/// field sources at the leaves.
#[derive(Debug, Clone, Default)]
pub struct TaintTree {
    nodes: Vec<TaintNode>,
}

impl TaintTree {
    fn add(
        &mut self,
        parent: Option<TaintNodeId>,
        func: Address,
        op: Option<PcodeOp>,
        varnode: Option<Varnode>,
        kind: TaintNodeKind,
    ) -> TaintNodeId {
        let id = TaintNodeId(self.nodes.len());
        let seq = self.nodes.len() as u64;
        self.nodes.push(TaintNode {
            id,
            parent,
            children: Vec::new(),
            func,
            op,
            varnode,
            kind,
            seq,
        });
        if let Some(p) = parent {
            self.nodes[p.0].children.push(id);
        }
        id
    }

    /// The root node.
    ///
    /// # Panics
    ///
    /// Panics on an empty tree (never produced by [`TaintEngine::trace`]).
    pub fn root(&self) -> &TaintNode {
        &self.nodes[0]
    }

    /// The node with the given id.
    pub fn node(&self, id: TaintNodeId) -> &TaintNode {
        &self.nodes[id.0]
    }

    /// All nodes in discovery order.
    pub fn nodes(&self) -> &[TaintNode] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty (no trace performed).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Leaf nodes that carry a terminal [`FieldSource`].
    pub fn sources(&self) -> impl Iterator<Item = &TaintNode> {
        self.nodes.iter().filter(|n| n.source().is_some())
    }

    /// The path from `leaf` up to the root, leaf first.
    pub fn path_to_root(&self, leaf: TaintNodeId) -> Vec<TaintNodeId> {
        let mut path = vec![leaf];
        let mut cur = leaf;
        while let Some(p) = self.nodes[cur.0].parent {
            path.push(p);
            cur = p;
        }
        path
    }

    /// Condense the trace into its persistable [`TaintSummary`].
    pub fn summary(&self) -> TaintSummary {
        TaintSummary {
            nodes: self.nodes.len(),
            sources: self.sources().filter_map(|n| n.source().cloned()).collect(),
        }
    }
}

/// An owned, serialization-friendly digest of one backward-taint trace:
/// what the field-identification stage learned, without the per-node
/// structure of the full [`TaintTree`].
///
/// This is the per-stage intermediate artifact the analysis cache
/// persists for the FieldId stage — every field it contains is plain
/// owned data, so it survives an encode/decode round trip byte-for-byte
/// (the one `&'static str` in [`FieldSource::Unresolved`] is restored
/// via [`intern_unresolved_reason`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintSummary {
    /// Total nodes in the originating trace (a proxy for trace cost).
    pub nodes: usize,
    /// Terminal field sources at the leaves, in discovery order.
    pub sources: Vec<FieldSource>,
}

impl TaintSummary {
    /// Sources that resolved to a concrete origin.
    pub fn concrete_sources(&self) -> impl Iterator<Item = &FieldSource> {
        self.sources.iter().filter(|s| s.is_concrete())
    }

    /// How many sources did not resolve.
    pub fn unresolved_count(&self) -> usize {
        self.sources.len() - self.concrete_sources().count()
    }
}

/// The cross-function inputs one memoized trace read: every function
/// whose body the walk visited (or looked for and found missing), and
/// every function whose *caller set* it enumerated via the call graph.
///
/// This is the raw material of incremental re-analysis: a cached result
/// for a `(function, callsite, argument)` query stays valid exactly while
/// every function in [`TraceDeps::funcs`] is unchanged and every function
/// in [`TraceDeps::caller_enums`] has an unchanged incoming-edge set
/// (`firmres_ir::caller_edges_hash`). Program-wide inputs the walk also
/// reads — string constants, callee names, import summaries — are covered
/// separately by `firmres_ir::program_context_hash`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceDeps {
    /// Functions whose lifted body the trace visited. Includes entries
    /// for call targets that had *no* function (the "missing callee"
    /// leaf): their continued absence is part of the result's validity.
    pub funcs: BTreeSet<Address>,
    /// Functions whose callers the trace enumerated through the call
    /// graph (the no-context parameter crossing).
    pub caller_enums: BTreeSet<Address>,
}

impl TraceDeps {
    /// Fold another dependency set into this one.
    pub fn merge(&mut self, other: &TraceDeps) {
        self.funcs.extend(other.funcs.iter().copied());
        self.caller_enums.extend(other.caller_enums.iter().copied());
    }
}

/// Tuning knobs for the taint engine.
#[derive(Debug, Clone)]
pub struct TaintConfig {
    /// Maximum recursion depth.
    pub max_depth: usize,
    /// Maximum nodes per trace.
    pub max_nodes: usize,
    /// Whether unknown library calls propagate taint through every
    /// argument (the paper's over-taint strategy). Disabling this is the
    /// ablation measured in the benchmarks.
    pub overtaint: bool,
    /// Whether buffer pointers are decomposed into the writes that filled
    /// them (the paper's "single-information-source" sink criterion).
    /// Disabling this is the naive-sink ablation: the message argument
    /// itself becomes an opaque sink and per-field recovery collapses.
    pub decompose_buffers: bool,
    /// Which cold-path data-structure implementation to run (see
    /// [`ColdPath`]). Output is byte-identical either way, so this knob
    /// is deliberately **not** part of the cache's config fingerprint.
    pub cold_path: ColdPath,
    /// Known-library identification (see [`LibId`]): with `On` and a
    /// [`TaintConfig::lib_index`], functions whose content hash matches
    /// the index are replayed from recorded scripts instead of being
    /// traversed. Output is byte-identical either way (the scripts are
    /// faithful traversal transcripts), so like [`ColdPath`] the toggle
    /// itself is not fingerprinted — but the *index content* is (see
    /// `firmres-cache`'s config fingerprint).
    pub libid: LibId,
    /// The known-library index consulted when [`TaintConfig::libid`] is
    /// [`LibId::On`].
    pub lib_index: Option<Arc<LibIndex>>,
}

impl Default for TaintConfig {
    fn default() -> Self {
        TaintConfig {
            max_depth: 48,
            max_nodes: 4096,
            overtaint: true,
            decompose_buffers: true,
            cold_path: ColdPath::default(),
            libid: LibId::Off,
            lib_index: None,
        }
    }
}

/// The backward inter-procedural taint engine over one [`Program`].
///
/// The engine is `Sync`: every query method takes `&self`, and the
/// per-function def-use/reachability caches and the trace memo live
/// behind locks, so one engine can be shared across worker threads
/// (the pipeline's per-callsite message units do exactly that). All
/// cached values are deterministic functions of the immutable program,
/// so concurrent fills can only ever race to insert the same value.
pub struct TaintEngine<'p> {
    program: &'p Program,
    callgraph: CallGraph,
    defuse: RwLock<BTreeMap<Address, Arc<DefUse>>>,
    reach: RwLock<BTreeMap<Address, Arc<Reach>>>,
    /// Interned names of every known call target (imports and defined
    /// functions), with the callee's library summary resolved once. The
    /// hot region scan compares [`Sym`]/address keys and only
    /// materializes a `String` when a write hit is actually recorded.
    callees: HashMap<Address, CalleeInfo, FnvBuildHasher>,
    names: Interner,
    config: TaintConfig,
    /// Memoized [`TaintEngine::trace`] results per
    /// `(function entry, callsite, argument)` query, each paired with the
    /// [`TraceDeps`] the walk accumulated. Traces are deterministic over
    /// an immutable program, so replaying one is always safe.
    trace_cache: Mutex<TraceCache>,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    /// Functions matched against the known-library index at
    /// construction: entry address → index entry. Empty unless
    /// [`TaintConfig::libid`] is On with a loaded index.
    lib_funcs: HashMap<Address, Arc<LibFunc>, FnvBuildHasher>,
}

/// Memoized trace results keyed by `(function entry, callsite, argument)`.
/// The per-trace [`LibStats`] ride in the memo so replayed queries report
/// the numbers of the original walk, independent of scheduling.
type TraceCache = BTreeMap<(Address, Address, usize), (TaintTree, TraceDeps, LibStats)>;

/// Extended region used inside the engine: [`Region`] plus buffers that
/// arrive through a pointer parameter.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum XRegion {
    Plain(Region),
    PtrParam(usize),
}

/// One known call target: its interned name and (for imports) the
/// library summary, resolved once at engine construction.
#[derive(Debug, Clone)]
struct CalleeInfo {
    sym: Sym,
    summary: Option<Summary>,
}

/// A candidate write into a scanned region: `(position, op, contributing
/// values, writer label)`.
struct WriteHit {
    at: OpRef,
    op: PcodeOp,
    values: Vec<Varnode>,
    via: String,
    /// Internal callee to descend into with a PtrParam region.
    descend: Option<(Address, usize)>,
}

/// Block-level reachability closure per function, in the layout the
/// engine's [`ColdPath`] mode selects.
enum Reach {
    /// Ordered successor sets — the pre-optimization layout.
    Reference(Vec<BTreeSet<u32>>),
    /// One dense bitset row per block: bit `t` of row `f` set iff block
    /// `f` can reach block `t`.
    Bits { words: Vec<u64>, stride: usize },
}

/// The already-explored set of `(function, op, varnode)` taint facts, in
/// the layout the engine's [`ColdPath`] mode selects. Both are exact
/// sets — only lookup cost differs.
enum VisitedVals {
    Reference(BTreeSet<(Address, OpRef, Varnode)>),
    Optimized(HashSet<(Address, OpRef, Varnode), FnvBuildHasher>),
}

impl VisitedVals {
    fn new(mode: ColdPath) -> Self {
        match mode {
            ColdPath::Reference => VisitedVals::Reference(BTreeSet::new()),
            ColdPath::Optimized => VisitedVals::Optimized(HashSet::default()),
        }
    }

    fn insert(&mut self, key: (Address, OpRef, Varnode)) -> bool {
        match self {
            VisitedVals::Reference(set) => set.insert(key),
            VisitedVals::Optimized(set) => set.insert(key),
        }
    }
}

/// The already-explored set of `(function, region, before)` region scans.
///
/// The reference layout keys by the region's `Debug` rendering — a
/// `String` formatted per lookup, the cost the ISSUE's interned-key hash
/// set removes. Derived `Debug` is injective over [`XRegion`]'s numeric
/// payloads, so both layouts recognize exactly the same revisits.
enum VisitedRegions {
    Reference(BTreeSet<(Address, String, Option<OpRef>)>),
    Optimized(HashSet<(Address, XRegion, Option<OpRef>), FnvBuildHasher>),
}

impl VisitedRegions {
    fn new(mode: ColdPath) -> Self {
        match mode {
            ColdPath::Reference => VisitedRegions::Reference(BTreeSet::new()),
            ColdPath::Optimized => VisitedRegions::Optimized(HashSet::default()),
        }
    }

    fn insert(&mut self, func: Address, region: &XRegion, before: Option<OpRef>) -> bool {
        match self {
            VisitedRegions::Reference(set) => set.insert((func, format!("{region:?}"), before)),
            VisitedRegions::Optimized(set) => set.insert((func, region.clone(), before)),
        }
    }
}

struct Cx {
    tree: TaintTree,
    visited_vals: VisitedVals,
    visited_regions: VisitedRegions,
    call_stack: Vec<(Address, Address)>, // (caller entry, callsite addr)
    deps: TraceDeps,
    lib_stats: LibStats,
    /// Script recording state, present only inside
    /// [`TaintEngine::record_lib_function`].
    rec: Option<RecState>,
}

/// Recording state: the transcript so far, or the first reason the role
/// was rejected (a poisoned recording keeps traversing but records
/// nothing further — the result is discarded).
struct RecState {
    steps: Vec<LibStep>,
    poison: Option<&'static str>,
}

impl Cx {
    /// Append a step to an active, unpoisoned recording.
    fn rec_step(&mut self, step: impl FnOnce() -> LibStep) {
        if let Some(rec) = self.rec.as_mut() {
            if rec.poison.is_none() {
                rec.steps.push(step());
            }
        }
    }

    /// Reject the role being recorded (first reason wins). No-op when
    /// not recording.
    fn rec_poison(&mut self, reason: &'static str) {
        if let Some(rec) = self.rec.as_mut() {
            if rec.poison.is_none() {
                rec.poison = Some(reason);
            }
        }
    }

    fn recording(&self) -> bool {
        self.rec.is_some()
    }

    /// Record a [`LibStep::Transform`] for a node just added.
    fn rec_transform(&mut self, node: TaintNodeId, parent: TaintNodeId, op: &PcodeOp) {
        if self.recording() {
            let op = op.clone();
            self.rec_step(|| LibStep::Transform {
                id: node.0 as u32,
                parent: parent.0 as u32,
                op,
            });
        }
    }

    /// Record a [`LibStep::Write`] for a node just added.
    fn rec_write(&mut self, node: TaintNodeId, parent: TaintNodeId, op: &PcodeOp, via: &str) {
        if self.recording() {
            let op = op.clone();
            let via = via.to_string();
            self.rec_step(|| LibStep::Write {
                id: node.0 as u32,
                parent: parent.0 as u32,
                op,
                via,
            });
        }
    }

    /// Record a [`LibStep::ThroughCall`] for a node just added.
    fn rec_through_call(
        &mut self,
        node: TaintNodeId,
        parent: TaintNodeId,
        op: &PcodeOp,
        callee: &str,
    ) {
        if self.recording() {
            let op = op.clone();
            let callee = callee.to_string();
            self.rec_step(|| LibStep::ThroughCall {
                id: node.0 as u32,
                parent: parent.0 as u32,
                op,
                callee,
            });
        }
    }
}

/// The traversal role being recorded for a library function.
enum RecRole {
    /// Writes into the buffer arriving through pointer parameter `i`.
    Param(usize),
    /// The function's return value.
    Return,
}

/// Map the engine's extended region onto the persistable script key.
/// `None` for data-segment/unknown regions, which are image-dependent
/// (the recorder poisons the role).
fn lib_region_key(r: &XRegion) -> Option<LibRegionKey> {
    match r {
        XRegion::Plain(Region::Stack(o)) => Some(LibRegionKey::Stack(*o)),
        XRegion::Plain(Region::Alloc(a)) => Some(LibRegionKey::Alloc(*a)),
        XRegion::PtrParam(i) => Some(LibRegionKey::PtrParam(*i as u32)),
        XRegion::Plain(Region::Data(_)) | XRegion::Plain(Region::Unknown) => None,
    }
}

/// The inverse of [`lib_region_key`], for replay.
fn lib_xregion(r: &LibRegionKey) -> XRegion {
    match r {
        LibRegionKey::Stack(o) => XRegion::Plain(Region::Stack(*o)),
        LibRegionKey::Alloc(a) => XRegion::Plain(Region::Alloc(*a)),
        LibRegionKey::PtrParam(i) => XRegion::PtrParam(*i as usize),
    }
}

/// Index just past the subtree of the guard opening at `open`: steps are
/// well-nested, so count opens/closes until the matching close.
fn skip_open(steps: &[LibStep], open: usize) -> usize {
    let mut nesting = 1usize;
    let mut i = open + 1;
    while i < steps.len() && nesting > 0 {
        match steps[i] {
            LibStep::OpenValue { .. } | LibStep::OpenRegion { .. } => nesting += 1,
            LibStep::Close => nesting -= 1,
            _ => {}
        }
        i += 1;
    }
    i
}

impl<'p> TaintEngine<'p> {
    /// Create an engine with default configuration.
    pub fn new(program: &'p Program) -> Self {
        Self::with_config(program, TaintConfig::default())
    }

    /// Create an engine with an explicit configuration.
    pub fn with_config(program: &'p Program, config: TaintConfig) -> Self {
        let mut names = Interner::new();
        let mut callees: HashMap<Address, CalleeInfo, FnvBuildHasher> = HashMap::default();
        for (addr, import) in program.imports() {
            callees.insert(
                addr,
                CalleeInfo {
                    sym: names.intern(&import.name),
                    summary: summary_for(&import.name),
                },
            );
        }
        for f in program.functions() {
            callees.entry(f.entry()).or_insert_with(|| CalleeInfo {
                sym: names.intern(f.name()),
                summary: None,
            });
        }
        // Known-library matching. A content-hash match means the live
        // function is byte- and address-identical to the one the scripts
        // were recorded from. Replay additionally requires (a) the live
        // data segment to start at or above the recording's, so no
        // recorded constant can alias live data (the recorder rejected
        // everything at or above its own base), and (b) the default
        // traversal semantics the scripts were recorded under — the
        // overtaint/naive-sink ablations fall back to full traversal.
        let mut lib_funcs: HashMap<Address, Arc<LibFunc>, FnvBuildHasher> = HashMap::default();
        if config.libid == LibId::On {
            if let Some(index) = config.lib_index.as_ref() {
                if config.overtaint
                    && config.decompose_buffers
                    && program.data_base() >= index.const_ceiling()
                {
                    for f in program.functions() {
                        if let Some(entry) = index.get(function_content_hash(f)) {
                            lib_funcs.insert(f.entry(), Arc::clone(entry));
                        }
                    }
                }
            }
        }
        TaintEngine {
            program,
            callgraph: program.call_graph(),
            defuse: RwLock::new(BTreeMap::new()),
            reach: RwLock::new(BTreeMap::new()),
            callees,
            names,
            config,
            trace_cache: Mutex::new(BTreeMap::new()),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            lib_funcs,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &TaintConfig {
        &self.config
    }

    /// How many of the program's functions matched the known-library
    /// index at construction (0 when libid is off or no index loaded).
    pub fn lib_matched(&self) -> u64 {
        self.lib_funcs.len() as u64
    }

    fn du(&self, func: Address) -> Arc<DefUse> {
        if let Some(du) = self.defuse.read().get(&func) {
            return Arc::clone(du);
        }
        // Compute outside the lock (idempotent: racing fills produce the
        // same value and the first insert wins for everyone).
        let f = self.program.function(func).expect("function exists");
        let du = Arc::new(DefUse::compute_with(f, self.config.cold_path));
        Arc::clone(self.defuse.write().entry(func).or_insert(du))
    }

    /// The human-readable name of a call target, from the interned table.
    fn callee_label(&self, target: Address) -> &str {
        self.callees
            .get(&target)
            .map_or("<unknown>", |info| self.names.resolve(info.sym))
    }

    /// block-level "can a reach b" closure, cached per function.
    fn reachable(&self, func: Address, from: u32, to: u32) -> bool {
        if from == to {
            return true;
        }
        match &*self.reach_sets(func) {
            Reach::Reference(sets) => sets[from as usize].contains(&to),
            Reach::Bits { words, stride } => {
                words[from as usize * stride + (to as usize >> 6)] >> (to & 63) & 1 == 1
            }
        }
    }

    fn reach_sets(&self, func: Address) -> Arc<Reach> {
        if let Some(sets) = self.reach.read().get(&func) {
            return Arc::clone(sets);
        }
        let f = self.program.function(func).expect("function exists");
        let n = f.blocks().len();
        let reach = match self.config.cold_path {
            ColdPath::Reference => {
                let mut sets: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); n];
                for (start, set) in sets.iter_mut().enumerate() {
                    let mut seen = BTreeSet::new();
                    let mut q = vec![start as u32];
                    while let Some(b) = q.pop() {
                        for s in &f.blocks()[b as usize].successors {
                            if seen.insert(s.0) {
                                q.push(s.0);
                            }
                        }
                    }
                    *set = seen;
                }
                Reach::Reference(sets)
            }
            ColdPath::Optimized => {
                let stride = n.div_ceil(64).max(1);
                let mut words = vec![0u64; n * stride];
                let mut q: Vec<u32> = Vec::new();
                for start in 0..n {
                    let base = start * stride;
                    q.push(start as u32);
                    while let Some(b) = q.pop() {
                        for s in &f.blocks()[b as usize].successors {
                            let bit = &mut words[base + (s.0 as usize >> 6)];
                            if *bit >> (s.0 & 63) & 1 == 0 {
                                *bit |= 1u64 << (s.0 & 63);
                                q.push(s.0);
                            }
                        }
                    }
                }
                Reach::Bits { words, stride }
            }
        };
        Arc::clone(self.reach.write().entry(func).or_insert(Arc::new(reach)))
    }

    /// Trace the message held in argument `arg` of the call at
    /// `callsite_addr` inside the function entered at `func`.
    ///
    /// Returns a single-node tree with an `Unresolved` root child when the
    /// callsite cannot be found.
    ///
    /// Results are memoized per `(func, callsite_addr, arg)`: repeating a
    /// query returns a clone of the first result without re-walking the
    /// data flows (see [`TaintEngine::cache_stats`]).
    pub fn trace(&self, func: Address, callsite_addr: Address, arg: usize) -> TaintTree {
        self.trace_full(func, callsite_addr, arg).0
    }

    /// [`TaintEngine::trace`] plus the [`TraceDeps`] the walk accumulated.
    ///
    /// Shares the same memo (and hit/miss accounting) as `trace`: a
    /// repeated query returns a clone of the first result's tree and
    /// dependency set.
    pub fn trace_with_deps(
        &self,
        func: Address,
        callsite_addr: Address,
        arg: usize,
    ) -> (TaintTree, TraceDeps) {
        let (tree, deps, _) = self.trace_full(func, callsite_addr, arg);
        (tree, deps)
    }

    /// [`TaintEngine::trace`] plus the per-trace known-library counters.
    /// The counters are memoized with the trace, so a replayed query
    /// reports the original walk's numbers deterministically.
    pub fn trace_with_stats(
        &self,
        func: Address,
        callsite_addr: Address,
        arg: usize,
    ) -> (TaintTree, LibStats) {
        let (tree, _, stats) = self.trace_full(func, callsite_addr, arg);
        (tree, stats)
    }

    fn trace_full(
        &self,
        func: Address,
        callsite_addr: Address,
        arg: usize,
    ) -> (TaintTree, TraceDeps, LibStats) {
        let key = (func, callsite_addr, arg);
        if let Some(cached) = self.trace_cache.lock().get(&key) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return cached.clone();
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        // Traced outside the lock: concurrent first queries for the same
        // key each compute the (identical, deterministic) result and the
        // first insert wins.
        let result = self.trace_uncached(func, callsite_addr, arg);
        self.trace_cache
            .lock()
            .entry(key)
            .or_insert_with(|| result.clone());
        result
    }

    /// The memoized [`TraceDeps`] of a query already run through
    /// [`TaintEngine::trace`], without re-walking or touching the hit/miss
    /// counters. `None` when the query has not been traced yet.
    pub fn trace_deps(
        &self,
        func: Address,
        callsite_addr: Address,
        arg: usize,
    ) -> Option<TraceDeps> {
        self.trace_cache
            .lock()
            .get(&(func, callsite_addr, arg))
            .map(|(_, deps, _)| deps.clone())
    }

    /// `(hits, misses)` of the trace memo cache so far.
    ///
    /// The counts are scheduling-dependent under concurrent use (racing
    /// first queries for one key each count a miss), so the pipeline does
    /// not report them — it replays its own query log deterministically
    /// (see `firmres::stages`). They remain useful for profiling.
    pub fn cache_stats(&self) -> (u64, u64) {
        (
            self.cache_hits.load(Ordering::Relaxed),
            self.cache_misses.load(Ordering::Relaxed),
        )
    }

    fn trace_uncached(
        &self,
        func: Address,
        callsite_addr: Address,
        arg: usize,
    ) -> (TaintTree, TraceDeps, LibStats) {
        let mut cx = Cx {
            tree: TaintTree::default(),
            visited_vals: VisitedVals::new(self.config.cold_path),
            visited_regions: VisitedRegions::new(self.config.cold_path),
            call_stack: Vec::new(),
            deps: TraceDeps::default(),
            lib_stats: LibStats::default(),
            rec: None,
        };
        // The root function is an input even when the lookup fails: the
        // result depends on it staying found/unfound.
        cx.deps.funcs.insert(func);
        let Some(f) = self.program.function(func) else {
            let root = cx.tree.add(
                None,
                func,
                None,
                None,
                TaintNodeKind::Root {
                    delivery: "<unknown>".into(),
                },
            );
            cx.tree.add(
                Some(root),
                func,
                None,
                None,
                TaintNodeKind::Source(FieldSource::Unresolved {
                    reason: "function not found",
                }),
            );
            return (cx.tree, cx.deps, cx.lib_stats);
        };
        let Some(call) = f.op_at(callsite_addr).cloned() else {
            let root = cx.tree.add(
                None,
                func,
                None,
                None,
                TaintNodeKind::Root {
                    delivery: "<unknown>".into(),
                },
            );
            cx.tree.add(
                Some(root),
                func,
                None,
                None,
                TaintNodeKind::Source(FieldSource::Unresolved {
                    reason: "callsite not found",
                }),
            );
            return (cx.tree, cx.deps, cx.lib_stats);
        };
        let delivery = call
            .call_target()
            .and_then(|t| self.program.callee_name(t))
            .unwrap_or("<indirect>")
            .to_string();
        let root = cx.tree.add(
            None,
            func,
            Some(call.clone()),
            call.call_args().get(arg).cloned(),
            TaintNodeKind::Root { delivery },
        );
        let Some(v) = call.call_args().get(arg).cloned() else {
            cx.tree.add(
                Some(root),
                func,
                None,
                None,
                TaintNodeKind::Source(FieldSource::Unresolved {
                    reason: "argument missing",
                }),
            );
            return (cx.tree, cx.deps, cx.lib_stats);
        };
        let at = self.du(func).position_of(callsite_addr).expect("op exists");
        self.taint_value(&mut cx, func, at, &v, root, 0);
        (cx.tree, cx.deps, cx.lib_stats)
    }

    fn budget_ok(&self, cx: &Cx, depth: usize) -> bool {
        depth < self.config.max_depth && cx.tree.len() < self.config.max_nodes
    }

    fn leaf(&self, cx: &mut Cx, func: Address, parent: TaintNodeId, src: FieldSource) {
        if cx.recording() {
            // Image-dependent or context-dependent leaves reject the
            // role; everything else is recorded verbatim. (String
            // constants live in the data segment; entry-param leaves
            // come from caller enumeration, whose result depends on the
            // surrounding image. Budget leaves mean the transcript is
            // not the complete traversal.)
            match &src {
                FieldSource::StringConstant { .. } => cx.rec_poison("data-segment string constant"),
                FieldSource::EntryParam { .. } => cx.rec_poison("caller enumeration reached"),
                FieldSource::Unresolved { reason } if *reason == "budget exceeded" => {
                    cx.rec_poison("traversal budget exhausted while recording")
                }
                _ => {}
            }
            let recorded = src.clone();
            cx.rec_step(|| LibStep::Leaf {
                parent: parent.0 as u32,
                source: recorded,
            });
        }
        cx.tree
            .add(Some(parent), func, None, None, TaintNodeKind::Source(src));
    }

    /// Resolve a varnode that may be a pointer; returns the region.
    fn region_of(&self, func: Address, at: OpRef, v: &Varnode) -> Region {
        let f = self.program.function(func).expect("function exists");
        let du = self.du(func);
        resolve_region(self.program, f, &du, at, v)
    }

    fn taint_value(
        &self,
        cx: &mut Cx,
        func: Address,
        at: OpRef,
        v: &Varnode,
        parent: TaintNodeId,
        depth: usize,
    ) {
        if cx.recording() {
            let rv = v.clone();
            cx.rec_step(|| LibStep::OpenValue {
                parent: parent.0 as u32,
                at,
                v: rv,
                depth: depth as u32,
            });
            self.taint_value_inner(cx, func, at, v, parent, depth);
            cx.rec_step(|| LibStep::Close);
            return;
        }
        self.taint_value_inner(cx, func, at, v, parent, depth);
    }

    fn taint_value_inner(
        &self,
        cx: &mut Cx,
        func: Address,
        at: OpRef,
        v: &Varnode,
        parent: TaintNodeId,
        depth: usize,
    ) {
        cx.deps.funcs.insert(func);
        if !self.budget_ok(cx, depth) {
            self.leaf(
                cx,
                func,
                parent,
                FieldSource::Unresolved {
                    reason: "budget exceeded",
                },
            );
            return;
        }
        if !cx.visited_vals.insert((func, at, v.clone())) {
            // A transcript with a repeated guard key could replay a
            // different shape than a live traversal (see DESIGN.md §14),
            // so a recording-time revisit rejects the role.
            cx.rec_poison("duplicate value guard in one role");
            return; // already explored this exact fact
        }
        // Constants terminate immediately.
        if let Some(value) = v.const_value() {
            if let Some(s) = self.program.string_at(value) {
                self.leaf(
                    cx,
                    func,
                    parent,
                    FieldSource::StringConstant {
                        addr: value,
                        value: s.to_string(),
                    },
                );
            } else {
                self.leaf(cx, func, parent, FieldSource::NumericConstant { value });
            }
            return;
        }
        // Pointer? If the value resolves to a buffer region, the message
        // content is whatever was written into that buffer.
        match self.region_of(func, at, v) {
            Region::Data(addr) => {
                if let Some(s) = self.program.string_at(addr) {
                    self.leaf(
                        cx,
                        func,
                        parent,
                        FieldSource::StringConstant {
                            addr,
                            value: s.to_string(),
                        },
                    );
                    return;
                }
            }
            r @ (Region::Stack(_) | Region::Alloc(_)) => {
                if self.config.decompose_buffers {
                    self.taint_region(cx, func, &XRegion::Plain(r), Some(at), parent, depth + 1);
                } else {
                    // Naive-sink ablation: stop at the buffer itself.
                    self.leaf(
                        cx,
                        func,
                        parent,
                        FieldSource::Unresolved {
                            reason: "buffer not decomposed",
                        },
                    );
                }
                return;
            }
            Region::Unknown => {}
        }
        let f = self.program.function(func).expect("function exists");
        let defs = self.du(func).reaching_defs(at, v);
        if defs.is_empty() {
            self.value_without_defs(cx, func, v, parent, depth);
            return;
        }
        for d in defs {
            let op = op_at(f, d).clone();
            self.taint_def(cx, func, d, &op, v, parent, depth);
        }
    }

    /// A used value with no defining op: a parameter (cross to callers) or
    /// an uninitialized location.
    fn value_without_defs(
        &self,
        cx: &mut Cx,
        func: Address,
        v: &Varnode,
        parent: TaintNodeId,
        depth: usize,
    ) {
        let f = self.program.function(func).expect("function exists");
        let Some(index) = f.params().iter().position(|p| p == v) else {
            self.leaf(
                cx,
                func,
                parent,
                FieldSource::Unresolved {
                    reason: "no definition",
                },
            );
            return;
        };
        let node = cx.tree.add(
            Some(parent),
            func,
            None,
            Some(v.clone()),
            TaintNodeKind::ParamCross { param: index },
        );
        if cx.recording() {
            // Flow leaves the recorded function here. The transcript
            // stops at the param-cross node; replay continues *live*
            // into the concrete caller context of the application point.
            let rv = v.clone();
            cx.rec_step(|| LibStep::Resume {
                id: node.0 as u32,
                parent: parent.0 as u32,
                v: rv,
                param: index as u32,
                depth: depth as u32,
            });
            return;
        }
        // Prefer the concrete callsite we descended through.
        if let Some((caller, callsite)) = cx.call_stack.pop() {
            let caller_f = self.program.function(caller).expect("caller exists");
            if let Some(call) = caller_f.op_at(callsite).cloned() {
                if let Some(arg) = call.call_args().get(index).cloned() {
                    if let Some(at) = self.du(caller).position_of(callsite) {
                        self.taint_value(cx, caller, at, &arg, node, depth + 1);
                    }
                }
            }
            cx.call_stack.push((caller, callsite));
            return;
        }
        // No context: enumerate callers via the call graph. The *set* of
        // callers is an input here — a new caller changes the walk even
        // when no visited body changed — so record the enumeration (and
        // every enumerated caller, including ones skipped by the guards
        // below, whose callsite shape the skip depended on).
        cx.deps.caller_enums.insert(func);
        let callers: Vec<_> = self
            .callgraph
            .callers_of(func)
            .map(|e| (e.caller, e.callsite))
            .collect();
        cx.deps
            .funcs
            .extend(callers.iter().map(|&(caller, _)| caller));
        if callers.is_empty() {
            let name = f.name().to_string();
            self.leaf(
                cx,
                func,
                node,
                FieldSource::EntryParam { func: name, index },
            );
            return;
        }
        for (caller, callsite) in callers {
            let caller_f = self.program.function(caller).expect("caller exists");
            let Some(call) = caller_f.op_at(callsite).cloned() else {
                continue;
            };
            let Some(arg) = call.call_args().get(index).cloned() else {
                continue;
            };
            let Some(at) = self.du(caller).position_of(callsite) else {
                continue;
            };
            self.taint_value(cx, caller, at, &arg, node, depth + 1);
        }
    }

    /// Walk backward through one defining operation.
    #[allow(clippy::too_many_arguments)]
    fn taint_def(
        &self,
        cx: &mut Cx,
        func: Address,
        d: OpRef,
        op: &PcodeOp,
        _v: &Varnode,
        parent: TaintNodeId,
        depth: usize,
    ) {
        match op.opcode {
            Opcode::Copy => {
                let node = cx.tree.add(
                    Some(parent),
                    func,
                    Some(op.clone()),
                    op.output.clone(),
                    TaintNodeKind::Transform {
                        opcode: Opcode::Copy,
                    },
                );
                cx.rec_transform(node, parent, op);
                let input = op.inputs[0].clone();
                self.taint_value(cx, func, d, &input, node, depth + 1);
            }
            Opcode::Call => self.taint_call_result(cx, func, d, op, parent, depth),
            Opcode::Load => {
                let addr_v = op.inputs[0].clone();
                match self.region_of(func, d, &addr_v) {
                    Region::Data(a) => {
                        if let Some(s) = self.program.string_at(a) {
                            self.leaf(
                                cx,
                                func,
                                parent,
                                FieldSource::StringConstant {
                                    addr: a,
                                    value: s.to_string(),
                                },
                            );
                        } else {
                            self.leaf(
                                cx,
                                func,
                                parent,
                                FieldSource::Unresolved {
                                    reason: "non-string data load",
                                },
                            );
                        }
                    }
                    r @ (Region::Stack(_) | Region::Alloc(_)) => {
                        let node = cx.tree.add(
                            Some(parent),
                            func,
                            Some(op.clone()),
                            op.output.clone(),
                            TaintNodeKind::Transform {
                                opcode: Opcode::Load,
                            },
                        );
                        cx.rec_transform(node, parent, op);
                        self.taint_region(cx, func, &XRegion::Plain(r), Some(d), node, depth + 1);
                    }
                    Region::Unknown => {
                        self.leaf(
                            cx,
                            func,
                            parent,
                            FieldSource::Unresolved {
                                reason: "unresolved load",
                            },
                        );
                    }
                }
            }
            opcode if opcode.is_dataflow() => {
                let node = cx.tree.add(
                    Some(parent),
                    func,
                    Some(op.clone()),
                    op.output.clone(),
                    TaintNodeKind::Transform { opcode },
                );
                cx.rec_transform(node, parent, op);
                let non_const: Vec<Varnode> = op
                    .inputs
                    .iter()
                    .filter(|i| !i.is_const())
                    .cloned()
                    .collect();
                if non_const.is_empty() {
                    // Fully constant expression; report each constant.
                    for input in op.inputs.clone() {
                        self.taint_value(cx, func, d, &input, node, depth + 1);
                    }
                } else {
                    for input in non_const {
                        self.taint_value(cx, func, d, &input, node, depth + 1);
                    }
                }
            }
            _ => {
                self.leaf(
                    cx,
                    func,
                    parent,
                    FieldSource::Unresolved {
                        reason: "unmodeled op",
                    },
                );
            }
        }
    }

    /// The traced value is the result of a call: apply a summary, or
    /// descend into the callee's returns.
    fn taint_call_result(
        &self,
        cx: &mut Cx,
        func: Address,
        d: OpRef,
        op: &PcodeOp,
        parent: TaintNodeId,
        depth: usize,
    ) {
        let Some(target) = op.call_target() else {
            self.leaf(
                cx,
                func,
                parent,
                FieldSource::Unresolved {
                    reason: "indirect call",
                },
            );
            return;
        };
        let callee_name = self
            .program
            .callee_name(target)
            .unwrap_or("<unknown>")
            .to_string();
        if is_import_address(target) {
            if let Some(summary) = summary_for(&callee_name) {
                let mut produced = false;
                for eff in &summary.effects {
                    match eff {
                        SummaryEffect::RetSource { kind, key_arg } => {
                            let key = key_arg
                                .and_then(|i| op.call_args().get(i))
                                .and_then(|a| self.string_of(func, d, a));
                            self.leaf(
                                cx,
                                func,
                                parent,
                                FieldSource::LibCall {
                                    kind: *kind,
                                    callee: callee_name.clone(),
                                    key,
                                },
                            );
                            produced = true;
                        }
                        SummaryEffect::RetFrom { srcs } => {
                            let node = cx.tree.add(
                                Some(parent),
                                func,
                                Some(op.clone()),
                                op.output.clone(),
                                TaintNodeKind::ThroughCall {
                                    callee: callee_name.clone(),
                                },
                            );
                            cx.rec_through_call(node, parent, op, &callee_name);
                            for &s in srcs {
                                if let Some(arg) = op.call_args().get(s).cloned() {
                                    self.taint_value(cx, func, d, &arg, node, depth + 1);
                                }
                            }
                            produced = true;
                        }
                        SummaryEffect::RetAlloc => {
                            // Fresh buffer: its content is whatever was
                            // written into the allocation before the use.
                            let node = cx.tree.add(
                                Some(parent),
                                func,
                                Some(op.clone()),
                                op.output.clone(),
                                TaintNodeKind::ThroughCall {
                                    callee: callee_name.clone(),
                                },
                            );
                            cx.rec_through_call(node, parent, op, &callee_name);
                            self.taint_region(
                                cx,
                                func,
                                &XRegion::Plain(Region::Alloc(op.addr)),
                                None,
                                node,
                                depth + 1,
                            );
                            produced = true;
                        }
                        SummaryEffect::ArgFrom { .. } | SummaryEffect::ArgSource { .. } => {}
                    }
                }
                if !produced {
                    self.leaf(
                        cx,
                        func,
                        parent,
                        FieldSource::Unresolved {
                            reason: "summary without return effect",
                        },
                    );
                }
            } else if self.config.overtaint {
                let node = cx.tree.add(
                    Some(parent),
                    func,
                    Some(op.clone()),
                    op.output.clone(),
                    TaintNodeKind::ThroughCall {
                        callee: callee_name.clone(),
                    },
                );
                cx.rec_through_call(node, parent, op, &callee_name);
                for arg in op.call_args().to_vec() {
                    self.taint_value(cx, func, d, &arg, node, depth + 1);
                }
            } else {
                self.leaf(
                    cx,
                    func,
                    parent,
                    FieldSource::Unresolved {
                        reason: "unknown import",
                    },
                );
            }
            return;
        }
        // Internal call: descend to the callee's return values. Recorded
        // whether or not the callee exists (and even when it has no
        // returning ops): the result depends on exactly that state.
        cx.deps.funcs.insert(target);
        // An internal callee's body is not covered by the recorded
        // function's content hash, so its traversal cannot be replayed
        // from this function's script.
        cx.rec_poison("internal callee");
        if self.try_apply_return_script(cx, func, op, target, parent, depth) {
            return;
        }
        let Some(callee) = self.program.function(target) else {
            self.leaf(
                cx,
                func,
                parent,
                FieldSource::Unresolved {
                    reason: "missing callee",
                },
            );
            return;
        };
        let node = cx.tree.add(
            Some(parent),
            func,
            Some(op.clone()),
            op.output.clone(),
            TaintNodeKind::ThroughCall {
                callee: callee.name().to_string(),
            },
        );
        let returns: Vec<(OpRef, Varnode)> = {
            let du = self.du(target);
            callee
                .ops()
                .filter(|o| o.opcode == Opcode::Return && !o.inputs.is_empty())
                .filter_map(|o| du.position_of(o.addr).map(|r| (r, o.inputs[0].clone())))
                .collect()
        };
        cx.call_stack.push((func, op.addr));
        for (at, rv) in returns {
            self.taint_value(cx, target, at, &rv, node, depth + 1);
        }
        cx.call_stack.pop();
    }

    /// Find the writes that filled `region` before `before` (None = the
    /// whole function) and taint each written value.
    fn taint_region(
        &self,
        cx: &mut Cx,
        func: Address,
        region: &XRegion,
        before: Option<OpRef>,
        parent: TaintNodeId,
        depth: usize,
    ) {
        if cx.recording() {
            match lib_region_key(region) {
                Some(key) => cx.rec_step(|| LibStep::OpenRegion {
                    parent: parent.0 as u32,
                    region: key,
                    before,
                    depth: depth as u32,
                }),
                None => cx.rec_poison("image-dependent region"),
            }
            self.taint_region_inner(cx, func, region, before, parent, depth);
            cx.rec_step(|| LibStep::Close);
            return;
        }
        self.taint_region_inner(cx, func, region, before, parent, depth);
    }

    fn taint_region_inner(
        &self,
        cx: &mut Cx,
        func: Address,
        region: &XRegion,
        before: Option<OpRef>,
        parent: TaintNodeId,
        depth: usize,
    ) {
        cx.deps.funcs.insert(func);
        if !self.budget_ok(cx, depth) {
            self.leaf(
                cx,
                func,
                parent,
                FieldSource::Unresolved {
                    reason: "budget exceeded",
                },
            );
            return;
        }
        if !cx.visited_regions.insert(func, region, before) {
            // Same duplicate-guard rule as for value guards.
            cx.rec_poison("duplicate region guard in one role");
            return;
        }
        let f = self.program.function(func).expect("function exists");
        let hits = match self.config.cold_path {
            ColdPath::Reference => self.region_write_hits_reference(func, region, before, f),
            ColdPath::Optimized => self.region_write_hits_optimized(func, region, before, f),
        };
        if hits.is_empty() {
            self.leaf(
                cx,
                func,
                parent,
                FieldSource::Unresolved {
                    reason: "no writes to buffer",
                },
            );
            return;
        }
        self.taint_write_hits(cx, func, hits, parent, depth);
    }

    /// The pre-optimization write scan, verbatim: materializes every op
    /// of the function (with a linear position search per op), resolves
    /// and clones the callee name of every call, and rebuilds library
    /// summaries per callsite. Kept as the cold-path benchmark baseline.
    fn region_write_hits_reference(
        &self,
        func: Address,
        region: &XRegion,
        before: Option<OpRef>,
        f: &Function,
    ) -> Vec<WriteHit> {
        let mut hits: Vec<WriteHit> = Vec::new();
        let positions: Vec<(OpRef, PcodeOp)> = f
            .ops_with_blocks()
            .map(|(b, op)| {
                let index = f
                    .block(b)
                    .ops
                    .iter()
                    .position(|o| std::ptr::eq(o, op))
                    .unwrap_or(0);
                (OpRef { block: b, index }, op.clone())
            })
            .collect();
        for (at, op) in positions {
            if let Some(limit) = before {
                let ok = if at.block == limit.block {
                    at.index < limit.index
                } else {
                    self.reachable(func, at.block.0, limit.block.0)
                };
                if !ok {
                    continue;
                }
            }
            match op.opcode {
                Opcode::Copy => {
                    // Direct store into a stack slot inside the region.
                    if let (Some(out), XRegion::Plain(Region::Stack(base))) = (&op.output, region) {
                        if let Some(off) = out.stack_offset() {
                            if self.offset_in_local(f, *base, off) {
                                hits.push(WriteHit {
                                    at,
                                    op: op.clone(),
                                    values: vec![op.inputs[0].clone()],
                                    via: "store".into(),
                                    descend: None,
                                });
                            }
                        }
                    }
                }
                Opcode::Store => {
                    let addr_v = &op.inputs[0];
                    if self.xregion_matches(func, at, addr_v, region, f) {
                        hits.push(WriteHit {
                            at,
                            op: op.clone(),
                            values: vec![op.inputs[1].clone()],
                            via: "store".into(),
                            descend: None,
                        });
                    }
                }
                Opcode::Call => {
                    let Some(target) = op.call_target() else {
                        continue;
                    };
                    let callee_name = self
                        .program
                        .callee_name(target)
                        .unwrap_or("<unknown>")
                        .to_string();
                    if is_import_address(target) {
                        if let Some(summary) = summary_for(&callee_name) {
                            for eff in &summary.effects {
                                match eff {
                                    SummaryEffect::ArgFrom { dst, srcs } => {
                                        let Some(dst_v) = op.call_args().get(*dst) else {
                                            continue;
                                        };
                                        if self.xregion_matches(func, at, dst_v, region, f) {
                                            let values: Vec<Varnode> = srcs
                                                .iter()
                                                .filter_map(|&s| op.call_args().get(s).cloned())
                                                // strcat's dst also appears as a src;
                                                // skip self-reference to avoid a
                                                // degenerate cycle (the earlier writes
                                                // are found by this same scan).
                                                .filter(|a| {
                                                    !self.xregion_matches(func, at, a, region, f)
                                                })
                                                .collect();
                                            hits.push(WriteHit {
                                                at,
                                                op: op.clone(),
                                                values,
                                                via: callee_name.clone(),
                                                descend: None,
                                            });
                                        }
                                    }
                                    SummaryEffect::ArgSource { dst, kind, key } => {
                                        let Some(dst_v) = op.call_args().get(*dst) else {
                                            continue;
                                        };
                                        if self.xregion_matches(func, at, dst_v, region, f) {
                                            hits.push(WriteHit {
                                                at,
                                                op: op.clone(),
                                                values: Vec::new(),
                                                via: format!(
                                                    "{callee_name}:{}:{}",
                                                    kind.label(),
                                                    key
                                                ),
                                                descend: None,
                                            });
                                        }
                                    }
                                    _ => {}
                                }
                            }
                        }
                    } else {
                        // Internal call taking the buffer: writes may occur
                        // inside the callee through the pointer parameter.
                        for (j, arg) in op.call_args().iter().enumerate() {
                            if self.xregion_matches(func, at, arg, region, f) {
                                hits.push(WriteHit {
                                    at,
                                    op: op.clone(),
                                    values: Vec::new(),
                                    via: callee_name.clone(),
                                    descend: Some((target, j)),
                                });
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        hits
    }

    /// The optimized write scan: ops are enumerated directly by
    /// `(block, index)` (no position search, no up-front clone of the
    /// whole function body), call targets resolve through the interned
    /// [`CalleeInfo`] table (address → pre-resolved summary, no string
    /// hashing or cloning), and names are materialized only for actual
    /// hits. Hit discovery order and contents match the reference scan
    /// exactly.
    fn region_write_hits_optimized(
        &self,
        func: Address,
        region: &XRegion,
        before: Option<OpRef>,
        f: &Function,
    ) -> Vec<WriteHit> {
        let mut hits: Vec<WriteHit> = Vec::new();
        for (bi, block) in f.blocks().iter().enumerate() {
            for (index, op) in block.ops.iter().enumerate() {
                let at = OpRef {
                    block: BlockId(bi as u32),
                    index,
                };
                if let Some(limit) = before {
                    let ok = if at.block == limit.block {
                        at.index < limit.index
                    } else {
                        self.reachable(func, at.block.0, limit.block.0)
                    };
                    if !ok {
                        continue;
                    }
                }
                match op.opcode {
                    Opcode::Copy => {
                        // Direct store into a stack slot inside the region.
                        if let (Some(out), XRegion::Plain(Region::Stack(base))) =
                            (&op.output, region)
                        {
                            if let Some(off) = out.stack_offset() {
                                if self.offset_in_local(f, *base, off) {
                                    hits.push(WriteHit {
                                        at,
                                        op: op.clone(),
                                        values: vec![op.inputs[0].clone()],
                                        via: "store".into(),
                                        descend: None,
                                    });
                                }
                            }
                        }
                    }
                    Opcode::Store => {
                        let addr_v = &op.inputs[0];
                        if self.xregion_matches(func, at, addr_v, region, f) {
                            hits.push(WriteHit {
                                at,
                                op: op.clone(),
                                values: vec![op.inputs[1].clone()],
                                via: "store".into(),
                                descend: None,
                            });
                        }
                    }
                    Opcode::Call => {
                        let Some(target) = op.call_target() else {
                            continue;
                        };
                        let info = self.callees.get(&target);
                        if is_import_address(target) {
                            // An unknown import has no summary, so the
                            // reference scan records nothing for it either.
                            let Some(summary) = info.and_then(|i| i.summary.as_ref()) else {
                                continue;
                            };
                            for eff in &summary.effects {
                                match eff {
                                    SummaryEffect::ArgFrom { dst, srcs } => {
                                        let Some(dst_v) = op.call_args().get(*dst) else {
                                            continue;
                                        };
                                        if self.xregion_matches(func, at, dst_v, region, f) {
                                            let values: Vec<Varnode> = srcs
                                                .iter()
                                                .filter_map(|&s| op.call_args().get(s).cloned())
                                                // strcat's dst also appears as a src;
                                                // skip self-reference to avoid a
                                                // degenerate cycle (the earlier writes
                                                // are found by this same scan).
                                                .filter(|a| {
                                                    !self.xregion_matches(func, at, a, region, f)
                                                })
                                                .collect();
                                            hits.push(WriteHit {
                                                at,
                                                op: op.clone(),
                                                values,
                                                via: self.callee_label(target).to_string(),
                                                descend: None,
                                            });
                                        }
                                    }
                                    SummaryEffect::ArgSource { dst, kind, key } => {
                                        let Some(dst_v) = op.call_args().get(*dst) else {
                                            continue;
                                        };
                                        if self.xregion_matches(func, at, dst_v, region, f) {
                                            hits.push(WriteHit {
                                                at,
                                                op: op.clone(),
                                                values: Vec::new(),
                                                via: format!(
                                                    "{}:{}:{}",
                                                    self.callee_label(target),
                                                    kind.label(),
                                                    key
                                                ),
                                                descend: None,
                                            });
                                        }
                                    }
                                    _ => {}
                                }
                            }
                        } else {
                            // Internal call taking the buffer: writes may occur
                            // inside the callee through the pointer parameter.
                            for (j, arg) in op.call_args().iter().enumerate() {
                                if self.xregion_matches(func, at, arg, region, f) {
                                    hits.push(WriteHit {
                                        at,
                                        op: op.clone(),
                                        values: Vec::new(),
                                        via: self.callee_label(target).to_string(),
                                        descend: Some((target, j)),
                                    });
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        hits
    }

    /// Taint each collected write, latest first.
    fn taint_write_hits(
        &self,
        cx: &mut Cx,
        func: Address,
        mut hits: Vec<WriteHit>,
        parent: TaintNodeId,
        depth: usize,
    ) {
        // Backward discovery order: latest write first (the MFT inversion
        // step restores construction order).
        hits.sort_by_key(|h| std::cmp::Reverse(h.op.addr));
        for hit in hits {
            let node = cx.tree.add(
                Some(parent),
                func,
                Some(hit.op.clone()),
                None,
                TaintNodeKind::Write {
                    via: hit.via.clone(),
                },
            );
            cx.rec_write(node, parent, &hit.op, &hit.via);
            if let Some((callee, param_idx)) = hit.descend {
                // A callee here is internal: not replayable from the
                // function being recorded (see taint_call_result).
                cx.rec_poison("internal callee");
                cx.call_stack.push((func, hit.op.addr));
                if !self.try_apply_region_script(cx, callee, param_idx, node, depth + 1) {
                    self.taint_region(
                        cx,
                        callee,
                        &XRegion::PtrParam(param_idx),
                        None,
                        node,
                        depth + 1,
                    );
                }
                cx.call_stack.pop();
                continue;
            }
            if hit.values.is_empty() {
                // ArgSource writes: synthesize the lib-call source leaf.
                if let Some(target) = hit.op.call_target() {
                    let callee = self.program.callee_name(target).unwrap_or("?").to_string();
                    if let Some(summary) = summary_for(&callee) {
                        for eff in &summary.effects {
                            if let SummaryEffect::ArgSource { kind, key, .. } = eff {
                                self.leaf(
                                    cx,
                                    func,
                                    node,
                                    FieldSource::LibCall {
                                        kind: *kind,
                                        callee: callee.clone(),
                                        key: Some((*key).to_string()),
                                    },
                                );
                            }
                        }
                    }
                }
                continue;
            }
            for v in hit.values {
                self.taint_value(cx, func, hit.at, &v, node, depth + 1);
            }
        }
    }

    /// Does pointer `v` (at `at` in `func`) point into `region`?
    fn xregion_matches(
        &self,
        func: Address,
        at: OpRef,
        v: &Varnode,
        region: &XRegion,
        f: &Function,
    ) -> bool {
        // Pointer parameters match PtrParam regions positionally.
        if let XRegion::PtrParam(idx) = region {
            if let Some(p) = f.params().get(*idx) {
                if p == v {
                    return true;
                }
                // Also chase copies of the parameter.
                let defs = self.du(func).reaching_defs(at, v);
                if defs.len() == 1 {
                    let op = op_at(f, defs[0]).clone();
                    if op.opcode == Opcode::Copy {
                        return self.xregion_matches(func, defs[0], &op.inputs[0], region, f);
                    }
                }
            }
            return false;
        }
        let XRegion::Plain(target) = region else {
            return false;
        };
        let r = self.region_of(func, at, v);
        match (&r, target) {
            (Region::Stack(a), Region::Stack(base)) => self.offset_in_local(f, *base, *a),
            _ => r == *target,
        }
    }

    /// Whether stack offset `off` falls inside the named local starting at
    /// `base` (extent bounded by the next named local, or 256 bytes).
    fn offset_in_local(&self, f: &Function, base: i64, off: i64) -> bool {
        if off == base {
            return true;
        }
        if off < base {
            return false;
        }
        let mut next = i64::MAX;
        for (v, _) in f.symbols().iter() {
            if let Some(o) = v.stack_offset() {
                if o > base && o < next {
                    next = o;
                }
            }
        }
        let extent = if next == i64::MAX { 256 } else { next - base };
        off < base + extent
    }

    /// Resolve a string constant argument (e.g. an NVRAM key).
    fn string_of(&self, func: Address, at: OpRef, v: &Varnode) -> Option<String> {
        if let Some(value) = v.const_value() {
            return self.program.string_at(value).map(str::to_string);
        }
        match self.region_of(func, at, v) {
            Region::Data(a) => self.program.string_at(a).map(str::to_string),
            _ => None,
        }
    }

    /// Replay the out-param script of an index-matched callee instead of
    /// scanning its body. `node` is the Write node of the call hit;
    /// `depth` is the depth the traversal would have entered the callee
    /// region at. Returns false (caller falls back to traversal) when no
    /// script applies.
    fn try_apply_region_script(
        &self,
        cx: &mut Cx,
        callee: Address,
        param_idx: usize,
        node: TaintNodeId,
        depth: usize,
    ) -> bool {
        if cx.recording() {
            return false;
        }
        let Some(lib) = self.lib_funcs.get(&callee) else {
            return false;
        };
        let Some((_, script)) = lib
            .scripts
            .params
            .iter()
            .find(|(i, _)| *i as usize == param_idx)
        else {
            return false;
        };
        // The role was recorded entering the region at relative depth 0,
        // so the live entry depth is the replay base.
        self.apply_script(cx, lib, script, node, depth);
        true
    }

    /// Replay the return-value script of an index-matched internal call
    /// target instead of walking its returns. Mirrors the traversal's
    /// shape exactly: the ThroughCall node is created live, and the
    /// callee frame is pushed around the replay so param-crosses resume
    /// into this callsite. Returns false when no script applies.
    fn try_apply_return_script(
        &self,
        cx: &mut Cx,
        func: Address,
        op: &PcodeOp,
        target: Address,
        parent: TaintNodeId,
        depth: usize,
    ) -> bool {
        if cx.recording() {
            return false;
        }
        let Some(lib) = self.lib_funcs.get(&target) else {
            return false;
        };
        let Some(script) = lib.scripts.returns.as_ref() else {
            return false;
        };
        let callee_name = self
            .program
            .function(target)
            .expect("index-matched function exists")
            .name()
            .to_string();
        let node = cx.tree.add(
            Some(parent),
            func,
            Some(op.clone()),
            op.output.clone(),
            TaintNodeKind::ThroughCall {
                callee: callee_name,
            },
        );
        cx.call_stack.push((func, op.addr));
        // Return chains were recorded at relative depth 1 = the live
        // traversal's depth + 1, so this call's depth is the base.
        self.apply_script(cx, lib, script, node, depth);
        cx.call_stack.pop();
        true
    }

    /// Replay one recorded script at a live application point.
    ///
    /// Guards re-run against live trace state (budget, visited sets), so
    /// pruning matches what the traversal would have done; emissions
    /// re-add the recorded nodes verbatim; [`LibStep::Resume`] re-enters
    /// live traversal in the caller frame, exactly like the traversal's
    /// param-crossing. Recorded node id 0 maps to `root`.
    fn apply_script(
        &self,
        cx: &mut Cx,
        lib: &LibFunc,
        script: &LibScript,
        root: TaintNodeId,
        base: usize,
    ) {
        cx.lib_stats.traversals_skipped += 1;
        cx.deps.funcs.insert(lib.entry);
        let mut map: HashMap<u32, TaintNodeId, FnvBuildHasher> = HashMap::default();
        map.insert(0, root);
        let steps = &script.steps;
        let mut i = 0usize;
        while i < steps.len() {
            match &steps[i] {
                LibStep::OpenValue {
                    parent,
                    at,
                    v,
                    depth,
                } => {
                    let p = map[parent];
                    let depth = base + *depth as usize;
                    if !self.budget_ok(cx, depth) {
                        self.leaf(
                            cx,
                            lib.entry,
                            p,
                            FieldSource::Unresolved {
                                reason: "budget exceeded",
                            },
                        );
                        cx.lib_stats.summary_applications += 1;
                        i = skip_open(steps, i);
                        continue;
                    }
                    if !cx.visited_vals.insert((lib.entry, *at, v.clone())) {
                        i = skip_open(steps, i);
                        continue;
                    }
                    i += 1;
                }
                LibStep::OpenRegion {
                    parent,
                    region,
                    before,
                    depth,
                } => {
                    let p = map[parent];
                    let depth = base + *depth as usize;
                    if !self.budget_ok(cx, depth) {
                        self.leaf(
                            cx,
                            lib.entry,
                            p,
                            FieldSource::Unresolved {
                                reason: "budget exceeded",
                            },
                        );
                        cx.lib_stats.summary_applications += 1;
                        i = skip_open(steps, i);
                        continue;
                    }
                    let xr = lib_xregion(region);
                    if !cx.visited_regions.insert(lib.entry, &xr, *before) {
                        i = skip_open(steps, i);
                        continue;
                    }
                    i += 1;
                }
                LibStep::Close => {
                    i += 1;
                }
                LibStep::Transform { id, parent, op } => {
                    let node = cx.tree.add(
                        Some(map[parent]),
                        lib.entry,
                        Some(op.clone()),
                        op.output.clone(),
                        TaintNodeKind::Transform { opcode: op.opcode },
                    );
                    map.insert(*id, node);
                    cx.lib_stats.summary_applications += 1;
                    i += 1;
                }
                LibStep::Write {
                    id,
                    parent,
                    op,
                    via,
                } => {
                    let node = cx.tree.add(
                        Some(map[parent]),
                        lib.entry,
                        Some(op.clone()),
                        None,
                        TaintNodeKind::Write { via: via.clone() },
                    );
                    map.insert(*id, node);
                    cx.lib_stats.summary_applications += 1;
                    i += 1;
                }
                LibStep::ThroughCall {
                    id,
                    parent,
                    op,
                    callee,
                } => {
                    let node = cx.tree.add(
                        Some(map[parent]),
                        lib.entry,
                        Some(op.clone()),
                        op.output.clone(),
                        TaintNodeKind::ThroughCall {
                            callee: callee.clone(),
                        },
                    );
                    map.insert(*id, node);
                    cx.lib_stats.summary_applications += 1;
                    i += 1;
                }
                LibStep::Leaf { parent, source } => {
                    cx.tree.add(
                        Some(map[parent]),
                        lib.entry,
                        None,
                        None,
                        TaintNodeKind::Source(source.clone()),
                    );
                    cx.lib_stats.summary_applications += 1;
                    i += 1;
                }
                LibStep::Resume {
                    id,
                    parent,
                    v,
                    param,
                    depth,
                } => {
                    let node = cx.tree.add(
                        Some(map[parent]),
                        lib.entry,
                        None,
                        Some(v.clone()),
                        TaintNodeKind::ParamCross {
                            param: *param as usize,
                        },
                    );
                    map.insert(*id, node);
                    cx.lib_stats.summary_applications += 1;
                    // Mirror value_without_defs' concrete-callsite
                    // branch: both application hooks push the callsite
                    // frame, so the stack is never empty here.
                    if let Some((caller, callsite)) = cx.call_stack.pop() {
                        let caller_f = self.program.function(caller).expect("caller exists");
                        if let Some(call) = caller_f.op_at(callsite).cloned() {
                            if let Some(arg) = call.call_args().get(*param as usize).cloned() {
                                if let Some(at) = self.du(caller).position_of(callsite) {
                                    self.taint_value(
                                        cx,
                                        caller,
                                        at,
                                        &arg,
                                        node,
                                        base + *depth as usize + 1,
                                    );
                                }
                            }
                        }
                        cx.call_stack.push((caller, callsite));
                    }
                    i += 1;
                }
            }
        }
    }

    /// Record replay scripts for the function entered at `entry`, for
    /// the `firmres-libid` index builder. Returns `None` when the
    /// function does not exist; otherwise every pointer-parameter role
    /// and the return role is either recorded or rejected with a reason
    /// (see [`LibFuncScripts::rejected`]). Rejected roles simply keep
    /// full traversal at runtime.
    pub fn record_lib_function(&self, entry: Address) -> Option<LibFuncScripts> {
        let f = self.program.function(entry)?;
        let mut out = LibFuncScripts::default();
        // Image-independence pre-scan: a constant at or above the
        // recording image's data base could resolve into the data
        // segment of some image (string probe, data region), so the
        // whole function is rejected. Call-target constants are exempt —
        // they are name-derived import addresses or hash-covered
        // internal entries, not data pointers.
        let data_base = self.program.data_base();
        for op in f.ops() {
            let skip = usize::from(op.opcode == Opcode::Call);
            for v in op.inputs.iter().skip(skip) {
                if let Some(c) = v.const_value() {
                    if c >= data_base {
                        out.rejected
                            .push(("function".to_string(), "constant may alias data segment"));
                        return Some(out);
                    }
                }
            }
        }
        for i in 0..f.params().len() {
            match self.record_role(entry, RecRole::Param(i)) {
                Ok(script) => out.params.push((i as u32, script)),
                Err(reason) => out.rejected.push((format!("param{i}"), reason)),
            }
        }
        match self.record_role(entry, RecRole::Return) {
            Ok(script) => out.returns = Some(script),
            Err(reason) => out.rejected.push(("return".to_string(), reason)),
        }
        Some(out)
    }

    /// Run one traversal role with a recorder attached and return the
    /// transcript, or the reason it was rejected.
    fn record_role(&self, entry: Address, role: RecRole) -> Result<LibScript, &'static str> {
        let mut cx = Cx {
            tree: TaintTree::default(),
            visited_vals: VisitedVals::new(self.config.cold_path),
            visited_regions: VisitedRegions::new(self.config.cold_path),
            call_stack: Vec::new(),
            deps: TraceDeps::default(),
            lib_stats: LibStats::default(),
            rec: Some(RecState {
                steps: Vec::new(),
                poison: None,
            }),
        };
        // Recorded parent id 0: replay maps it to the application point.
        let root = cx.tree.add(
            None,
            entry,
            None,
            None,
            TaintNodeKind::Root {
                delivery: "<recording>".into(),
            },
        );
        debug_assert_eq!(root.0, 0);
        match role {
            RecRole::Param(i) => {
                // Same entry shape as taint_write_hits' descend branch,
                // at relative depth 0.
                self.taint_region(&mut cx, entry, &XRegion::PtrParam(i), None, root, 0);
            }
            RecRole::Return => {
                // Same returns walk as taint_call_result's internal
                // branch, at relative depth 1 (= live depth + 1).
                let f = self.program.function(entry).expect("function exists");
                let returns: Vec<(OpRef, Varnode)> = {
                    let du = self.du(entry);
                    f.ops()
                        .filter(|o| o.opcode == Opcode::Return && !o.inputs.is_empty())
                        .filter_map(|o| du.position_of(o.addr).map(|r| (r, o.inputs[0].clone())))
                        .collect()
                };
                for (at, rv) in returns {
                    self.taint_value(&mut cx, entry, at, &rv, root, 1);
                }
            }
        }
        let rec = cx.rec.take().expect("recording state present");
        match rec.poison {
            Some(reason) => Err(reason),
            None => Ok(LibScript { steps: rec.steps }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmres_isa::{lift, Assembler};

    fn trace_last_delivery(src: &str, delivery: &str, arg: usize) -> (TaintTree, Program) {
        let exe = Assembler::new().assemble(src).unwrap();
        let p = lift(&exe, "t").unwrap();
        let (func, callsite) = {
            let mut found = None;
            for f in p.functions() {
                for c in f.callsites() {
                    let name = c.call_target().and_then(|t| p.callee_name(t));
                    if name == Some(delivery) {
                        found = Some((f.entry(), c.addr));
                    }
                }
            }
            found.expect("delivery callsite present")
        };
        let engine = TaintEngine::new(&p);
        let tree = engine.trace(func, callsite, arg);
        (tree, p)
    }

    fn source_strings(tree: &TaintTree) -> Vec<String> {
        tree.sources()
            .map(|n| n.source().unwrap().to_string())
            .collect()
    }

    #[test]
    fn sprintf_message_decomposes_into_fields() {
        let (tree, _) = trace_last_delivery(
            r#"
.func main
.local buf 128
.local mac 32
    lea a0, mac
    callx get_mac_addr
    lea a0, buf
    la  a1, fmt
    lea a2, mac
    callx sprintf
    mov a1, a0
    li  a0, 1
    callx SSL_write
    ret
.endfunc
.data
fmt: .asciz "{\"mac\":\"%s\"}"
"#,
            "SSL_write",
            1,
        );
        let srcs = source_strings(&tree);
        assert!(
            srcs.iter().any(|s| s.contains("{\"mac\":\"%s\"}")),
            "format string is a field source: {srcs:?}"
        );
        assert!(
            srcs.iter().any(|s| s.contains("get_mac_addr")),
            "mac buffer traces to the hardware-id getter: {srcs:?}"
        );
    }

    #[test]
    fn nvram_values_surface_with_keys() {
        let (tree, _) = trace_last_delivery(
            r#"
.func main
.local buf 128
    la  a0, key
    callx nvram_get
    mov a2, rv
    lea a0, buf
    la  a1, fmt
    callx sprintf
    lea a1, buf
    li  a0, 3
    callx send
    ret
.endfunc
.data
key: .asciz "serial_no"
fmt: .asciz "sn=%s"
"#,
            "send",
            1,
        );
        let srcs = source_strings(&tree);
        assert!(
            srcs.iter().any(|s| s.contains("nvram_get(\"serial_no\")")),
            "nvram source resolved with key: {srcs:?}"
        );
    }

    #[test]
    fn strcat_concatenation_order_is_reversed_in_tree() {
        let (tree, _) = trace_last_delivery(
            r#"
.func main
.local buf 128
    lea a0, buf
    la  a1, first
    callx strcpy
    lea a0, buf
    la  a1, second
    callx strcat
    lea a1, buf
    li  a0, 1
    callx SSL_write
    ret
.endfunc
.data
first: .asciz "id="
second: .asciz "1234"
"#,
            "SSL_write",
            1,
        );
        // Root children are the writes in backward (latest-first) order.
        let root = tree.root();
        let write_vias: Vec<String> = root
            .children
            .iter()
            .filter_map(|c| match &tree.node(*c).kind {
                TaintNodeKind::Write { via } => Some(via.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(write_vias, vec!["strcat".to_string(), "strcpy".to_string()]);
        let srcs = source_strings(&tree);
        assert!(srcs.iter().any(|s| s.contains("id=")), "{srcs:?}");
        assert!(srcs.iter().any(|s| s.contains("1234")), "{srcs:?}");
    }

    #[test]
    fn cjson_allocation_writes_are_found() {
        let (tree, _) = trace_last_delivery(
            r#"
.func main
    callx cJSON_CreateObject
    mov t0, rv
    mov a0, t0
    la  a1, kmac
    la  a2, vmac
    callx cJSON_AddStringToObject
    mov a0, t0
    callx cJSON_Print
    mov a1, rv
    li  a0, 1
    callx SSL_write
    ret
.endfunc
.data
kmac: .asciz "mac"
vmac: .asciz "00:11:22:33:44:55"
"#,
            "SSL_write",
            1,
        );
        let srcs = source_strings(&tree);
        assert!(
            srcs.iter().any(|s| s.contains("\"mac\"")),
            "json key found: {srcs:?}"
        );
        assert!(
            srcs.iter().any(|s| s.contains("00:11:22:33:44:55")),
            "json value found: {srcs:?}"
        );
    }

    #[test]
    fn interprocedural_flow_through_helper_return() {
        let (tree, _) = trace_last_delivery(
            r#"
.func get_id
    la  a0, key
    callx nvram_get
    mov rv, rv
    ret
.endfunc
.func main
    call get_id
    mov a1, rv
    li  a0, 1
    callx SSL_write
    ret
.endfunc
.data
key: .asciz "device_id"
"#,
            "SSL_write",
            1,
        );
        let srcs = source_strings(&tree);
        assert!(
            srcs.iter().any(|s| s.contains("nvram_get(\"device_id\")")),
            "flow through callee return: {srcs:?}"
        );
    }

    #[test]
    fn interprocedural_flow_through_buffer_param() {
        let (tree, _) = trace_last_delivery(
            r#"
.func fill out
    mov a0, a0
    la  a1, content
    callx strcpy
    ret
.endfunc
.func main
.local buf 64
    lea a0, buf
    call fill
    lea a1, buf
    li  a0, 1
    callx SSL_write
    ret
.endfunc
.data
content: .asciz "hello-from-helper"
"#,
            "SSL_write",
            1,
        );
        let srcs = source_strings(&tree);
        assert!(
            srcs.iter().any(|s| s.contains("hello-from-helper")),
            "writes inside callee found via pointer param: {srcs:?}"
        );
    }

    #[test]
    fn param_with_no_callers_is_front_end_input() {
        let (tree, _) = trace_last_delivery(
            r#"
.func main user_pass
    mov a1, a0
    li  a0, 1
    callx SSL_write
    ret
.endfunc
"#,
            "SSL_write",
            1,
        );
        let srcs = source_strings(&tree);
        assert!(
            srcs.iter().any(|s| s.contains("main#param0")),
            "entry parameter = front-end input: {srcs:?}"
        );
    }

    #[test]
    fn constant_message_is_a_string_leaf() {
        let (tree, _) = trace_last_delivery(
            ".func main\n la a1, msg\n li a0, 1\n callx SSL_write\n ret\n.endfunc\n.data\nmsg: .asciz \"PING\"\n",
            "SSL_write",
            1,
        );
        let srcs = source_strings(&tree);
        assert_eq!(srcs, vec!["\"PING\"".to_string()]);
    }

    #[test]
    fn overtaint_toggle_changes_unknown_call_handling() {
        let src = r#"
.func main
    la a0, arg
    callx mystery_transform
    mov a1, rv
    li  a0, 1
    callx SSL_write
    ret
.endfunc
.data
arg: .asciz "seed"
"#;
        let exe = Assembler::new().assemble(src).unwrap();
        let p = lift(&exe, "t").unwrap();
        let f = p.function_by_name("main").unwrap();
        let callsite = f
            .callsites()
            .find(|c| c.call_target().and_then(|t| p.callee_name(t)) == Some("SSL_write"))
            .unwrap()
            .addr;
        let entry = f.entry();

        let over = TaintEngine::new(&p);
        let t1 = over.trace(entry, callsite, 1);
        assert!(
            source_strings(&t1).iter().any(|s| s.contains("seed")),
            "overtaint traces through unknown imports"
        );

        let strict = TaintEngine::with_config(
            &p,
            TaintConfig {
                overtaint: false,
                ..TaintConfig::default()
            },
        );
        let t2 = strict.trace(entry, callsite, 1);
        assert!(
            !source_strings(&t2).iter().any(|s| s.contains("seed")),
            "without overtaint the unknown import is opaque"
        );
    }

    #[test]
    fn budget_limits_are_respected() {
        let src = r#"
.func main
.local buf 64
    lea a0, buf
    la  a1, s
    callx strcpy
    lea a1, buf
    li  a0, 1
    callx SSL_write
    ret
.endfunc
.data
s: .asciz "x"
"#;
        let exe = Assembler::new().assemble(src).unwrap();
        let p = lift(&exe, "t").unwrap();
        let f = p.function_by_name("main").unwrap();
        let callsite = f.callsites().nth(1).unwrap().addr;
        let engine = TaintEngine::with_config(
            &p,
            TaintConfig {
                max_depth: 1,
                max_nodes: 4,
                ..TaintConfig::default()
            },
        );
        let tree = engine.trace(f.entry(), callsite, 1);
        assert!(tree.len() <= 5, "node budget honored (root + few)");
    }

    #[test]
    fn missing_callsite_yields_unresolved_root() {
        let src = ".func main\n ret\n.endfunc\n";
        let exe = Assembler::new().assemble(src).unwrap();
        let p = lift(&exe, "t").unwrap();
        let engine = TaintEngine::new(&p);
        let f = p.function_by_name("main").unwrap();
        let tree = engine.trace(f.entry(), 0xdead, 0);
        assert_eq!(tree.len(), 2);
        assert!(matches!(
            tree.nodes()[1].kind,
            TaintNodeKind::Source(FieldSource::Unresolved { .. })
        ));
    }

    #[test]
    fn repeated_traces_are_memoized() {
        let src = ".func main\n la a1, msg\n li a0, 1\n callx SSL_write\n ret\n.endfunc\n.data\nmsg: .asciz \"PING\"\n";
        let exe = Assembler::new().assemble(src).unwrap();
        let p = lift(&exe, "t").unwrap();
        let f = p.function_by_name("main").unwrap();
        let callsite = f.callsites().next().unwrap().addr;
        let engine = TaintEngine::new(&p);
        let first = engine.trace(f.entry(), callsite, 1);
        assert_eq!(engine.cache_stats(), (0, 1));
        let second = engine.trace(f.entry(), callsite, 1);
        assert_eq!(engine.cache_stats(), (1, 1));
        assert_eq!(source_strings(&first), source_strings(&second));
        assert_eq!(first.len(), second.len());
        // A different argument is a different query.
        engine.trace(f.entry(), callsite, 0);
        assert_eq!(engine.cache_stats(), (1, 2));
    }

    #[test]
    fn trace_deps_record_visited_and_enumerated_functions() {
        // main passes a parameter-derived value down: helper's trace
        // enumerates its callers, so deps must name both functions and
        // flag the enumeration.
        let src = r#"
.func helper msg
 mov a1, a0
 li a0, 1
 callx SSL_write
 ret
.endfunc
.func main
 la a0, msg
 call helper
 ret
.endfunc
.data
msg: .asciz "PING"
"#;
        let exe = Assembler::new().assemble(src).unwrap();
        let p = lift(&exe, "t").unwrap();
        let helper = p.function_by_name("helper").unwrap();
        let main = p.function_by_name("main").unwrap();
        let callsite = helper.callsites().next().unwrap().addr;
        let engine = TaintEngine::new(&p);
        let (tree, deps) = engine.trace_with_deps(helper.entry(), callsite, 1);
        assert!(tree.len() > 1);
        assert!(deps.funcs.contains(&helper.entry()), "{deps:?}");
        assert!(deps.funcs.contains(&main.entry()), "{deps:?}");
        assert!(deps.caller_enums.contains(&helper.entry()), "{deps:?}");
        // The memoized deps are retrievable without recounting.
        let stats = engine.cache_stats();
        assert_eq!(
            engine.trace_deps(helper.entry(), callsite, 1),
            Some(deps),
            "stored deps match"
        );
        assert_eq!(engine.cache_stats(), stats);
        assert_eq!(engine.trace_deps(helper.entry(), 0xdead, 1), None);
    }

    #[test]
    fn path_to_root_walks_parents() {
        let (tree, _) = trace_last_delivery(
            ".func main\n la a1, msg\n li a0, 1\n callx SSL_write\n ret\n.endfunc\n.data\nmsg: .asciz \"x\"\n",
            "SSL_write",
            1,
        );
        let leaf = tree.sources().next().unwrap().id;
        let path = tree.path_to_root(leaf);
        assert_eq!(*path.last().unwrap(), tree.root().id);
        assert_eq!(path[0], leaf);
    }

    #[test]
    fn unresolved_reasons_intern_exactly() {
        for r in UNRESOLVED_REASONS {
            let interned = intern_unresolved_reason(r);
            assert_eq!(interned, r);
            // Interning an owned copy yields the same static string.
            let owned = String::from(r);
            assert_eq!(intern_unresolved_reason(owned.as_str()), r);
        }
        assert_eq!(intern_unresolved_reason("not a real reason"), "unknown");
    }

    #[test]
    fn summary_digests_the_trace() {
        let (tree, _) = trace_last_delivery(
            ".func main\n la a1, msg\n li a0, 1\n callx SSL_write\n ret\n.endfunc\n.data\nmsg: .asciz \"PING\"\n",
            "SSL_write",
            1,
        );
        let summary = tree.summary();
        assert_eq!(summary.nodes, tree.len());
        assert_eq!(
            summary.sources.len(),
            tree.sources().count(),
            "one summary source per leaf"
        );
        assert_eq!(summary.unresolved_count(), 0);
        assert!(summary
            .concrete_sources()
            .any(|s| matches!(s, FieldSource::StringConstant { value, .. } if value == "PING")));
    }
}
