//! Function summaries for library calls.
//!
//! The paper (§IV-B, propagation rules): *"we write function summaries for
//! commonly invoked system calls and library calls, to avoid time and
//! memory costs during dataflow analysis."* A [`Summary`] describes how
//! data moves through an import without analyzing its body, and which
//! arguments/returns are terminal **field sources**.

/// Where a message-field value ultimately originates.
///
/// These map to the paper's taint-sink categories: constants from the data
/// segment, values from NVRAM or configuration files, and front-end
/// (environment/user) input, plus hardware identity reads and network
/// input that real firmware exhibits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SourceKind {
    /// NVRAM variable.
    Nvram,
    /// Configuration file value.
    ConfigFile,
    /// Environment variable (front-end provided).
    Environment,
    /// Hardware identity (MAC address, serial number, uid, …).
    HardwareId,
    /// Value received from the network (e.g. an earlier cloud response).
    NetworkIn,
    /// Front-end user input.
    UserInput,
    /// Current time.
    Time,
    /// Random value.
    Random,
}

impl SourceKind {
    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            SourceKind::Nvram => "nvram",
            SourceKind::ConfigFile => "config",
            SourceKind::Environment => "env",
            SourceKind::HardwareId => "hw-id",
            SourceKind::NetworkIn => "net-in",
            SourceKind::UserInput => "user",
            SourceKind::Time => "time",
            SourceKind::Random => "random",
        }
    }
}

/// One dataflow effect of a summarized call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SummaryEffect {
    /// Argument `dst` (a destination buffer) receives data from the listed
    /// source arguments.
    ArgFrom {
        /// Destination argument index.
        dst: usize,
        /// Contributing argument indices.
        srcs: Vec<usize>,
    },
    /// The return value is derived from the listed arguments.
    RetFrom {
        /// Contributing argument indices.
        srcs: Vec<usize>,
    },
    /// The return value is a terminal field source; `key_arg` names the
    /// argument whose string constant identifies the key (e.g.
    /// `nvram_get("mac")`).
    RetSource {
        /// Kind of source.
        kind: SourceKind,
        /// Argument index holding the lookup key, if any.
        key_arg: Option<usize>,
    },
    /// Argument `dst` is filled with a terminal field source (out-param
    /// style getters such as `get_mac_addr(buf)`).
    ArgSource {
        /// Destination argument index.
        dst: usize,
        /// Kind of source.
        kind: SourceKind,
        /// Fixed key name for the value (e.g. `"mac"`).
        key: &'static str,
    },
    /// The call allocates and returns a fresh buffer (e.g.
    /// `cJSON_CreateObject`): writes into the result are tracked by
    /// allocation-site region.
    RetAlloc,
}

/// A library-call summary: name plus its dataflow effects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Summary {
    /// Import name.
    pub name: &'static str,
    /// Effects, applied independently.
    pub effects: Vec<SummaryEffect>,
}

impl Summary {
    /// Effects that write through the destination-buffer argument `dst`.
    pub fn writes_to_arg(&self, dst: usize) -> impl Iterator<Item = &SummaryEffect> {
        self.effects.iter().filter(move |e| match e {
            SummaryEffect::ArgFrom { dst: d, .. } | SummaryEffect::ArgSource { dst: d, .. } => {
                *d == dst
            }
            _ => false,
        })
    }

    /// Whether the summary has any effect on its return value.
    pub fn affects_return(&self) -> bool {
        self.effects.iter().any(|e| {
            matches!(
                e,
                SummaryEffect::RetFrom { .. }
                    | SummaryEffect::RetSource { .. }
                    | SummaryEffect::RetAlloc
            )
        })
    }
}

/// The summary for import `name`, if one is defined.
///
/// Unknown imports have no summary; the taint engine then over-taints
/// (treats every argument as contributing), matching the paper's
/// deliberate over-approximation.
pub fn summary_for(name: &str) -> Option<Summary> {
    use SummaryEffect::*;
    let effects: Vec<SummaryEffect> = match name {
        // ---- formatted output ----
        "sprintf" => vec![ArgFrom {
            dst: 0,
            srcs: vec![1, 2, 3, 4, 5],
        }],
        "snprintf" => vec![ArgFrom {
            dst: 0,
            srcs: vec![2, 3, 4, 5],
        }],
        // ---- string/memory movement ----
        "strcpy" => vec![
            ArgFrom {
                dst: 0,
                srcs: vec![1],
            },
            RetFrom { srcs: vec![0] },
        ],
        "strncpy" => vec![ArgFrom {
            dst: 0,
            srcs: vec![1],
        }],
        "strcat" => vec![
            ArgFrom {
                dst: 0,
                srcs: vec![0, 1],
            },
            RetFrom { srcs: vec![0] },
        ],
        "memcpy" => vec![
            ArgFrom {
                dst: 0,
                srcs: vec![1],
            },
            RetFrom { srcs: vec![0] },
        ],
        "itoa" => vec![
            ArgFrom {
                dst: 1,
                srcs: vec![0],
            },
            RetFrom { srcs: vec![1] },
        ],
        // ---- JSON assembly (cJSON style) ----
        "cJSON_CreateObject" => vec![RetAlloc],
        "cJSON_AddStringToObject" | "cJSON_AddNumberToObject" => {
            vec![ArgFrom {
                dst: 0,
                srcs: vec![1, 2],
            }]
        }
        "cJSON_Print" => vec![RetFrom { srcs: vec![0] }],
        "cJSON_GetObjectItem" => vec![RetFrom { srcs: vec![0, 1] }],
        // ---- configuration / identity sources ----
        "nvram_get" => vec![RetSource {
            kind: SourceKind::Nvram,
            key_arg: Some(0),
        }],
        "cfg_get" => vec![RetSource {
            kind: SourceKind::ConfigFile,
            key_arg: Some(0),
        }],
        "config_read" => vec![RetSource {
            kind: SourceKind::ConfigFile,
            key_arg: Some(1),
        }],
        "getenv" => vec![RetSource {
            kind: SourceKind::Environment,
            key_arg: Some(0),
        }],
        "get_mac_addr" => vec![ArgSource {
            dst: 0,
            kind: SourceKind::HardwareId,
            key: "mac",
        }],
        "get_serial" => vec![ArgSource {
            dst: 0,
            kind: SourceKind::HardwareId,
            key: "serial",
        }],
        "get_uid" => vec![ArgSource {
            dst: 0,
            kind: SourceKind::HardwareId,
            key: "uid",
        }],
        "get_dev_model" => vec![ArgSource {
            dst: 0,
            kind: SourceKind::HardwareId,
            key: "model",
        }],
        "get_fw_version" => {
            vec![ArgSource {
                dst: 0,
                kind: SourceKind::HardwareId,
                key: "fw_version",
            }]
        }
        // ---- derivation (signatures, digests) ----
        "hmac_sign" => vec![RetFrom { srcs: vec![0, 1] }],
        "md5_hex" | "sha256_hex" => {
            vec![
                ArgFrom {
                    dst: 2,
                    srcs: vec![0],
                },
                RetFrom { srcs: vec![2] },
            ]
        }
        // ---- network input ----
        "recv" => vec![ArgSource {
            dst: 1,
            kind: SourceKind::NetworkIn,
            key: "recv",
        }],
        "recvfrom" => vec![ArgSource {
            dst: 1,
            kind: SourceKind::NetworkIn,
            key: "recvfrom",
        }],
        "read" => vec![ArgSource {
            dst: 1,
            kind: SourceKind::NetworkIn,
            key: "read",
        }],
        // ---- misc sources ----
        "time" => vec![RetSource {
            kind: SourceKind::Time,
            key_arg: None,
        }],
        "rand" => vec![RetSource {
            kind: SourceKind::Random,
            key_arg: None,
        }],
        _ => return None,
    };
    Some(Summary {
        name: summary_name(name),
        effects,
    })
}

/// Map a dynamic name to the static str stored in the table.
fn summary_name(name: &str) -> &'static str {
    const NAMES: &[&str] = &[
        "sprintf",
        "snprintf",
        "strcpy",
        "strncpy",
        "itoa",
        "strcat",
        "memcpy",
        "cJSON_CreateObject",
        "cJSON_AddStringToObject",
        "cJSON_AddNumberToObject",
        "cJSON_Print",
        "cJSON_GetObjectItem",
        "nvram_get",
        "cfg_get",
        "config_read",
        "getenv",
        "get_mac_addr",
        "get_serial",
        "get_uid",
        "get_dev_model",
        "get_fw_version",
        "hmac_sign",
        "md5_hex",
        "sha256_hex",
        "recv",
        "recvfrom",
        "read",
        "time",
        "rand",
    ];
    NAMES
        .iter()
        .find(|n| **n == name)
        .copied()
        .unwrap_or("unknown")
}

/// Message-delivery functions: the callsites whose arguments are the
/// paper's *taint sources* (the variables holding device-cloud messages).
/// Returns the index of the argument that carries the message payload.
pub fn delivery_payload_arg(name: &str) -> Option<usize> {
    match name {
        // SSL_write(ctx, buf, len) / CyaSSL_write(ctx, buf, len)
        "SSL_write" | "CyaSSL_write" => Some(1),
        // send(fd, buf, len, flags) / write(fd, buf, len)
        "send" | "write" => Some(1),
        // sendto(fd, buf, len, flags, addr, alen)
        "sendto" => Some(1),
        // mosquitto_publish(mosq, topic, payload, len) — payload
        "mosquitto_publish" => Some(2),
        // mqtt_publish(client, topic, payload, len)
        "mqtt_publish" => Some(2),
        // http_post(host, path, body, hdrs)
        "http_post" => Some(2),
        // http_get(host, path, hdrs) — the path carries the query string
        "http_get" => Some(1),
        // curl_easy_perform(handle) — handle configured elsewhere; treat
        // the handle itself as the payload carrier.
        "curl_easy_perform" => Some(0),
        _ => None,
    }
}

/// For delivery functions with a separate topic/path argument (MQTT topic,
/// HTTP path), its index — used to recover the endpoint.
pub fn delivery_endpoint_arg(name: &str) -> Option<usize> {
    match name {
        "mosquitto_publish" | "mqtt_publish" => Some(1),
        "http_post" | "http_get" => Some(1),
        _ => None,
    }
}

/// Request-incoming functions (`fun_in` anchors in paper Fig. 4) and the
/// index of the buffer argument that receives the request.
pub fn incoming_buffer_arg(name: &str) -> Option<usize> {
    match name {
        "recv" | "recvfrom" | "read" => Some(1),
        "SSL_read" | "CyaSSL_read" => Some(1),
        "mqtt_message_get" => Some(1),
        _ => None,
    }
}

/// Response-outgoing functions (`fun_out` anchors in paper Fig. 4).
pub fn is_outgoing(name: &str) -> bool {
    matches!(
        name,
        "send"
            | "sendto"
            | "write"
            | "SSL_write"
            | "CyaSSL_write"
            | "mosquitto_publish"
            | "mqtt_publish"
            | "http_post"
            | "http_get"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_summaries_exist() {
        for name in ["sprintf", "strcpy", "strcat", "nvram_get", "cJSON_Print"] {
            assert!(summary_for(name).is_some(), "{name}");
        }
        assert!(summary_for("totally_unknown_fn").is_none());
    }

    #[test]
    fn sprintf_writes_through_arg0() {
        let s = summary_for("sprintf").unwrap();
        let writes: Vec<_> = s.writes_to_arg(0).collect();
        assert_eq!(writes.len(), 1);
        match writes[0] {
            SummaryEffect::ArgFrom { srcs, .. } => assert_eq!(srcs, &vec![1, 2, 3, 4, 5]),
            other => panic!("unexpected effect {other:?}"),
        }
        assert!(s.writes_to_arg(1).next().is_none());
        assert!(!s.affects_return());
    }

    #[test]
    fn getters_fill_out_params() {
        let s = summary_for("get_mac_addr").unwrap();
        let effects: Vec<_> = s.writes_to_arg(0).cloned().collect();
        match &effects[0] {
            SummaryEffect::ArgSource { kind, key, .. } => {
                assert_eq!(*kind, SourceKind::HardwareId);
                assert_eq!(*key, "mac");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nvram_get_is_ret_source_with_key() {
        let s = summary_for("nvram_get").unwrap();
        assert!(s.affects_return());
        assert!(matches!(
            s.effects[0],
            SummaryEffect::RetSource {
                kind: SourceKind::Nvram,
                key_arg: Some(0)
            }
        ));
    }

    #[test]
    fn delivery_and_anchor_tables() {
        assert_eq!(delivery_payload_arg("SSL_write"), Some(1));
        assert_eq!(delivery_payload_arg("mosquitto_publish"), Some(2));
        assert_eq!(delivery_payload_arg("strcpy"), None);
        assert_eq!(delivery_endpoint_arg("mosquitto_publish"), Some(1));
        assert_eq!(delivery_endpoint_arg("SSL_write"), None);
        assert_eq!(incoming_buffer_arg("recv"), Some(1));
        assert!(is_outgoing("send"));
        assert!(!is_outgoing("recv"));
    }

    #[test]
    fn source_kind_labels_unique() {
        use std::collections::BTreeSet;
        let kinds = [
            SourceKind::Nvram,
            SourceKind::ConfigFile,
            SourceKind::Environment,
            SourceKind::HardwareId,
            SourceKind::NetworkIn,
            SourceKind::UserInput,
            SourceKind::Time,
            SourceKind::Random,
        ];
        let labels: BTreeSet<_> = kinds.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), kinds.len());
    }
}
