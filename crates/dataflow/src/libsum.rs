//! Known-library taint summaries: the runtime side of `firmres-libid`.
//!
//! A [`LibIndex`] maps post-lift function-content hashes
//! (`firmres_ir::function_content_hash`) to [`LibFunc`] entries: the
//! library's name and version plus **recorded taint scripts** for the
//! function's parameter-buffer and return-value roles. During analysis,
//! a function whose hash matches the index is not traversed — the taint
//! engine replays the recorded script instead (see
//! `TaintEngine::with_config`), reproducing the reference traversal's
//! tree byte-for-byte while skipping the def-use chases and region
//! scans that make library bodies expensive.
//!
//! # Why replay is byte-identical
//!
//! A content-hash match implies the live function is *identical* to the
//! function the script was recorded from — same name, entry address,
//! parameters, op addresses, inputs and successors (the hash covers all
//! of them). A recorded script is therefore a faithful transcript of
//! the traversal the engine would perform live, with two classes of
//! step:
//!
//! * **Guards** ([`LibStep::OpenValue`] / [`LibStep::OpenRegion`] /
//!   [`LibStep::Close`]): the budget and visited-set checks the live
//!   traversal performs at each recursion entry. Replay re-evaluates
//!   them against the *live* trace state, pruning exactly the subtrees
//!   the traversal would prune.
//! * **Emissions** (`Transform`/`Write`/`ThroughCall`/`Leaf`/`Resume`):
//!   the tree nodes the traversal adds, replayed verbatim.
//!
//! The recorder refuses ("poisons") any script whose replay could
//! diverge from a live traversal: image-dependent content (data-segment
//! strings, constants at or above the recording image's data base),
//! internal callees, caller enumeration, budget exhaustion, and
//! duplicate guard keys within one script (see `DESIGN.md` §14 for the
//! full argument). A rejected role simply falls back to full traversal.

use crate::defuse::OpRef;
use crate::taint::FieldSource;
use firmres_ir::{Address, PcodeOp, Varnode};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Toggle for known-library identification, in the same Off/On shape as
/// the other PR-5-style ablation knobs: `Off` is the reference oracle
/// (full traversal everywhere), `On` replays recorded scripts for
/// hash-matched functions. Reports are byte-identical either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LibId {
    /// Full traversal everywhere (the reference oracle).
    #[default]
    Off,
    /// Replay recorded scripts for index-matched functions.
    On,
}

/// Per-trace libid counters, memoized alongside the trace itself so
/// repeated queries replay identical numbers regardless of scheduling.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LibStats {
    /// Library-body traversals replaced by script replay.
    pub traversals_skipped: u64,
    /// Taint-tree nodes emitted by script replay.
    pub summary_applications: u64,
}

impl LibStats {
    /// Fold another trace's counters into this one.
    pub fn merge(&mut self, other: &LibStats) {
        self.traversals_skipped += other.traversals_skipped;
        self.summary_applications += other.summary_applications;
    }
}

/// The buffer-region key of an [`LibStep::OpenRegion`] guard. Mirrors
/// the engine's internal extended-region type, minus the data-segment
/// variant (the recorder rejects data regions as image-dependent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LibRegionKey {
    /// A stack buffer at the given frame offset.
    Stack(i64),
    /// A heap allocation keyed by its allocation-site address.
    Alloc(u64),
    /// A buffer arriving through the pointer parameter at this index.
    PtrParam(u32),
}

/// One step of a recorded taint script.
///
/// `parent`/`id` are node identifiers from the *recording* trace; the
/// replayer maps them onto live tree nodes (recorded id `0` is the
/// application point's parent node).
#[derive(Debug, Clone, PartialEq)]
pub enum LibStep {
    /// Entry guard of a `taint_value` recursion: budget and
    /// visited-value checks against live state, then the recorded
    /// subtree up to the matching [`LibStep::Close`].
    OpenValue {
        /// Recorded parent node (for the budget leaf).
        parent: u32,
        /// Op position the value was traced at.
        at: OpRef,
        /// The traced varnode.
        v: Varnode,
        /// Depth relative to the script's application point.
        depth: u32,
    },
    /// Entry guard of a `taint_region` recursion.
    OpenRegion {
        /// Recorded parent node (for the budget leaf).
        parent: u32,
        /// The scanned region.
        region: LibRegionKey,
        /// Scan limit, when the region was read mid-function.
        before: Option<OpRef>,
        /// Depth relative to the script's application point.
        depth: u32,
    },
    /// Closes the innermost open guard.
    Close,
    /// A value-producing operation on the path.
    Transform {
        /// Recorded id of the node this step creates.
        id: u32,
        /// Recorded parent node.
        parent: u32,
        /// The operation (identical to the live op by hash match).
        op: PcodeOp,
    },
    /// A write into the scanned buffer.
    Write {
        /// Recorded id of the node this step creates.
        id: u32,
        /// Recorded parent node.
        parent: u32,
        /// The writing operation.
        op: PcodeOp,
        /// Writer label (`"store"`, a summarized callee name, …).
        via: String,
    },
    /// Flow through a summarized import call.
    ThroughCall {
        /// Recorded id of the node this step creates.
        id: u32,
        /// Recorded parent node.
        parent: u32,
        /// The call operation.
        op: PcodeOp,
        /// Callee name.
        callee: String,
    },
    /// A terminal field source.
    Leaf {
        /// Recorded parent node.
        parent: u32,
        /// The source (image-independent by recorder construction).
        source: FieldSource,
    },
    /// Flow reached a library-function parameter: replay adds the
    /// param-cross node, then continues *live* into the caller's
    /// argument — the only step that re-enters real traversal.
    Resume {
        /// Recorded id of the param-cross node this step creates.
        id: u32,
        /// Recorded parent node.
        parent: u32,
        /// The parameter varnode.
        v: Varnode,
        /// Parameter index.
        param: u32,
        /// Depth of the recursion that reached the parameter.
        depth: u32,
    },
}

/// A recorded taint script: the faithful transcript of one traversal
/// role of one library function.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LibScript {
    /// The steps, in recording (= traversal) order.
    pub steps: Vec<LibStep>,
}

/// The roles recorded for one library function, before index metadata
/// is attached ([`TaintEngine::record_lib_function`] output).
///
/// [`TaintEngine::record_lib_function`]: crate::TaintEngine::record_lib_function
#[derive(Debug, Clone, Default)]
pub struct LibFuncScripts {
    /// Out-parameter scripts by parameter index: replayed when a
    /// buffer is passed into the function through that pointer.
    pub params: Vec<(u32, LibScript)>,
    /// Return-value script: replayed when the function's result is
    /// traced.
    pub returns: Option<LibScript>,
    /// Roles the recorder refused, as `(role, reason)` — surfaced by
    /// `libid inspect`, harmless at runtime (traversal covers them).
    pub rejected: Vec<(String, &'static str)>,
}

/// The closed set of reasons the recorder can refuse a role for.
/// `.flix` round-trips rejection diagnostics through this table so the
/// decoded strings stay `&'static` (same discipline as
/// [`crate::UNRESOLVED_REASONS`]).
pub const REJECTION_REASONS: &[&str] = &[
    "data-segment string constant",
    "caller enumeration reached",
    "traversal budget exhausted while recording",
    "duplicate value guard in one role",
    "duplicate region guard in one role",
    "internal callee",
    "image-dependent region",
    "constant may alias data segment",
];

/// Map a rejection reason back to its canonical `&'static` form.
/// Unknown strings (a newer recorder, a damaged file) degrade to a
/// generic marker rather than failing the load — rejections are purely
/// diagnostic.
pub fn intern_rejection_reason(reason: &str) -> &'static str {
    REJECTION_REASONS
        .iter()
        .find(|r| **r == reason)
        .copied()
        .unwrap_or("role not recorded")
}

impl LibFuncScripts {
    /// Whether any role was recorded.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty() && self.returns.is_none()
    }
}

/// One known-library function: index metadata plus recorded scripts.
#[derive(Debug, Clone)]
pub struct LibFunc {
    /// Library name (e.g. `zutil`).
    pub lib: String,
    /// Library version string.
    pub version: String,
    /// Function name (identical in every matching image: the content
    /// hash covers it).
    pub func: String,
    /// Function entry address (likewise hash-covered).
    pub entry: Address,
    /// Recorded roles.
    pub scripts: LibFuncScripts,
}

impl LibFunc {
    /// A short human-readable role summary for `libid inspect`.
    pub fn role_label(&self) -> String {
        let mut parts = Vec::new();
        if !self.scripts.params.is_empty() {
            let idxs: Vec<String> = self
                .scripts
                .params
                .iter()
                .map(|(i, _)| i.to_string())
                .collect();
            parts.push(format!("out-param({})", idxs.join(",")));
        }
        if self.scripts.returns.is_some() {
            parts.push("return".to_string());
        }
        if parts.is_empty() {
            parts.push("none".to_string());
        }
        parts.join("+")
    }
}

/// An in-memory known-library index: content hash → [`LibFunc`].
///
/// Construction computes a stable 64-bit fingerprint over the complete
/// semantic content; the analysis cache folds it into every key, so
/// swapping or editing an index can never serve stale results. The
/// fingerprint of the *absence* of an index is `0` (see
/// [`LibIndex::EMPTY_FINGERPRINT`]).
#[derive(Debug, Clone)]
pub struct LibIndex {
    entries: BTreeMap<u128, Arc<LibFunc>>,
    /// Highest data-segment base among the recording images: replay is
    /// sound only in images whose data segment starts at or above it
    /// (all recorded constants are below, so none can become a data
    /// pointer in the live image).
    const_ceiling: u64,
    fingerprint: u64,
}

impl LibIndex {
    /// The fingerprint of "no index" (and of `LibId::Off`).
    pub const EMPTY_FINGERPRINT: u64 = 0;

    /// Build an index from entries keyed by function content hash.
    pub fn new(entries: Vec<(u128, LibFunc)>, const_ceiling: u64) -> LibIndex {
        let entries: BTreeMap<u128, Arc<LibFunc>> =
            entries.into_iter().map(|(h, f)| (h, Arc::new(f))).collect();
        let fingerprint = fingerprint_of(&entries, const_ceiling);
        LibIndex {
            entries,
            const_ceiling,
            fingerprint,
        }
    }

    /// The entry for a function content hash.
    pub fn get(&self, hash: u128) -> Option<&Arc<LibFunc>> {
        self.entries.get(&hash)
    }

    /// All entries in hash order.
    pub fn iter(&self) -> impl Iterator<Item = (&u128, &Arc<LibFunc>)> {
        self.entries.iter()
    }

    /// Number of indexed functions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The recording images' highest data-segment base.
    pub fn const_ceiling(&self) -> u64 {
        self.const_ceiling
    }

    /// The content fingerprint (never [`LibIndex::EMPTY_FINGERPRINT`]
    /// for a constructed index — the hash seed guarantees it).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

/// FNV-1a 64 over a canonical walk of the index content. Hand-rolled
/// here (rather than reusing a codec rendering) so an index built in
/// memory and the same index round-tripped through a `.flix` file
/// fingerprint identically by construction.
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Fnv64 {
        Fnv64(0xCBF2_9CE4_8422_2325)
    }
    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
    }
    fn u8(&mut self, v: u8) {
        self.byte(v);
    }
    fn u32(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }
    fn u128(&mut self, v: u128) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }
    fn i64(&mut self, v: i64) {
        self.u64(v as u64);
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for b in s.bytes() {
            self.byte(b);
        }
    }
}

fn hash_varnode(h: &mut Fnv64, v: &Varnode) {
    h.u8(v.space as u8);
    h.u64(v.offset);
    h.u8(v.size);
}

fn hash_opref(h: &mut Fnv64, r: &OpRef) {
    h.u32(r.block.0);
    h.u64(r.index as u64);
}

fn hash_op(h: &mut Fnv64, op: &PcodeOp) {
    h.u64(op.addr);
    h.u8(op.opcode.tag());
    match &op.output {
        Some(v) => {
            h.u8(1);
            hash_varnode(h, v);
        }
        None => h.u8(0),
    }
    h.u64(op.inputs.len() as u64);
    for v in &op.inputs {
        hash_varnode(h, v);
    }
}

fn hash_source(h: &mut Fnv64, s: &FieldSource) {
    match s {
        FieldSource::StringConstant { addr, value } => {
            h.u8(0);
            h.u64(*addr);
            h.str(value);
        }
        FieldSource::NumericConstant { value } => {
            h.u8(1);
            h.u64(*value);
        }
        FieldSource::LibCall { kind, callee, key } => {
            h.u8(2);
            h.u8(*kind as u8);
            h.str(callee);
            match key {
                Some(k) => {
                    h.u8(1);
                    h.str(k);
                }
                None => h.u8(0),
            }
        }
        FieldSource::EntryParam { func, index } => {
            h.u8(3);
            h.str(func);
            h.u64(*index as u64);
        }
        FieldSource::Unresolved { reason } => {
            h.u8(4);
            h.str(reason);
        }
    }
}

fn hash_step(h: &mut Fnv64, step: &LibStep) {
    match step {
        LibStep::OpenValue {
            parent,
            at,
            v,
            depth,
        } => {
            h.u8(0);
            h.u32(*parent);
            hash_opref(h, at);
            hash_varnode(h, v);
            h.u32(*depth);
        }
        LibStep::OpenRegion {
            parent,
            region,
            before,
            depth,
        } => {
            h.u8(1);
            h.u32(*parent);
            match region {
                LibRegionKey::Stack(o) => {
                    h.u8(0);
                    h.i64(*o);
                }
                LibRegionKey::Alloc(a) => {
                    h.u8(1);
                    h.u64(*a);
                }
                LibRegionKey::PtrParam(i) => {
                    h.u8(2);
                    h.u32(*i);
                }
            }
            match before {
                Some(r) => {
                    h.u8(1);
                    hash_opref(h, r);
                }
                None => h.u8(0),
            }
            h.u32(*depth);
        }
        LibStep::Close => h.u8(2),
        LibStep::Transform { id, parent, op } => {
            h.u8(3);
            h.u32(*id);
            h.u32(*parent);
            hash_op(h, op);
        }
        LibStep::Write {
            id,
            parent,
            op,
            via,
        } => {
            h.u8(4);
            h.u32(*id);
            h.u32(*parent);
            hash_op(h, op);
            h.str(via);
        }
        LibStep::ThroughCall {
            id,
            parent,
            op,
            callee,
        } => {
            h.u8(5);
            h.u32(*id);
            h.u32(*parent);
            hash_op(h, op);
            h.str(callee);
        }
        LibStep::Leaf { parent, source } => {
            h.u8(6);
            h.u32(*parent);
            hash_source(h, source);
        }
        LibStep::Resume {
            id,
            parent,
            v,
            param,
            depth,
        } => {
            h.u8(7);
            h.u32(*id);
            h.u32(*parent);
            hash_varnode(h, v);
            h.u32(*param);
            h.u32(*depth);
        }
    }
}

fn hash_script(h: &mut Fnv64, s: &LibScript) {
    h.u64(s.steps.len() as u64);
    for step in &s.steps {
        hash_step(h, step);
    }
}

fn fingerprint_of(entries: &BTreeMap<u128, Arc<LibFunc>>, const_ceiling: u64) -> u64 {
    let mut h = Fnv64::new();
    h.str("flix-index");
    h.u64(const_ceiling);
    h.u64(entries.len() as u64);
    for (hash, f) in entries {
        h.u128(*hash);
        h.str(&f.lib);
        h.str(&f.version);
        h.str(&f.func);
        h.u64(f.entry);
        h.u64(f.scripts.params.len() as u64);
        for (i, s) in &f.scripts.params {
            h.u32(*i);
            hash_script(&mut h, s);
        }
        match &f.scripts.returns {
            Some(s) => {
                h.u8(1);
                hash_script(&mut h, s);
            }
            None => h.u8(0),
        }
    }
    // Reserve 0 for "no index": the sentinel the cache fingerprints
    // LibId::Off (or On with no index loaded) as.
    let fp = h.0;
    if fp == LibIndex::EMPTY_FINGERPRINT {
        1
    } else {
        fp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(lib: &str, func: &str) -> LibFunc {
        LibFunc {
            lib: lib.into(),
            version: "1.0".into(),
            func: func.into(),
            entry: 0x1_0000,
            scripts: LibFuncScripts {
                params: vec![(
                    0,
                    LibScript {
                        steps: vec![
                            LibStep::OpenRegion {
                                parent: 0,
                                region: LibRegionKey::PtrParam(0),
                                before: None,
                                depth: 0,
                            },
                            LibStep::Leaf {
                                parent: 0,
                                source: FieldSource::Unresolved {
                                    reason: "no writes to buffer",
                                },
                            },
                            LibStep::Close,
                        ],
                    },
                )],
                returns: None,
                rejected: Vec::new(),
            },
        }
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let a = LibIndex::new(vec![(7, entry("zutil", "z_pack"))], 0x40_0000);
        let b = LibIndex::new(vec![(7, entry("zutil", "z_pack"))], 0x40_0000);
        assert_eq!(a.fingerprint(), b.fingerprint(), "same content, same fp");
        assert_ne!(a.fingerprint(), LibIndex::EMPTY_FINGERPRINT);

        let renamed = LibIndex::new(vec![(7, entry("zutil", "z_unpack"))], 0x40_0000);
        assert_ne!(a.fingerprint(), renamed.fingerprint(), "content changes fp");
        let rekeyed = LibIndex::new(vec![(8, entry("zutil", "z_pack"))], 0x40_0000);
        assert_ne!(
            a.fingerprint(),
            rekeyed.fingerprint(),
            "hash key changes fp"
        );
        let refloored = LibIndex::new(vec![(7, entry("zutil", "z_pack"))], 0x41_0000);
        assert_ne!(a.fingerprint(), refloored.fingerprint());
    }

    #[test]
    fn role_labels_cover_both_roles() {
        let mut f = entry("zutil", "z_pack");
        assert_eq!(f.role_label(), "out-param(0)");
        f.scripts.returns = Some(LibScript::default());
        assert_eq!(f.role_label(), "out-param(0)+return");
        f.scripts.params.clear();
        assert_eq!(f.role_label(), "return");
        f.scripts.returns = None;
        assert_eq!(f.role_label(), "none");
    }
}
