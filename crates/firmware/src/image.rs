//! The firmware image container and its packed wire format.

use crate::{FileEntry, Nvram, ScriptLang};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use firmres_isa::Executable;
use std::collections::BTreeMap;
use std::fmt;

const MAGIC: &[u8; 4] = b"FWI1";
const VERSION: u16 = 1;

/// Coarse device category (paper Table I lists 7 types).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DeviceType {
    /// Industrial router.
    IndustrialRouter,
    /// Home Wi-Fi router.
    WifiRouter,
    /// 4G/LTE router.
    FourGRouter,
    /// Smart camera.
    SmartCamera,
    /// Smart plug.
    SmartPlug,
    /// Wireless access point.
    WirelessAccessPoint,
    /// Managed smart switch.
    SmartSwitch,
    /// Network-attached storage.
    Nas,
}

impl DeviceType {
    /// All device types, in a stable order.
    pub const ALL: [DeviceType; 8] = [
        DeviceType::IndustrialRouter,
        DeviceType::WifiRouter,
        DeviceType::FourGRouter,
        DeviceType::SmartCamera,
        DeviceType::SmartPlug,
        DeviceType::WirelessAccessPoint,
        DeviceType::SmartSwitch,
        DeviceType::Nas,
    ];

    fn tag(self) -> u8 {
        Self::ALL.iter().position(|t| *t == self).expect("in ALL") as u8
    }

    fn from_tag(t: u8) -> Option<Self> {
        Self::ALL.get(t as usize).copied()
    }

    /// Human-readable name as used in Table I.
    pub fn name(self) -> &'static str {
        match self {
            DeviceType::IndustrialRouter => "Industrial Router",
            DeviceType::WifiRouter => "Wi-Fi Router",
            DeviceType::FourGRouter => "4G Router",
            DeviceType::SmartCamera => "Smart Camera",
            DeviceType::SmartPlug => "Smart Plug",
            DeviceType::WirelessAccessPoint => "Wireless Access Point",
            DeviceType::SmartSwitch => "Smart Switch",
            DeviceType::Nas => "NAS",
        }
    }
}

impl fmt::Display for DeviceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Device metadata attached to a firmware image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceInfo {
    /// Vendor name.
    pub vendor: String,
    /// Model identifier.
    pub model: String,
    /// Device category.
    pub device_type: DeviceType,
    /// Firmware version string.
    pub firmware_version: String,
}

/// Errors from unpacking a firmware image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FirmwareError {
    /// Wrong magic bytes.
    BadMagic,
    /// Unsupported container version.
    UnsupportedVersion(u16),
    /// Image ended early.
    Truncated,
    /// Checksum mismatch (corrupted image).
    BadChecksum,
    /// Unknown file-entry kind tag.
    UnknownKind(u8),
    /// Text payload is not UTF-8.
    BadUtf8,
}

impl fmt::Display for FirmwareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FirmwareError::BadMagic => write!(f, "not a firmware image (bad magic)"),
            FirmwareError::UnsupportedVersion(v) => write!(f, "unsupported image version {v}"),
            FirmwareError::Truncated => write!(f, "truncated firmware image"),
            FirmwareError::BadChecksum => write!(f, "firmware image checksum mismatch"),
            FirmwareError::UnknownKind(k) => write!(f, "unknown file entry kind {k}"),
            FirmwareError::BadUtf8 => write!(f, "text payload is not valid UTF-8"),
        }
    }
}

impl std::error::Error for FirmwareError {}

/// Errors from [`FirmwareImage::load_executable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExeLoadError {
    /// No file exists at the requested path.
    NoSuchFile,
    /// A file exists at the path but is not an executable entry.
    NotAnExecutable,
    /// The entry is an executable but its MRE payload is malformed.
    Malformed(firmres_isa::ExeError),
}

impl fmt::Display for ExeLoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExeLoadError::NoSuchFile => write!(f, "no such file in image"),
            ExeLoadError::NotAnExecutable => write!(f, "not an executable"),
            ExeLoadError::Malformed(e) => write!(f, "malformed executable: {e}"),
        }
    }
}

impl std::error::Error for ExeLoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExeLoadError::Malformed(e) => Some(e),
            _ => None,
        }
    }
}

/// A firmware image: device metadata plus a typed root filesystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FirmwareImage {
    device: DeviceInfo,
    files: BTreeMap<String, FileEntry>,
}

impl FirmwareImage {
    /// An empty image for `device`.
    pub fn new(device: DeviceInfo) -> Self {
        FirmwareImage {
            device,
            files: BTreeMap::new(),
        }
    }

    /// Device metadata.
    pub fn device(&self) -> &DeviceInfo {
        &self.device
    }

    /// Add (or replace) a file at `path`.
    pub fn add_file(&mut self, path: impl Into<String>, entry: FileEntry) -> Option<FileEntry> {
        self.files.insert(path.into(), entry)
    }

    /// The entry at `path`, if present.
    pub fn file(&self, path: &str) -> Option<&FileEntry> {
        self.files.get(path)
    }

    /// Iterate over `(path, entry)` in path order.
    pub fn files(&self) -> impl Iterator<Item = (&str, &FileEntry)> {
        self.files.iter().map(|(p, e)| (p.as_str(), e))
    }

    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Iterate over executable entries as `(path, raw MRE bytes)`.
    pub fn executables(&self) -> impl Iterator<Item = (&str, &[u8])> {
        self.files().filter_map(|(p, e)| match e {
            FileEntry::Executable(bytes) => Some((p, bytes.as_slice())),
            _ => None,
        })
    }

    /// Iterate over script entries as `(path, lang, text)`.
    pub fn scripts(&self) -> impl Iterator<Item = (&str, ScriptLang, &str)> {
        self.files().filter_map(|(p, e)| match e {
            FileEntry::Script { lang, text } => Some((p, *lang, text.as_str())),
            _ => None,
        })
    }

    /// Parse the executable at `path`.
    ///
    /// # Errors
    ///
    /// [`ExeLoadError::NoSuchFile`] when `path` is absent,
    /// [`ExeLoadError::NotAnExecutable`] when it names a non-executable
    /// entry, and [`ExeLoadError::Malformed`] when the MRE payload
    /// fails to parse.
    pub fn load_executable(&self, path: &str) -> Result<Executable, ExeLoadError> {
        match self.files.get(path) {
            None => Err(ExeLoadError::NoSuchFile),
            Some(FileEntry::Executable(bytes)) => {
                Executable::from_bytes(bytes).map_err(ExeLoadError::Malformed)
            }
            Some(_) => Err(ExeLoadError::NotAnExecutable),
        }
    }

    /// The merged NVRAM view over all `NvramDefaults` entries.
    pub fn nvram(&self) -> Nvram {
        let mut nv = Nvram::new();
        for (_, e) in self.files() {
            if let FileEntry::NvramDefaults(part) = e {
                nv.extend(part.iter().map(|(k, v)| (k.to_string(), v.to_string())));
            }
        }
        nv
    }

    /// Look up `key` across every config file (`key=value` lines), first
    /// match in path order.
    pub fn config_value(&self, key: &str) -> Option<String> {
        for (_, e) in self.files() {
            if let FileEntry::Config(text) = e {
                let nv = Nvram::parse(text);
                if let Some(v) = nv.get(key) {
                    return Some(v.to_string());
                }
            }
        }
        None
    }

    /// Serialize to the packed wire format.
    pub fn pack(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u16_le(VERSION);
        put_str(&mut buf, &self.device.vendor);
        put_str(&mut buf, &self.device.model);
        buf.put_u8(self.device.device_type.tag());
        put_str(&mut buf, &self.device.firmware_version);
        buf.put_u32_le(self.files.len() as u32);
        for (path, entry) in &self.files {
            put_str(&mut buf, path);
            match entry {
                FileEntry::Executable(b) => {
                    buf.put_u8(0);
                    buf.put_u32_le(b.len() as u32);
                    buf.put_slice(b);
                }
                FileEntry::Script { lang, text } => {
                    buf.put_u8(1);
                    buf.put_u8(lang.tag());
                    buf.put_u32_le(text.len() as u32);
                    buf.put_slice(text.as_bytes());
                }
                FileEntry::Config(text) => {
                    buf.put_u8(2);
                    buf.put_u32_le(text.len() as u32);
                    buf.put_slice(text.as_bytes());
                }
                FileEntry::NvramDefaults(nv) => {
                    let text = nv.to_text();
                    buf.put_u8(3);
                    buf.put_u32_le(text.len() as u32);
                    buf.put_slice(text.as_bytes());
                }
                FileEntry::Cert(text) => {
                    buf.put_u8(4);
                    buf.put_u32_le(text.len() as u32);
                    buf.put_slice(text.as_bytes());
                }
                FileEntry::Data(b) => {
                    buf.put_u8(5);
                    buf.put_u32_le(b.len() as u32);
                    buf.put_slice(b);
                }
            }
        }
        let csum = fnv32(&buf);
        buf.put_u32_le(csum);
        buf.freeze()
    }

    /// A stable 64-bit content hash of the image: the FNV-1a digest of
    /// the packed wire format.
    ///
    /// Because [`pack`](FirmwareImage::pack) is deterministic (files are
    /// stored in path order), two images hash equal exactly when their
    /// device metadata and file contents are identical — the property the
    /// content-addressed analysis cache keys on. Any one-byte change to
    /// any file flips the hash.
    pub fn content_hash(&self) -> u64 {
        content_hash_packed(&self.pack())
    }

    /// Parse a packed image.
    ///
    /// # Errors
    ///
    /// Returns a [`FirmwareError`] on bad magic/version, truncation,
    /// checksum mismatch, unknown entry kinds, or non-UTF-8 text payloads.
    pub fn unpack(image: &[u8]) -> Result<FirmwareImage, FirmwareError> {
        if image.len() < 10 {
            return Err(FirmwareError::Truncated);
        }
        if &image[..4] != MAGIC {
            return Err(FirmwareError::BadMagic);
        }
        let (payload, csum_bytes) = image.split_at(image.len() - 4);
        let stored = u32::from_le_bytes(csum_bytes.try_into().expect("4 bytes"));
        if stored != fnv32(payload) {
            return Err(FirmwareError::BadChecksum);
        }
        let mut buf = Bytes::copy_from_slice(&payload[4..]);
        let version = buf.get_u16_le();
        if version != VERSION {
            return Err(FirmwareError::UnsupportedVersion(version));
        }
        let vendor = get_str(&mut buf)?;
        let model = get_str(&mut buf)?;
        if buf.remaining() < 1 {
            return Err(FirmwareError::Truncated);
        }
        let device_type =
            DeviceType::from_tag(buf.get_u8()).ok_or(FirmwareError::UnknownKind(255))?;
        let firmware_version = get_str(&mut buf)?;
        if buf.remaining() < 4 {
            return Err(FirmwareError::Truncated);
        }
        let nfiles = buf.get_u32_le() as usize;
        let mut files = BTreeMap::new();
        for _ in 0..nfiles {
            let path = get_str(&mut buf)?;
            if buf.remaining() < 1 {
                return Err(FirmwareError::Truncated);
            }
            let kind = buf.get_u8();
            let entry = match kind {
                0 => FileEntry::Executable(get_blob(&mut buf)?),
                1 => {
                    if buf.remaining() < 1 {
                        return Err(FirmwareError::Truncated);
                    }
                    let lang = ScriptLang::from_tag(buf.get_u8())
                        .ok_or(FirmwareError::UnknownKind(254))?;
                    FileEntry::Script {
                        lang,
                        text: get_text(&mut buf)?,
                    }
                }
                2 => FileEntry::Config(get_text(&mut buf)?),
                3 => FileEntry::NvramDefaults(Nvram::parse(&get_text(&mut buf)?)),
                4 => FileEntry::Cert(get_text(&mut buf)?),
                5 => FileEntry::Data(get_blob(&mut buf)?),
                k => return Err(FirmwareError::UnknownKind(k)),
            };
            files.insert(path, entry);
        }
        Ok(FirmwareImage {
            device: DeviceInfo {
                vendor,
                model,
                device_type,
                firmware_version,
            },
            files,
        })
    }
}

/// Split `packed` into full little-endian words plus a zero-padded tail
/// word (`None` when the length is a multiple of eight).
fn fold_words(packed: &[u8]) -> (std::slice::ChunksExact<'_, u8>, Option<u64>) {
    let chunks = packed.chunks_exact(8);
    let rem = chunks.remainder();
    let tail = (!rem.is_empty()).then(|| {
        let mut w = [0u8; 8];
        w[..rem.len()].copy_from_slice(rem);
        u64::from_le_bytes(w)
    });
    (chunks, tail)
}

/// [`FirmwareImage::content_hash`] over already-packed container bytes,
/// without unpacking them first — corpus drivers hash images straight
/// off disk before deciding whether an analysis is cached.
///
/// FNV-1a folded over 64-bit words rather than bytes: this digest seals
/// and verifies every cache artifact, so the serial multiply chain is
/// hot. The tail is zero-padded into a final word and the total length
/// is folded last, keeping inputs that differ only in trailing zero
/// bytes apart.
pub fn content_hash_packed(packed: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let (chunks, tail) = fold_words(packed);
    for c in chunks {
        h ^= u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        h = h.wrapping_mul(PRIME);
    }
    if let Some(w) = tail {
        h ^= w;
        h = h.wrapping_mul(PRIME);
    }
    (h ^ packed.len() as u64).wrapping_mul(PRIME)
}

/// 128-bit digest of already-packed container bytes (word-folded FNV-1a,
/// same construction as [`content_hash_packed`]).
///
/// The analysis cache keys firmware *identity* on this wider digest: at
/// 64 bits, a corpus of a few hundred million images has a
/// non-negligible birthday-collision probability, and a colliding pair
/// would silently share one cache entry. 128 bits pushes accidental
/// collisions out of reach for any realistic corpus. FNV is still not
/// cryptographic — an adversary who controls firmware bytes can craft
/// collisions — so the cache must not be trusted across a privilege
/// boundary (see DESIGN.md §7 for the threat-model tradeoff).
pub fn content_hash_packed_wide(packed: &[u8]) -> u128 {
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut h: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    let (chunks, tail) = fold_words(packed);
    for c in chunks {
        h ^= u64::from_le_bytes(c.try_into().expect("8-byte chunk")) as u128;
        h = h.wrapping_mul(PRIME);
    }
    if let Some(w) = tail {
        h ^= w as u128;
        h = h.wrapping_mul(PRIME);
    }
    (h ^ packed.len() as u128).wrapping_mul(PRIME)
}

fn fnv32(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u16_le(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String, FirmwareError> {
    if buf.remaining() < 2 {
        return Err(FirmwareError::Truncated);
    }
    let len = buf.get_u16_le() as usize;
    if buf.remaining() < len {
        return Err(FirmwareError::Truncated);
    }
    String::from_utf8(buf.copy_to_bytes(len).to_vec()).map_err(|_| FirmwareError::BadUtf8)
}

fn get_blob(buf: &mut Bytes) -> Result<Vec<u8>, FirmwareError> {
    if buf.remaining() < 4 {
        return Err(FirmwareError::Truncated);
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(FirmwareError::Truncated);
    }
    Ok(buf.copy_to_bytes(len).to_vec())
}

fn get_text(buf: &mut Bytes) -> Result<String, FirmwareError> {
    String::from_utf8(get_blob(buf)?).map_err(|_| FirmwareError::BadUtf8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmres_isa::Assembler;

    fn sample() -> FirmwareImage {
        let mut fw = FirmwareImage::new(DeviceInfo {
            vendor: "Teltonika".into(),
            model: "RUT241".into(),
            device_type: DeviceType::FourGRouter,
            firmware_version: "RUT2M_R_00.07.01.3".into(),
        });
        let exe = Assembler::new()
            .assemble(".func main\n callx SSL_write\n ret\n.endfunc\n")
            .unwrap();
        fw.add_file(
            "/usr/bin/rms_connect",
            FileEntry::Executable(exe.to_bytes().to_vec()),
        );
        fw.add_file(
            "/etc/config/cloud",
            FileEntry::Config("server=rms.example.com\nport=443\n".into()),
        );
        let mut nv = Nvram::new();
        nv.set("mac", "00:1E:42:13:37:00");
        nv.set("serial", "1108882866");
        fw.add_file("/etc/nvram.default", FileEntry::NvramDefaults(nv));
        fw.add_file(
            "/www/cgi/upload.php",
            FileEntry::Script {
                lang: ScriptLang::Php,
                text: "<?php upload(); ?>".into(),
            },
        );
        fw.add_file(
            "/etc/ssl/device.pem",
            FileEntry::Cert("-----BEGIN-----".into()),
        );
        fw
    }

    #[test]
    fn pack_unpack_round_trip() {
        let fw = sample();
        let packed = fw.pack();
        let back = FirmwareImage::unpack(&packed).unwrap();
        assert_eq!(back, fw);
    }

    #[test]
    fn typed_accessors() {
        let fw = sample();
        assert_eq!(fw.file_count(), 5);
        assert_eq!(fw.executables().count(), 1);
        assert_eq!(fw.scripts().count(), 1);
        let (path, lang, _) = fw.scripts().next().unwrap();
        assert_eq!(path, "/www/cgi/upload.php");
        assert_eq!(lang, ScriptLang::Php);
        assert_eq!(fw.nvram().get("mac"), Some("00:1E:42:13:37:00"));
        assert_eq!(
            fw.config_value("server"),
            Some("rms.example.com".to_string())
        );
        assert_eq!(fw.config_value("missing"), None);
    }

    #[test]
    fn load_executable_parses_mre() {
        let fw = sample();
        let exe = fw.load_executable("/usr/bin/rms_connect").unwrap();
        assert_eq!(exe.imports, vec!["SSL_write".to_string()]);
        assert_eq!(
            fw.load_executable("/etc/config/cloud").unwrap_err(),
            ExeLoadError::NotAnExecutable
        );
        assert_eq!(
            fw.load_executable("/nope").unwrap_err(),
            ExeLoadError::NoSuchFile
        );
    }

    #[test]
    fn corrupted_mre_payload_surfaces_error() {
        let mut fw = sample();
        if let Some(FileEntry::Executable(bytes)) = fw.files.get_mut("/usr/bin/rms_connect") {
            bytes[10] ^= 0xFF;
        }
        let res = fw.load_executable("/usr/bin/rms_connect");
        assert!(matches!(res, Err(ExeLoadError::Malformed(_))), "{res:?}");
    }

    #[test]
    fn unpack_rejects_corruption() {
        let fw = sample();
        let packed = fw.pack();
        let mut bad = packed.to_vec();
        bad[20] ^= 1;
        assert_eq!(FirmwareImage::unpack(&bad), Err(FirmwareError::BadChecksum));
        let mut nomagic = packed.to_vec();
        nomagic[0] = b'Z';
        assert_eq!(
            FirmwareImage::unpack(&nomagic),
            Err(FirmwareError::BadMagic)
        );
        assert_eq!(
            FirmwareImage::unpack(&packed[..5]),
            Err(FirmwareError::Truncated)
        );
    }

    #[test]
    fn content_hash_is_stable_and_content_sensitive() {
        let fw = sample();
        let h = fw.content_hash();
        assert_eq!(h, fw.content_hash(), "deterministic");
        assert_eq!(h, content_hash_packed(&fw.pack()), "packed form agrees");
        let mut changed = fw.clone();
        changed.add_file("/etc/ssl/device.pem", FileEntry::Cert("x".into()));
        assert_ne!(h, changed.content_hash(), "one file change flips the hash");
        // A single flipped byte in the packed bytes also flips it.
        let mut bad = fw.pack().to_vec();
        bad[20] ^= 1;
        assert_ne!(h, content_hash_packed(&bad));
    }

    #[test]
    fn wide_content_hash_is_stable_and_content_sensitive() {
        let fw = sample();
        let packed = fw.pack();
        let h = content_hash_packed_wide(&packed);
        assert_eq!(h, content_hash_packed_wide(&packed), "deterministic");
        assert!(h > u64::MAX as u128, "uses the upper 64 bits for real data");
        let mut bad = packed.to_vec();
        bad[20] ^= 1;
        assert_ne!(h, content_hash_packed_wide(&bad));
    }

    #[test]
    fn device_type_tags_round_trip() {
        for t in DeviceType::ALL {
            assert_eq!(DeviceType::from_tag(t.tag()), Some(t));
            assert!(!t.name().is_empty());
        }
        assert_eq!(DeviceType::from_tag(99), None);
    }

    #[test]
    fn add_file_replaces() {
        let mut fw = sample();
        let old = fw.add_file("/etc/ssl/device.pem", FileEntry::Cert("new".into()));
        assert_eq!(old, Some(FileEntry::Cert("-----BEGIN-----".into())));
        assert_eq!(
            fw.file("/etc/ssl/device.pem"),
            Some(&FileEntry::Cert("new".into()))
        );
    }
}
