//! NVRAM default-value store.
//!
//! Real devices keep networking and identity parameters (MAC address,
//! serial number, cloud host, …) in NVRAM; FIRMRES treats NVRAM reads as
//! message-field sources. This module models the default NVRAM contents
//! shipped in a firmware image.

use std::collections::BTreeMap;
use std::fmt;

/// A key/value NVRAM store with `key=value` text (de)serialization.
///
/// # Examples
///
/// ```
/// use firmres_firmware::Nvram;
///
/// let mut nv = Nvram::new();
/// nv.set("wan_hostname", "router");
/// nv.set("cloud_server", "iot.example.com");
/// let text = nv.to_text();
/// let back = Nvram::parse(&text);
/// assert_eq!(back.get("cloud_server"), Some("iot.example.com"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Nvram {
    values: BTreeMap<String, String>,
}

impl Nvram {
    /// An empty store.
    pub fn new() -> Self {
        Nvram::default()
    }

    /// Set `key` to `value`, returning the previous value if present.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<String>) -> Option<String> {
        self.values.insert(key.into(), value.into())
    }

    /// The value of `key`, if set.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Remove `key`, returning its value.
    pub fn remove(&mut self, key: &str) -> Option<String> {
        self.values.remove(key)
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterate over `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Parse `key=value` lines; blank lines and `#` comments are skipped,
    /// malformed lines (no `=`) are ignored, later duplicates win.
    pub fn parse(text: &str) -> Nvram {
        let mut nv = Nvram::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some((k, v)) = line.split_once('=') {
                nv.set(k.trim(), v.trim());
            }
        }
        nv
    }

    /// Serialize to `key=value` lines in key order.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.values {
            out.push_str(k);
            out.push('=');
            out.push_str(v);
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Nvram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

impl FromIterator<(String, String)> for Nvram {
    fn from_iter<I: IntoIterator<Item = (String, String)>>(iter: I) -> Self {
        Nvram {
            values: iter.into_iter().collect(),
        }
    }
}

impl Extend<(String, String)> for Nvram {
    fn extend<I: IntoIterator<Item = (String, String)>>(&mut self, iter: I) {
        self.values.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_remove() {
        let mut nv = Nvram::new();
        assert!(nv.is_empty());
        assert_eq!(nv.set("mac", "AA:BB"), None);
        assert_eq!(nv.set("mac", "CC:DD"), Some("AA:BB".to_string()));
        assert_eq!(nv.get("mac"), Some("CC:DD"));
        assert_eq!(nv.remove("mac"), Some("CC:DD".to_string()));
        assert_eq!(nv.get("mac"), None);
    }

    #[test]
    fn parse_skips_comments_and_junk() {
        let nv = Nvram::parse("# comment\n\nmac=AA\nbroken line\nhost = h.example \n");
        assert_eq!(nv.len(), 2);
        assert_eq!(nv.get("mac"), Some("AA"));
        assert_eq!(nv.get("host"), Some("h.example"));
    }

    #[test]
    fn parse_last_duplicate_wins() {
        let nv = Nvram::parse("k=1\nk=2\n");
        assert_eq!(nv.get("k"), Some("2"));
    }

    #[test]
    fn text_round_trip() {
        let mut nv = Nvram::new();
        nv.set("b", "2");
        nv.set("a", "1");
        assert_eq!(nv.to_text(), "a=1\nb=2\n");
        assert_eq!(Nvram::parse(&nv.to_text()), nv);
    }

    #[test]
    fn collect_and_extend() {
        let nv: Nvram = vec![("a".to_string(), "1".to_string())]
            .into_iter()
            .collect();
        assert_eq!(nv.get("a"), Some("1"));
        let mut nv2 = nv.clone();
        nv2.extend(vec![("b".to_string(), "2".to_string())]);
        assert_eq!(nv2.len(), 2);
    }
}
