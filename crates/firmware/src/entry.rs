//! Typed filesystem entries inside a firmware image.

use crate::Nvram;
use std::fmt;

/// Interpreter language of a script file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScriptLang {
    /// POSIX shell.
    Shell,
    /// PHP.
    Php,
    /// Lua.
    Lua,
}

impl ScriptLang {
    /// Wire tag for serialization.
    pub(crate) fn tag(self) -> u8 {
        match self {
            ScriptLang::Shell => 0,
            ScriptLang::Php => 1,
            ScriptLang::Lua => 2,
        }
    }

    pub(crate) fn from_tag(t: u8) -> Option<Self> {
        match t {
            0 => Some(ScriptLang::Shell),
            1 => Some(ScriptLang::Php),
            2 => Some(ScriptLang::Lua),
            _ => None,
        }
    }
}

impl fmt::Display for ScriptLang {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ScriptLang::Shell => "shell",
            ScriptLang::Php => "php",
            ScriptLang::Lua => "lua",
        })
    }
}

/// One file in a firmware image's root filesystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileEntry {
    /// An MR32 executable in the MRE container format (raw bytes; parse
    /// with [`firmres_isa::Executable::from_bytes`]).
    Executable(Vec<u8>),
    /// An interpreted script. FIRMRES only analyzes binaries, so
    /// script-handled device-cloud logic is reported as out of scope —
    /// reproducing the paper's result for devices 21 and 22.
    Script {
        /// Script language.
        lang: ScriptLang,
        /// Script source text.
        text: String,
    },
    /// A `key=value` configuration file.
    Config(String),
    /// NVRAM default values.
    NvramDefaults(Nvram),
    /// A certificate or key in PEM-ish text form.
    Cert(String),
    /// Uninterpreted data.
    Data(Vec<u8>),
}

impl FileEntry {
    /// Short human-readable kind name.
    pub fn kind(&self) -> &'static str {
        match self {
            FileEntry::Executable(_) => "executable",
            FileEntry::Script { .. } => "script",
            FileEntry::Config(_) => "config",
            FileEntry::NvramDefaults(_) => "nvram",
            FileEntry::Cert(_) => "cert",
            FileEntry::Data(_) => "data",
        }
    }

    /// Payload size in bytes as stored.
    pub fn size(&self) -> usize {
        match self {
            FileEntry::Executable(b) | FileEntry::Data(b) => b.len(),
            FileEntry::Script { text, .. } | FileEntry::Config(text) | FileEntry::Cert(text) => {
                text.len()
            }
            FileEntry::NvramDefaults(nv) => nv.to_text().len(),
        }
    }

    /// Whether this entry is an executable.
    pub fn is_executable(&self) -> bool {
        matches!(self, FileEntry::Executable(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_sizes() {
        assert_eq!(FileEntry::Executable(vec![1, 2, 3]).kind(), "executable");
        assert_eq!(FileEntry::Executable(vec![1, 2, 3]).size(), 3);
        let s = FileEntry::Script {
            lang: ScriptLang::Php,
            text: "<?php".into(),
        };
        assert_eq!(s.kind(), "script");
        assert_eq!(s.size(), 5);
        assert!(!s.is_executable());
        assert!(FileEntry::Executable(vec![]).is_executable());
        let mut nv = Nvram::new();
        nv.set("a", "b");
        assert_eq!(FileEntry::NvramDefaults(nv).size(), 4);
    }

    #[test]
    fn script_lang_tags_round_trip() {
        for lang in [ScriptLang::Shell, ScriptLang::Php, ScriptLang::Lua] {
            assert_eq!(ScriptLang::from_tag(lang.tag()), Some(lang));
        }
        assert_eq!(ScriptLang::from_tag(99), None);
    }

    #[test]
    fn lang_display() {
        assert_eq!(ScriptLang::Shell.to_string(), "shell");
        assert_eq!(ScriptLang::Php.to_string(), "php");
    }
}
