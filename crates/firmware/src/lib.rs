//! # firmres-firmware
//!
//! Firmware image model: the unit of input to FIRMRES.
//!
//! A [`FirmwareImage`] is a packed root filesystem plus device metadata —
//! what you get after unpacking a vendor firmware blob. Files are typed
//! ([`FileEntry`]): MR32 executables in the MRE format, shell/PHP scripts
//! (present so the paper's negative result for devices 21–22 reproduces),
//! key/value configuration files, NVRAM default sets, and certificates.
//!
//! The container serializes to a checksummed binary format so the pipeline
//! exercises real unpacking paths, including corruption handling.
//!
//! # Examples
//!
//! ```
//! use firmres_firmware::{DeviceInfo, DeviceType, FileEntry, FirmwareImage};
//!
//! let mut fw = FirmwareImage::new(DeviceInfo {
//!     vendor: "TENDA".into(),
//!     model: "AC6".into(),
//!     device_type: DeviceType::WifiRouter,
//!     firmware_version: "V02.03.01.114".into(),
//! });
//! fw.add_file("/etc/config/cloud.conf", FileEntry::Config("server=cloud.example\n".into()));
//! let packed = fw.pack();
//! let back = FirmwareImage::unpack(&packed)?;
//! assert_eq!(back.device().vendor, "TENDA");
//! # Ok::<(), firmres_firmware::FirmwareError>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod entry;
mod image;
mod nvram;

pub use entry::{FileEntry, ScriptLang};
pub use image::{
    content_hash_packed, content_hash_packed_wide, DeviceInfo, DeviceType, ExeLoadError,
    FirmwareError, FirmwareImage,
};
pub use nvram::Nvram;
