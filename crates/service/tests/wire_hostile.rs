//! Hostile-input properties of the service wire codec, in the style of
//! the cache's hostile-MFT suite: decoding arbitrary, truncated or
//! bit-flipped frames must return an error or a valid message — never
//! panic — and the frame-length cap must hold against any prefix.

use firmres_service::wire::{read_frame, write_frame, Request, Response, WireError, MAX_FRAME};
use firmres_service::{SubmitImage, PROTOCOL_VERSION};
use proptest::prelude::*;

proptest! {
    /// Arbitrary bytes never panic the request decoder, and whatever
    /// does decode re-encodes to the exact same bytes (the codec has
    /// one canonical form).
    #[test]
    fn arbitrary_request_bodies_never_panic(body in proptest::collection::vec(any::<u8>(), 0..256)) {
        if let Ok(req) = Request::decode(&body) {
            prop_assert_eq!(req.encode(), body);
        }
    }

    /// Same for the response decoder.
    #[test]
    fn arbitrary_response_bodies_never_panic(body in proptest::collection::vec(any::<u8>(), 0..256)) {
        if let Ok(resp) = Response::decode(&body) {
            prop_assert_eq!(resp.encode(), body);
        }
    }

    /// Every truncation of a valid request fails to decode (the grammar
    /// has no message that is a strict prefix of another), and never
    /// panics.
    #[test]
    fn truncated_requests_error_cleanly(
        image in proptest::collection::vec(any::<u8>(), 0..64),
        want_events in any::<bool>(),
        deadline_ms in any::<u64>(),
    ) {
        let full = Request::Submit {
            image: SubmitImage::Bytes(image),
            config: firmres::AnalysisConfig::default(),
            want_events,
            deadline_ms,
        }
        .encode();
        for cut in 0..full.len() {
            prop_assert!(Request::decode(&full[..cut]).is_err(),
                "prefix of {cut}/{} bytes decoded", full.len());
        }
    }

    /// A single flipped byte either fails to decode or decodes to a
    /// message that re-encodes canonically — corruption cannot produce
    /// a frame the codec itself would not emit.
    #[test]
    fn bit_flipped_responses_stay_canonical(
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        pos_seed in any::<u64>(),
        flip in 1u8..255,
    ) {
        let mut body = Response::Analysis { job_id: 7, from_cache: true, payload }.encode();
        let pos = (pos_seed % body.len() as u64) as usize;
        body[pos] ^= flip;
        if let Ok(resp) = Response::decode(&body) {
            prop_assert_eq!(resp.encode(), body);
        }
    }

    /// Appending garbage to a valid message is always rejected: a frame
    /// body must be exactly one message.
    #[test]
    fn trailing_garbage_is_always_rejected(tail in proptest::collection::vec(any::<u8>(), 1..32)) {
        let mut body = Request::Hello { version: PROTOCOL_VERSION }.encode();
        body.extend_from_slice(&tail);
        prop_assert!(Request::decode(&body).is_err());
    }

    /// Any length prefix above MAX_FRAME is refused before the body is
    /// read or allocated.
    #[test]
    fn oversized_length_prefixes_are_refused(extra in 1u32..(u32::MAX - MAX_FRAME as u32)) {
        let declared = MAX_FRAME as u32 + extra;
        let mut stream: &[u8] = &declared.to_le_bytes();
        prop_assert_eq!(
            read_frame(&mut stream),
            Err(WireError::FrameTooLarge { len: declared as u64 })
        );
    }

    /// Frame IO round-trips any in-cap body through a byte stream.
    #[test]
    fn frame_io_round_trips(body in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &body).expect("in-cap frame writes");
        let mut stream = &buf[..];
        prop_assert_eq!(read_frame(&mut stream), Ok(body));
        prop_assert_eq!(read_frame(&mut stream), Err(WireError::ConnectionClosed));
    }
}
