//! End-to-end exercise of the [`firmres_service::load`] driver against
//! an in-process daemon: mixed bytes/hash traffic completes cleanly,
//! and an under-provisioned server produces QueueFull rejections that
//! are *tallied*, never surfaced as errors.

use firmres_firmware::content_hash_packed_wide;
use firmres_service::{run_load, LoadConfig, Server, ServerConfig, SubmitImage};
use std::path::PathBuf;

fn temp_cache(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("firmres-load-driver-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn mixed_bytes_and_hash_traffic_completes() {
    let cache_dir = temp_cache("mixed");
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            cache_dir: Some(cache_dir.clone()),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run());

    // Two small devices; prime by bytes so hash submits can hit.
    let images: Vec<Vec<u8>> = (0..2u32)
        .map(|i| firmres_corpus::synth_device(i, 3).packed)
        .collect();
    let prime: Vec<SubmitImage> = images
        .iter()
        .map(|b| SubmitImage::Bytes(b.clone()))
        .collect();
    let cfg = LoadConfig {
        connections: 2,
        requests: 2,
        ..LoadConfig::default()
    };
    let report = run_load(addr, &prime, &cfg).unwrap();
    assert_eq!(report.completed, 2, "prime failed: {report:?}");

    // Warm phase: alternate bytes and hash, open loop at a high rate so
    // the scheduler path is exercised without slowing the test.
    let mut items = Vec::new();
    for b in &images {
        items.push(SubmitImage::Bytes(b.clone()));
        items.push(SubmitImage::Hash(content_hash_packed_wide(b)));
    }
    let cfg = LoadConfig {
        connections: 4,
        rate: 2000.0,
        requests: 32,
        ..LoadConfig::default()
    };
    let report = run_load(addr, &items, &cfg).unwrap();
    assert_eq!(report.submitted, 32);
    assert_eq!(report.completed, 32, "warm run had failures: {report:?}");
    assert_eq!(report.wire_errors + report.protocol_errors, 0);
    assert_eq!(report.from_cache, 32, "all warm submits should hit cache");
    assert_eq!(report.latency.count(), 32);
    assert!(report.latency.value_at(0.5) <= report.latency.value_at(0.99));
    assert!(report.throughput() > 0.0);

    let mut client = firmres_service::Client::connect(addr).unwrap();
    client.drain().unwrap();
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn saturation_is_counted_not_errored() {
    // No cache (every submit queues) and one worker behind a 2-deep
    // queue, hammered closed-loop by 8 connections: at any instant up
    // to 8 submits race for 3 seats (1 running + 2 queued), so QueueFull
    // rejections are guaranteed while every accepted job still finishes.
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            queue_cap: 2,
            conn_inflight_cap: 64,
            retry_after_ms: 17,
            cache_dir: None,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.run());

    let image = firmres_corpus::synth_device(0, 5).packed;
    let items = [SubmitImage::Bytes(image)];
    let cfg = LoadConfig {
        connections: 8,
        requests: 48,
        ..LoadConfig::default()
    };
    let report = run_load(addr, &items, &cfg).unwrap();
    assert_eq!(report.submitted, 48);
    assert_eq!(
        report.wire_errors + report.protocol_errors,
        0,
        "rejections must not surface as errors: {report:?}"
    );
    assert!(
        report.rejected_queue_full > 0,
        "expected QueueFull under 8-way hammering: {report:?}"
    );
    assert!(
        report.completed > 0,
        "accepted jobs must finish: {report:?}"
    );
    assert_eq!(report.retry_after_ms_max, 17, "hint not propagated");
    assert_eq!(report.from_cache, 0, "server has no cache");

    // The closed loop always honors the back-off hint: every QueueFull
    // was answered with a jittered sleep in [retry/2, retry].
    assert_eq!(
        report.backoff_waits, report.rejected_queue_full,
        "closed loop must back off on every QueueFull: {report:?}"
    );
    assert!(report.backoff_ms_total >= report.backoff_waits * (17 / 2));
    assert!(report.backoff_ms_total <= report.backoff_waits * 17);

    // Outcome accounting is total: every submit landed somewhere.
    assert_eq!(
        report.completed
            + report.rejected_queue_full
            + report.rejected_other
            + report.cancelled
            + report.wire_errors
            + report.protocol_errors,
        48
    );

    let mut client = firmres_service::Client::connect(addr).unwrap();
    client.drain().unwrap();
    handle.join().unwrap();
}
