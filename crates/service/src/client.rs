//! Blocking client for the FIRMRES analysis daemon.
//!
//! [`Client::connect`] performs the version handshake; [`Client::submit`]
//! drives one job to its terminal frame, buffering streamed events and
//! decoding the served analysis through the same FRAC codec the cache
//! uses — so [`Served::payload`] can be compared byte-for-byte against
//! a local `put_analysis` of the same image.

use crate::wire::{
    read_response, send_request, JobState, RejectReason, Request, Response, ServiceStatus,
    SubmitImage, WireError, PROTOCOL_VERSION,
};
use firmres::{AnalysisConfig, Event, FirmwareAnalysis};
use firmres_cache::codec::{get_analysis, Reader};
use std::fmt;
use std::net::{TcpStream, ToSocketAddrs};

/// Why a client call failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// The socket or codec failed.
    Wire(WireError),
    /// The server refused the request with a structured reason.
    Rejected(RejectReason),
    /// The job was accepted but cancelled before completing (explicitly
    /// or by its deadline).
    Cancelled {
        /// The cancelled job.
        job_id: u64,
        /// The server's stated cause.
        reason: String,
    },
    /// The server answered out of protocol (unexpected frame order).
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Rejected(reason) => write!(f, "rejected: {reason}"),
            ClientError::Cancelled { job_id, reason } => {
                write!(f, "job {job_id} cancelled: {reason}")
            }
            ClientError::Protocol(detail) => write!(f, "protocol violation: {detail}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// One successfully served analysis.
#[derive(Debug)]
pub struct Served {
    /// The server-assigned job id.
    pub job_id: u64,
    /// Whether the server answered from its analysis cache without
    /// running the pipeline.
    pub from_cache: bool,
    /// The raw FRAC-codec analysis bytes as shipped — compare these
    /// against a local [`put_analysis`] for the byte-identity check.
    ///
    /// [`put_analysis`]: firmres_cache::codec::put_analysis
    pub payload: Vec<u8>,
    /// The decoded analysis.
    pub analysis: FirmwareAnalysis,
    /// Streamed pipeline events, in emission order (empty unless the
    /// submit asked for them; always empty for cache hits).
    pub events: Vec<Event>,
}

/// A blocking connection to a running daemon.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect and complete the version handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let mut stream = TcpStream::connect(addr)
            .map_err(|e| ClientError::Wire(WireError::Io(e.to_string())))?;
        // Request/response frames are small; Nagle would serialize the
        // whole protocol onto delayed-ACK boundaries.
        let _ = stream.set_nodelay(true);
        send_request(
            &mut stream,
            &Request::Hello {
                version: PROTOCOL_VERSION,
            },
        )?;
        match read_response(&mut stream)? {
            Response::HelloOk { .. } => Ok(Client { stream }),
            Response::Rejected { reason } => Err(ClientError::Rejected(reason)),
            other => Err(ClientError::Protocol(format!(
                "expected HelloOk, got {other:?}"
            ))),
        }
    }

    /// Submit one image and block until its terminal frame.
    ///
    /// `deadline_ms` of `0` means no deadline. With `want_events` the
    /// server streams pipeline progress, collected into
    /// [`Served::events`].
    pub fn submit(
        &mut self,
        image: SubmitImage,
        config: &AnalysisConfig,
        want_events: bool,
        deadline_ms: u64,
    ) -> Result<Served, ClientError> {
        send_request(
            &mut self.stream,
            &Request::Submit {
                image,
                config: config.clone(),
                want_events,
                deadline_ms,
            },
        )?;
        let accepted_id = match read_response(&mut self.stream)? {
            Response::Accepted { job_id } => job_id,
            Response::Rejected { reason } => return Err(ClientError::Rejected(reason)),
            other => {
                return Err(ClientError::Protocol(format!(
                    "expected Accepted or Rejected, got {other:?}"
                )))
            }
        };
        let mut events = Vec::new();
        loop {
            match read_response(&mut self.stream)? {
                Response::Event { job_id, event } if job_id == accepted_id => {
                    events.push(event);
                }
                Response::Analysis {
                    job_id,
                    from_cache,
                    payload,
                } if job_id == accepted_id => {
                    let mut r = Reader::new(&payload);
                    let analysis = get_analysis(&mut r).map_err(|e| ClientError::Wire(e.into()))?;
                    if r.remaining() > 0 {
                        return Err(ClientError::Wire(WireError::TrailingBytes {
                            left: r.remaining(),
                        }));
                    }
                    return Ok(Served {
                        job_id,
                        from_cache,
                        payload,
                        analysis,
                        events,
                    });
                }
                Response::Cancelled { job_id, reason } if job_id == accepted_id => {
                    return Err(ClientError::Cancelled { job_id, reason });
                }
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected frame for job {accepted_id}: {other:?}"
                    )))
                }
            }
        }
    }

    /// Fetch the server's current status snapshot.
    pub fn status(&mut self) -> Result<ServiceStatus, ClientError> {
        send_request(&mut self.stream, &Request::Status)?;
        match read_response(&mut self.stream)? {
            Response::StatusInfo(status) => Ok(status),
            Response::Rejected { reason } => Err(ClientError::Rejected(reason)),
            other => Err(ClientError::Protocol(format!(
                "expected StatusInfo, got {other:?}"
            ))),
        }
    }

    /// Cancel a job by id; returns where the cancel found it.
    ///
    /// Note the terminal `Cancelled` frame of a cancelled job still
    /// arrives on the connection that submitted it — this call only
    /// reports the cancel's outcome.
    pub fn cancel(&mut self, job_id: u64) -> Result<JobState, ClientError> {
        send_request(&mut self.stream, &Request::Cancel { job_id })?;
        loop {
            match read_response(&mut self.stream)? {
                Response::CancelOk { state, .. } => return Ok(state),
                // A terminal frame of one of our own jobs may race the
                // CancelOk; skip past it.
                Response::Cancelled { .. } | Response::Event { .. } => {}
                Response::Rejected { reason } => return Err(ClientError::Rejected(reason)),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected CancelOk, got {other:?}"
                    )))
                }
            }
        }
    }

    /// Read the terminal frame of a previously accepted job (used after
    /// [`Client::cancel`] to consume the `Cancelled` frame when it has
    /// not already been drained).
    pub fn read_terminal(&mut self) -> Result<Response, ClientError> {
        Ok(read_response(&mut self.stream)?)
    }

    /// Drain the server: it finishes in-flight jobs, refuses new ones,
    /// answers with its lifetime jobs-served count and shuts down.
    pub fn drain(&mut self) -> Result<u64, ClientError> {
        send_request(&mut self.stream, &Request::Drain)?;
        loop {
            match read_response(&mut self.stream)? {
                Response::DrainOk { jobs_served } => return Ok(jobs_served),
                // In-flight terminal frames may land before DrainOk.
                Response::Cancelled { .. } | Response::Event { .. } | Response::Analysis { .. } => {
                }
                Response::Rejected { reason } => return Err(ClientError::Rejected(reason)),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected DrainOk, got {other:?}"
                    )))
                }
            }
        }
    }
}
