//! Open- and closed-loop load generation against a running daemon.
//!
//! [`run_load`] drives concurrent submit-by-bytes / submit-by-hash
//! traffic over plain blocking connections and records per-request
//! latency into an HDR-style log-linear [`LatencyHistogram`]. Two
//! arrival models:
//!
//! * **Open loop** (`rate > 0`): request *i* of the run is scheduled at
//!   `start + i/rate`, interleaved round-robin across connections.
//!   Latency is measured from the request's *scheduled* arrival, not
//!   from when the connection got around to sending it — the standard
//!   coordinated-omission correction, so queue build-up behind a slow
//!   response is charged to the requests it delays. A send that starts
//!   more than a millisecond past its schedule is also counted in
//!   [`LoadReport::behind_schedule`]; a persistently growing value means
//!   the configured rate exceeds what the connections can carry.
//! * **Closed loop** (`rate == 0`): every connection submits
//!   back-to-back; latency is measured from just before the send. This
//!   measures capacity, not user-perceived latency.
//!
//! Admission rejections ([`RejectReason::QueueFull`] with its
//! `retry_after_ms` hint) are *counted outcomes*, never errors: the
//! whole point of a saturation sweep is to observe them engaging.

use crate::wire::{
    read_response, send_request, RejectReason, Request, Response, SubmitImage, PROTOCOL_VERSION,
};
use firmres::AnalysisConfig;
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Number of linear sub-buckets per power of two (64 → ≤1.6% relative
/// error per recorded value).
const SUB_BUCKETS: usize = 64;
/// Bucket count covering the full `u64` nanosecond range.
const BUCKETS: usize = (64 - 5) * SUB_BUCKETS;

/// HDR-style log-linear latency histogram over `u64` nanosecond values.
///
/// Values below 64 are exact; above that, each power of two is split
/// into 64 linear sub-buckets, bounding relative quantile error at
/// 1/64 while keeping the whole histogram a flat 30 KiB array — cheap
/// enough for one per load-generator thread, merged at the end.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn index_of(v: u64) -> usize {
        if v < SUB_BUCKETS as u64 {
            v as usize
        } else {
            let e = 63 - v.leading_zeros() as usize;
            (e - 5) * SUB_BUCKETS + ((v >> (e - 6)) as usize & (SUB_BUCKETS - 1))
        }
    }

    fn value_of(idx: usize) -> u64 {
        if idx < SUB_BUCKETS {
            idx as u64
        } else {
            let g = idx / SUB_BUCKETS;
            let sub = (idx % SUB_BUCKETS) as u64;
            (SUB_BUCKETS as u64 + sub) << (g - 1)
        }
    }

    /// Record one value (nanoseconds).
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::index_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum / self.count as u128) as u64
        }
    }

    /// The value at quantile `q` in `[0, 1]` — the lower bound of the
    /// bucket holding the `ceil(q·count)`-th recorded value (within
    /// 1/64 of the true quantile). Returns 0 when empty.
    pub fn value_at(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                return Self::value_of(i);
            }
        }
        self.max
    }
}

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Number of concurrent connections (each one blocking client).
    pub connections: usize,
    /// Total target arrival rate in requests/second across all
    /// connections; `0.0` selects the closed loop.
    pub rate: f64,
    /// Total request budget for the run.
    pub requests: usize,
    /// Per-request deadline forwarded to the server (0 = none).
    pub deadline_ms: u64,
    /// Open loop: sleep for the server's `retry_after_ms` hint after a
    /// QueueFull rejection before proceeding to the next scheduled
    /// request. The closed loop always honors the hint (with jitter) —
    /// a closed loop that re-submits instantly would hammer a server
    /// that just asked it to back off.
    pub honor_retry_after: bool,
    /// Analysis configuration submitted with every request.
    pub config: AnalysisConfig,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            connections: 4,
            rate: 0.0,
            requests: 256,
            deadline_ms: 0,
            honor_retry_after: false,
            config: AnalysisConfig::default(),
        }
    }
}

/// Tallied outcome of one load run. Every submitted request lands in
/// exactly one of `completed`, `rejected_*`, `cancelled`, `wire_errors`
/// or `protocol_errors`.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Wall-clock duration of the run (connections established → last
    /// thread done).
    pub elapsed: Duration,
    /// Requests attempted.
    pub submitted: u64,
    /// Requests answered with a terminal Analysis frame.
    pub completed: u64,
    /// Of the completed, how many the server answered from its cache.
    pub from_cache: u64,
    /// Admission rejections with [`RejectReason::QueueFull`].
    pub rejected_queue_full: u64,
    /// Any other structured rejection (in-flight cap, draining, unknown
    /// image, …).
    pub rejected_other: u64,
    /// Jobs accepted but cancelled (deadline or explicit).
    pub cancelled: u64,
    /// Socket/codec failures.
    pub wire_errors: u64,
    /// Out-of-protocol frames.
    pub protocol_errors: u64,
    /// Largest `retry_after_ms` back-off hint observed.
    pub retry_after_ms_max: u64,
    /// Open loop only: sends that started >1 ms past their schedule.
    pub behind_schedule: u64,
    /// QueueFull rejections that were answered with a back-off sleep
    /// (always in the closed loop, opt-in via
    /// [`LoadConfig::honor_retry_after`] in the open loop).
    pub backoff_waits: u64,
    /// Total milliseconds spent in back-off sleeps.
    pub backoff_ms_total: u64,
    /// Total terminal-payload bytes received.
    pub payload_bytes: u64,
    /// Per-request latency in nanoseconds (completed requests only).
    pub latency: LatencyHistogram,
}

impl LoadReport {
    /// Completed requests per second over the run.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.completed as f64 / secs
        }
    }

    fn absorb(&mut self, other: &LoadReport) {
        self.submitted += other.submitted;
        self.completed += other.completed;
        self.from_cache += other.from_cache;
        self.rejected_queue_full += other.rejected_queue_full;
        self.rejected_other += other.rejected_other;
        self.cancelled += other.cancelled;
        self.wire_errors += other.wire_errors;
        self.protocol_errors += other.protocol_errors;
        self.retry_after_ms_max = self.retry_after_ms_max.max(other.retry_after_ms_max);
        self.behind_schedule += other.behind_schedule;
        self.backoff_waits += other.backoff_waits;
        self.backoff_ms_total += other.backoff_ms_total;
        self.payload_bytes += other.payload_bytes;
        self.latency.merge(&other.latency);
    }
}

/// Connect and complete the version handshake, returning the raw stream
/// (the driver skips the client library's payload decode — the server's
/// work is what is being measured, not the client's codec).
fn connect_raw(addr: SocketAddr) -> Result<TcpStream, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    send_request(
        &mut stream,
        &Request::Hello {
            version: PROTOCOL_VERSION,
        },
    )
    .map_err(|e| format!("handshake send: {e}"))?;
    match read_response(&mut stream).map_err(|e| format!("handshake read: {e}"))? {
        Response::HelloOk { .. } => Ok(stream),
        other => Err(format!("expected HelloOk, got {other:?}")),
    }
}

/// Deterministic per-thread jitter source (xorshift64): back-off sleeps
/// must de-synchronize the connections without pulling in a randomness
/// dependency or making runs irreproducible.
struct Jitter(u64);

impl Jitter {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// What one submit attempt amounted to.
enum Outcome {
    Done { from_cache: bool, payload: u64 },
    Rejected(RejectReason),
    Cancelled,
    Wire,
    Protocol,
}

fn submit_once(
    stream: &mut TcpStream,
    item: &SubmitImage,
    config: &AnalysisConfig,
    deadline_ms: u64,
) -> Outcome {
    let sent = send_request(
        stream,
        &Request::Submit {
            image: item.clone(),
            config: config.clone(),
            want_events: false,
            deadline_ms,
        },
    );
    if sent.is_err() {
        return Outcome::Wire;
    }
    let job_id = match read_response(stream) {
        Ok(Response::Accepted { job_id }) => job_id,
        Ok(Response::Rejected { reason }) => return Outcome::Rejected(reason),
        Ok(_) => return Outcome::Protocol,
        Err(_) => return Outcome::Wire,
    };
    loop {
        match read_response(stream) {
            Ok(Response::Event { .. }) => {}
            Ok(Response::Analysis {
                job_id: id,
                from_cache,
                payload,
            }) if id == job_id => {
                return Outcome::Done {
                    from_cache,
                    payload: payload.len() as u64,
                }
            }
            Ok(Response::Cancelled { job_id: id, .. }) if id == job_id => {
                return Outcome::Cancelled
            }
            Ok(_) => return Outcome::Protocol,
            Err(_) => return Outcome::Wire,
        }
    }
}

/// Drive `cfg.requests` submits of `items` (round-robin) against the
/// daemon at `addr` and tally the outcome.
///
/// Request *i* of the run submits `items[i % items.len()]` on connection
/// `i % cfg.connections`, so byte- and hash-mode entries interleave
/// however the caller mixed them in `items`. Connections that hit a wire
/// error reconnect once per request; an unreachable server is reported
/// in [`LoadReport::wire_errors`] rather than aborting the run.
///
/// Fails only when `items` is empty, `cfg.connections == 0`, or no
/// initial connection can be established.
pub fn run_load(
    addr: SocketAddr,
    items: &[SubmitImage],
    cfg: &LoadConfig,
) -> Result<LoadReport, String> {
    if items.is_empty() {
        return Err("run_load: no work items".to_string());
    }
    if cfg.connections == 0 {
        return Err("run_load: connections must be >= 1".to_string());
    }
    let conns = cfg.connections.min(cfg.requests.max(1));
    let mut streams = Vec::with_capacity(conns);
    for _ in 0..conns {
        streams.push(Some(connect_raw(addr)?));
    }

    let start = Instant::now();
    let reports: Vec<LoadReport> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(conns);
        for (k, slot) in streams.into_iter().enumerate() {
            let cfg = cfg.clone();
            let handle = scope.spawn(move || {
                let mut stream = slot;
                let mut report = LoadReport::default();
                let mut jitter = Jitter(0x9E37_79B9_7F4A_7C15 ^ (k as u64 + 1));
                let mut slot_idx = k;
                while slot_idx < cfg.requests {
                    let item = &items[slot_idx % items.len()];
                    // Open loop: wait for this request's scheduled
                    // arrival; measure latency from the schedule.
                    let measure_from = if cfg.rate > 0.0 {
                        let sched = start + Duration::from_secs_f64(slot_idx as f64 / cfg.rate);
                        let now = Instant::now();
                        if sched > now {
                            std::thread::sleep(sched - now);
                        } else if now - sched > Duration::from_millis(1) {
                            report.behind_schedule += 1;
                        }
                        sched
                    } else {
                        Instant::now()
                    };
                    let s = match stream.as_mut() {
                        Some(s) => s,
                        None => match connect_raw(addr) {
                            Ok(s) => {
                                stream = Some(s);
                                stream.as_mut().expect("just set")
                            }
                            Err(_) => {
                                report.submitted += 1;
                                report.wire_errors += 1;
                                slot_idx += conns;
                                continue;
                            }
                        },
                    };
                    report.submitted += 1;
                    match submit_once(s, item, &cfg.config, cfg.deadline_ms) {
                        Outcome::Done {
                            from_cache,
                            payload,
                        } => {
                            report.completed += 1;
                            report.payload_bytes += payload;
                            if from_cache {
                                report.from_cache += 1;
                            }
                            report
                                .latency
                                .record(measure_from.elapsed().as_nanos() as u64);
                        }
                        Outcome::Rejected(RejectReason::QueueFull { retry_after_ms, .. }) => {
                            report.rejected_queue_full += 1;
                            report.retry_after_ms_max =
                                report.retry_after_ms_max.max(retry_after_ms);
                            // Closed loop: re-submitting instantly would
                            // hammer a server that just asked for a
                            // back-off, so the hint is always honored,
                            // jittered into [retry/2, retry] so the
                            // connections do not retry in lockstep. The
                            // open loop keeps its schedule unless the
                            // caller opted in.
                            let backoff_ms = if cfg.rate == 0.0 && retry_after_ms > 0 {
                                let half = retry_after_ms.div_ceil(2);
                                half + jitter.next() % (retry_after_ms - half + 1)
                            } else if cfg.honor_retry_after {
                                retry_after_ms
                            } else {
                                0
                            };
                            if backoff_ms > 0 {
                                report.backoff_waits += 1;
                                report.backoff_ms_total += backoff_ms;
                                std::thread::sleep(Duration::from_millis(backoff_ms));
                            }
                        }
                        Outcome::Rejected(_) => report.rejected_other += 1,
                        Outcome::Cancelled => report.cancelled += 1,
                        Outcome::Wire => {
                            report.wire_errors += 1;
                            // Socket state is unknown; reconnect next slot.
                            stream = None;
                        }
                        Outcome::Protocol => {
                            report.protocol_errors += 1;
                            stream = None;
                        }
                    }
                    slot_idx += conns;
                }
                report
            });
            handles.push(handle);
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("load thread panicked"))
            .collect()
    });

    let mut total = LoadReport {
        elapsed: start.elapsed(),
        ..LoadReport::default()
    };
    for r in &reports {
        total.absorb(r);
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_is_exact_below_64() {
        let mut h = LatencyHistogram::new();
        for v in [0u64, 1, 7, 63] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 63);
        assert_eq!(h.value_at(1.0), 63);
        assert_eq!(h.value_at(0.25), 0);
    }

    #[test]
    fn histogram_relative_error_is_bounded() {
        let mut h = LatencyHistogram::new();
        let mut vals: Vec<u64> = (0..4000u64).map(|i| i * i * 37 + 100).collect();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_unstable();
        for q in [0.5, 0.9, 0.95, 0.99, 0.999] {
            let exact =
                vals[(((q * vals.len() as f64).ceil() as usize).max(1) - 1).min(vals.len() - 1)];
            let approx = h.value_at(q);
            let err = (approx as f64 - exact as f64).abs() / exact as f64;
            assert!(
                err <= 1.0 / 64.0 + 1e-9,
                "q={q}: approx {approx} exact {exact} err {err}"
            );
        }
        assert!(h.value_at(1.0) <= h.max());
    }

    #[test]
    fn histogram_merge_matches_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut c = LatencyHistogram::new();
        for v in 0..1000u64 {
            let x = v * 917 + 3;
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            c.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.min(), c.min());
        assert_eq!(a.max(), c.max());
        assert_eq!(a.mean(), c.mean());
        for q in [0.1, 0.5, 0.99] {
            assert_eq!(a.value_at(q), c.value_at(q));
        }
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.value_at(0.99), 0);
    }

    #[test]
    fn bucket_round_trip_lower_bound() {
        for v in [
            0u64,
            1,
            63,
            64,
            65,
            127,
            128,
            1000,
            65_535,
            1 << 32,
            u64::MAX / 2,
        ] {
            let idx = LatencyHistogram::index_of(v);
            let low = LatencyHistogram::value_of(idx);
            assert!(low <= v, "lower bound {low} > value {v}");
            // Bucket width is bounded by low/64 (log-linear property).
            assert!(v - low <= (low / 64).max(1), "value {v} low {low}");
        }
    }

    #[test]
    fn run_load_rejects_empty_inputs() {
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        assert!(run_load(addr, &[], &LoadConfig::default()).is_err());
        let items = [SubmitImage::Hash(1)];
        let cfg = LoadConfig {
            connections: 0,
            ..LoadConfig::default()
        };
        assert!(run_load(addr, &items, &cfg).is_err());
    }
}
