//! The FIRMRES service wire protocol: length-prefixed, versioned binary
//! frames in the style of the FRAC cache codec.
//!
//! # Frame grammar
//!
//! ```text
//! frame    := u32_le body-length | body          body-length <= MAX_FRAME
//! body     := u8 tag | tag-specific fields
//! scalars  := little-endian (FRAC codec conventions)
//! strings  := u32_le length | UTF-8 bytes
//! ```
//!
//! A connection opens with a [`Request::Hello`] carrying the client's
//! [`PROTOCOL_VERSION`]; the server answers [`Response::HelloOk`] or
//! rejects with [`RejectReason::VersionMismatch`] and closes. After the
//! handshake the client sends [`Request`] frames and reads [`Response`]
//! frames; a `Submit` produces `Accepted` followed by zero or more
//! streamed `Event` frames and exactly one terminal frame (`Analysis`,
//! `Cancelled`), or a single `Rejected` when admission control refuses
//! the job.
//!
//! Decoding is panic-free: every read goes through the bounds-checked
//! [`Reader`] from the cache codec, every enum tag is validated, a frame
//! longer than [`MAX_FRAME`] is refused before allocation, and a frame
//! with trailing bytes after its message is rejected. Hostile input
//! surfaces as a [`WireError`], never a panic — the property tests in
//! `crates/service/tests/` hold the codec to that.
//!
//! The `Analysis` payload is the FRAC codec's [`put_analysis`] encoding
//! of the finished [`FirmwareAnalysis`] — the same bytes the analysis
//! cache persists — which is what makes "served result ≡ local result"
//! checkable byte-for-byte.
//!
//! [`put_analysis`]: firmres_cache::codec::put_analysis
//! [`FirmwareAnalysis`]: firmres::FirmwareAnalysis

use bytes::BufMut;
use firmres::{AnalysisConfig, Counter, Diagnostic, Event, Severity, StageKind};
use firmres_cache::codec::{DecodeError, Reader};
use std::fmt;
use std::io::{Read, Write};
use std::time::Duration;

/// Version of this wire protocol. Bump on any frame-layout change; the
/// handshake refuses mismatched peers instead of misparsing them.
pub const PROTOCOL_VERSION: u16 = 4;

/// Hard cap on one frame's body length. Larger length prefixes are
/// refused before any allocation: a hostile or corrupt 4-byte prefix
/// must not turn into a multi-gigabyte buffer.
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

/// Why reading, writing or decoding a frame failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The underlying socket or stream failed.
    Io(String),
    /// A frame's declared body length exceeds [`MAX_FRAME`].
    FrameTooLarge {
        /// The declared length.
        len: u64,
    },
    /// The peer closed the connection between frames.
    ConnectionClosed,
    /// The frame body does not decode as a protocol message.
    Decode(String),
    /// The frame body decoded but left unconsumed bytes.
    TrailingBytes {
        /// How many bytes were left over.
        left: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire io error: {e}"),
            WireError::FrameTooLarge { len } => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            WireError::ConnectionClosed => write!(f, "connection closed"),
            WireError::Decode(e) => write!(f, "frame decode failed: {e}"),
            WireError::TrailingBytes { left } => {
                write!(f, "frame has {left} trailing byte(s) after the message")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<DecodeError> for WireError {
    fn from(e: DecodeError) -> Self {
        WireError::Decode(e.0)
    }
}

/// How a `Submit` identifies the firmware to analyze.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitImage {
    /// The packed firmware container bytes ([`FirmwareImage::pack`]).
    ///
    /// [`FirmwareImage::pack`]: firmres_firmware::FirmwareImage::pack
    Bytes(Vec<u8>),
    /// The FNV-128 content hash of the packed bytes
    /// ([`content_hash_packed_wide`]): ask the server's cache for an
    /// existing entry without shipping the image.
    ///
    /// [`content_hash_packed_wide`]: firmres_firmware::content_hash_packed_wide
    Hash(u128),
}

/// A client-to-server message.
#[derive(Debug, Clone)]
pub enum Request {
    /// Handshake: the client's protocol version, first frame on every
    /// connection.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u16,
    },
    /// Submit one firmware image for analysis.
    Submit {
        /// The image, by bytes or by content hash.
        image: SubmitImage,
        /// The analysis configuration the job must run under.
        config: AnalysisConfig,
        /// Stream pipeline [`Event`] frames while the job runs.
        want_events: bool,
        /// Per-request deadline in milliseconds (`0` = none). The job is
        /// cancelled at the next unit boundary once exceeded.
        deadline_ms: u64,
    },
    /// Ask for the server's current [`ServiceStatus`].
    Status,
    /// Cancel a job by id (queued jobs are removed, running jobs are
    /// signalled at the next unit boundary).
    Cancel {
        /// The job to cancel.
        job_id: u64,
    },
    /// Stop admitting new jobs, finish everything in flight, then shut
    /// the server down. Answered with [`Response::DrainOk`] once idle.
    Drain,
}

/// Why the server refused a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The job queue is at capacity; retry after the given hint.
    QueueFull {
        /// Current queue depth (= the configured capacity).
        depth: u32,
        /// Suggested client back-off before resubmitting.
        retry_after_ms: u64,
    },
    /// This connection already has its maximum number of jobs in flight.
    InFlightCap {
        /// The per-connection cap.
        cap: u32,
    },
    /// The server is draining and admits no new jobs.
    Draining,
    /// The handshake versions do not match.
    VersionMismatch {
        /// The server's [`PROTOCOL_VERSION`].
        server: u16,
    },
    /// A hash submission found no cache entry (the server cannot analyze
    /// bytes it does not have).
    UnknownImage,
    /// The request was malformed or arrived out of protocol order.
    BadRequest {
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::QueueFull {
                depth,
                retry_after_ms,
            } => write!(
                f,
                "queue full at depth {depth}; retry after {retry_after_ms} ms"
            ),
            RejectReason::InFlightCap { cap } => {
                write!(f, "connection in-flight cap of {cap} reached")
            }
            RejectReason::Draining => write!(f, "server is draining"),
            RejectReason::VersionMismatch { server } => {
                write!(f, "protocol version mismatch (server speaks v{server})")
            }
            RejectReason::UnknownImage => write!(f, "image hash not in the server cache"),
            RejectReason::BadRequest { detail } => write!(f, "bad request: {detail}"),
        }
    }
}

/// Where a job was when a `Cancel` found it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// No queued or running job had that id.
    Unknown,
    /// The job was still queued and has been removed.
    Queued,
    /// The job was running and has been signalled to stop.
    Running,
}

/// A point-in-time snapshot of the server, served on [`Request::Status`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStatus {
    /// Jobs waiting in the queue.
    pub queue_depth: u32,
    /// The queue's configured capacity.
    pub queue_cap: u32,
    /// Jobs currently executing on workers.
    pub inflight: u32,
    /// Jobs completed successfully since startup (cache hits included).
    pub jobs_served: u64,
    /// Submissions refused by admission control.
    pub jobs_rejected: u64,
    /// Jobs cancelled (explicitly or by deadline).
    pub jobs_cancelled: u64,
    /// Submissions answered straight from the analysis cache.
    pub cache_hits: u64,
    /// Submissions that had to run the pipeline.
    pub cache_misses: u64,
    /// Message units spliced from unit-granular artifacts while
    /// re-analyzing cache misses.
    pub unit_hits: u64,
    /// Message units re-executed while re-analyzing cache misses.
    pub unit_misses: u64,
    /// Functions hash-matched against the known-library index across
    /// pipeline runs (0 when the server holds no index).
    pub lib_fns_matched: u64,
    /// Library-body traversals replaced by summary replay.
    pub lib_traversals_skipped: u64,
    /// Taint-tree nodes emitted by summary replay.
    pub lib_summary_applies: u64,
    /// Slice classifications answered from the server's shared
    /// classification cache across pipeline runs.
    pub class_cache_hits: u64,
    /// Slice classifications the certified None pre-filter skipped
    /// scoring for.
    pub prefilter_skips: u64,
    /// Entries currently held in the classification cache.
    pub class_cache_entries: u64,
    /// Whether the server is draining.
    pub draining: bool,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Handshake accepted.
    HelloOk {
        /// The server's [`PROTOCOL_VERSION`].
        version: u16,
    },
    /// The submission passed admission control and was assigned an id.
    Accepted {
        /// The job's server-wide id.
        job_id: u64,
    },
    /// The request was refused.
    Rejected {
        /// Why.
        reason: RejectReason,
    },
    /// One streamed pipeline event of a running job.
    Event {
        /// The job the event belongs to.
        job_id: u64,
        /// The bridged pipeline event.
        event: Event,
    },
    /// Terminal frame: the finished analysis.
    Analysis {
        /// The job that produced it.
        job_id: u64,
        /// Whether it was served from the analysis cache without running
        /// the pipeline.
        from_cache: bool,
        /// The FRAC-codec encoding of the [`FirmwareAnalysis`]
        /// ([`put_analysis`] bytes).
        ///
        /// [`put_analysis`]: firmres_cache::codec::put_analysis
        /// [`FirmwareAnalysis`]: firmres::FirmwareAnalysis
        payload: Vec<u8>,
    },
    /// Terminal frame: the job was cancelled before completing.
    Cancelled {
        /// The cancelled job.
        job_id: u64,
        /// Human-readable cause (`"cancelled"`, `"deadline exceeded"`).
        reason: String,
    },
    /// Answer to [`Request::Cancel`].
    CancelOk {
        /// The job the cancel targeted.
        job_id: u64,
        /// Where the cancel found it.
        state: JobState,
    },
    /// Answer to [`Request::Status`].
    StatusInfo(ServiceStatus),
    /// Answer to [`Request::Drain`]: every in-flight job has finished.
    DrainOk {
        /// Total jobs served over the server's lifetime.
        jobs_served: u64,
    },
}

// ---- frame IO -----------------------------------------------------------

/// Write one length-prefixed frame.
///
/// The prefix and body go out as one buffer in one write: a split write
/// of a small frame would trip TCP's Nagle/delayed-ACK interaction and
/// stall every request/response round-trip by tens of milliseconds.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> Result<(), WireError> {
    if body.len() > MAX_FRAME {
        return Err(WireError::FrameTooLarge {
            len: body.len() as u64,
        });
    }
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(body);
    w.write_all(&frame)
        .and_then(|()| w.flush())
        .map_err(|e| WireError::Io(e.to_string()))
}

/// Read one length-prefixed frame body, enforcing [`MAX_FRAME`].
///
/// A clean EOF before the length prefix is [`WireError::ConnectionClosed`]
/// (the peer hung up between frames); EOF mid-frame is an I/O error.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, WireError> {
    let mut len = [0u8; 4];
    let mut filled = 0;
    while filled < len.len() {
        match r.read(&mut len[filled..]) {
            Ok(0) if filled == 0 => return Err(WireError::ConnectionClosed),
            Ok(0) => return Err(WireError::Io("eof inside frame length".to_string())),
            Ok(n) => filled += n,
            Err(e) => return Err(WireError::Io(e.to_string())),
        }
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(WireError::FrameTooLarge { len: len as u64 });
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)
        .map_err(|e| WireError::Io(e.to_string()))?;
    Ok(body)
}

fn done<T>(value: T, r: &Reader<'_>) -> Result<T, WireError> {
    if r.remaining() > 0 {
        return Err(WireError::TrailingBytes {
            left: r.remaining(),
        });
    }
    Ok(value)
}

// ---- leaf encodings -----------------------------------------------------

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.put_u32_le(s.len() as u32);
    out.put_slice(s.as_bytes());
}

fn put_stage_kind(out: &mut Vec<u8>, s: StageKind) {
    // Local exhaustive tags, FRAC-codec style: a new StageKind variant
    // fails this match, signalling a PROTOCOL_VERSION bump.
    out.put_u8(match s {
        StageKind::Input => 0,
        StageKind::ExeId => 1,
        StageKind::FieldId => 2,
        StageKind::Semantics => 3,
        StageKind::Concat => 4,
        StageKind::FormCheck => 5,
        StageKind::Cache => 6,
    });
}

fn get_stage_kind(r: &mut Reader) -> Result<StageKind, WireError> {
    Ok(match r.u8()? {
        0 => StageKind::Input,
        1 => StageKind::ExeId,
        2 => StageKind::FieldId,
        3 => StageKind::Semantics,
        4 => StageKind::Concat,
        5 => StageKind::FormCheck,
        6 => StageKind::Cache,
        t => return Err(WireError::Decode(format!("invalid StageKind tag {t}"))),
    })
}

fn put_severity(out: &mut Vec<u8>, s: Severity) {
    out.put_u8(match s {
        Severity::Info => 0,
        Severity::Warning => 1,
        Severity::Error => 2,
    });
}

fn get_severity(r: &mut Reader) -> Result<Severity, WireError> {
    Ok(match r.u8()? {
        0 => Severity::Info,
        1 => Severity::Warning,
        2 => Severity::Error,
        t => return Err(WireError::Decode(format!("invalid Severity tag {t}"))),
    })
}

fn put_counter(out: &mut Vec<u8>, c: Counter) {
    out.put_u8(match c {
        Counter::ExecutablesTried => 0,
        Counter::ParseFailures => 1,
        Counter::LiftFailures => 2,
        Counter::TaintQueries => 3,
        Counter::TaintCacheHits => 4,
        Counter::SlicesRendered => 5,
        Counter::FieldsMatched => 6,
        Counter::CacheHits => 7,
        Counter::CacheMisses => 8,
        Counter::CacheBytesRead => 9,
        Counter::CacheBytesWritten => 10,
        Counter::LibFnsMatched => 11,
        Counter::LibTraversalsSkipped => 12,
        Counter::LibSummaryApplies => 13,
        Counter::SlicesBatched => 14,
        Counter::PrefilterSkips => 15,
        Counter::ClassCacheHits => 16,
    });
}

fn get_counter(r: &mut Reader) -> Result<Counter, WireError> {
    Ok(match r.u8()? {
        0 => Counter::ExecutablesTried,
        1 => Counter::ParseFailures,
        2 => Counter::LiftFailures,
        3 => Counter::TaintQueries,
        4 => Counter::TaintCacheHits,
        5 => Counter::SlicesRendered,
        6 => Counter::FieldsMatched,
        7 => Counter::CacheHits,
        8 => Counter::CacheMisses,
        9 => Counter::CacheBytesRead,
        10 => Counter::CacheBytesWritten,
        11 => Counter::LibFnsMatched,
        12 => Counter::LibTraversalsSkipped,
        13 => Counter::LibSummaryApplies,
        14 => Counter::SlicesBatched,
        15 => Counter::PrefilterSkips,
        16 => Counter::ClassCacheHits,
        t => return Err(WireError::Decode(format!("invalid Counter tag {t}"))),
    })
}

fn put_diagnostic(out: &mut Vec<u8>, d: &Diagnostic) {
    put_stage_kind(out, d.stage);
    put_severity(out, d.severity);
    match &d.subject {
        None => out.put_u8(0),
        Some(s) => {
            out.put_u8(1);
            put_string(out, s);
        }
    }
    put_string(out, &d.detail);
}

fn get_diagnostic(r: &mut Reader) -> Result<Diagnostic, WireError> {
    let stage = get_stage_kind(r)?;
    let severity = get_severity(r)?;
    let subject = if r.boolean()? {
        Some(r.string()?)
    } else {
        None
    };
    let detail = r.string()?;
    Ok(match subject {
        Some(s) => Diagnostic::new(stage, severity, s, detail),
        None => Diagnostic::bare(stage, severity, detail),
    })
}

fn put_event(out: &mut Vec<u8>, ev: &Event) {
    match ev {
        Event::StageStarted(stage) => {
            out.put_u8(0);
            put_stage_kind(out, *stage);
        }
        Event::StageFinished(stage, elapsed) => {
            out.put_u8(1);
            put_stage_kind(out, *stage);
            out.put_u64_le(elapsed.as_nanos() as u64);
        }
        Event::Count(counter, n) => {
            out.put_u8(2);
            put_counter(out, *counter);
            out.put_u64_le(*n);
        }
        Event::Diagnostic(d) => {
            out.put_u8(3);
            put_diagnostic(out, d);
        }
    }
}

fn get_event(r: &mut Reader) -> Result<Event, WireError> {
    Ok(match r.u8()? {
        0 => Event::StageStarted(get_stage_kind(r)?),
        1 => Event::StageFinished(get_stage_kind(r)?, Duration::from_nanos(r.u64()?)),
        2 => Event::Count(get_counter(r)?, r.u64()?),
        3 => Event::Diagnostic(get_diagnostic(r)?),
        t => return Err(WireError::Decode(format!("invalid Event tag {t}"))),
    })
}

/// Encode every [`AnalysisConfig`] knob that changes analysis output —
/// the same field set [`config_fingerprint`] covers, so a config that
/// round-trips the wire fingerprints identically on both ends.
///
/// [`config_fingerprint`]: firmres_cache::config_fingerprint
fn put_config(out: &mut Vec<u8>, config: &AnalysisConfig) {
    out.put_u64_le(config.exeid.score_threshold.to_bits());
    out.put_u64_le(config.taint.max_depth as u64);
    out.put_u64_le(config.taint.max_nodes as u64);
    out.put_u8(config.taint.overtaint as u8);
    out.put_u8(config.taint.decompose_buffers as u8);
}

fn get_config(r: &mut Reader) -> Result<AnalysisConfig, WireError> {
    let mut config = AnalysisConfig::default();
    config.exeid.score_threshold = f64::from_bits(r.u64()?);
    config.taint.max_depth = r.u64()? as usize;
    config.taint.max_nodes = r.u64()? as usize;
    config.taint.overtaint = r.boolean()?;
    config.taint.decompose_buffers = r.boolean()?;
    Ok(config)
}

fn put_reject_reason(out: &mut Vec<u8>, reason: &RejectReason) {
    match reason {
        RejectReason::QueueFull {
            depth,
            retry_after_ms,
        } => {
            out.put_u8(0);
            out.put_u32_le(*depth);
            out.put_u64_le(*retry_after_ms);
        }
        RejectReason::InFlightCap { cap } => {
            out.put_u8(1);
            out.put_u32_le(*cap);
        }
        RejectReason::Draining => out.put_u8(2),
        RejectReason::VersionMismatch { server } => {
            out.put_u8(3);
            out.put_u16_le(*server);
        }
        RejectReason::UnknownImage => out.put_u8(4),
        RejectReason::BadRequest { detail } => {
            out.put_u8(5);
            put_string(out, detail);
        }
    }
}

fn get_reject_reason(r: &mut Reader) -> Result<RejectReason, WireError> {
    Ok(match r.u8()? {
        0 => RejectReason::QueueFull {
            depth: r.u32()?,
            retry_after_ms: r.u64()?,
        },
        1 => RejectReason::InFlightCap { cap: r.u32()? },
        2 => RejectReason::Draining,
        3 => RejectReason::VersionMismatch { server: r.u16()? },
        4 => RejectReason::UnknownImage,
        5 => RejectReason::BadRequest {
            detail: r.string()?,
        },
        t => return Err(WireError::Decode(format!("invalid RejectReason tag {t}"))),
    })
}

fn put_status(out: &mut Vec<u8>, s: &ServiceStatus) {
    out.put_u32_le(s.queue_depth);
    out.put_u32_le(s.queue_cap);
    out.put_u32_le(s.inflight);
    out.put_u64_le(s.jobs_served);
    out.put_u64_le(s.jobs_rejected);
    out.put_u64_le(s.jobs_cancelled);
    out.put_u64_le(s.cache_hits);
    out.put_u64_le(s.cache_misses);
    out.put_u64_le(s.unit_hits);
    out.put_u64_le(s.unit_misses);
    out.put_u64_le(s.lib_fns_matched);
    out.put_u64_le(s.lib_traversals_skipped);
    out.put_u64_le(s.lib_summary_applies);
    out.put_u64_le(s.class_cache_hits);
    out.put_u64_le(s.prefilter_skips);
    out.put_u64_le(s.class_cache_entries);
    out.put_u8(s.draining as u8);
}

fn get_status(r: &mut Reader) -> Result<ServiceStatus, WireError> {
    Ok(ServiceStatus {
        queue_depth: r.u32()?,
        queue_cap: r.u32()?,
        inflight: r.u32()?,
        jobs_served: r.u64()?,
        jobs_rejected: r.u64()?,
        jobs_cancelled: r.u64()?,
        cache_hits: r.u64()?,
        cache_misses: r.u64()?,
        unit_hits: r.u64()?,
        unit_misses: r.u64()?,
        lib_fns_matched: r.u64()?,
        lib_traversals_skipped: r.u64()?,
        lib_summary_applies: r.u64()?,
        class_cache_hits: r.u64()?,
        prefilter_skips: r.u64()?,
        class_cache_entries: r.u64()?,
        draining: r.boolean()?,
    })
}

// ---- messages -----------------------------------------------------------

impl Request {
    /// Encode into a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Hello { version } => {
                out.put_u8(0);
                out.put_u16_le(*version);
            }
            Request::Submit {
                image,
                config,
                want_events,
                deadline_ms,
            } => {
                out.put_u8(1);
                match image {
                    SubmitImage::Bytes(bytes) => {
                        out.put_u8(0);
                        out.put_u32_le(bytes.len() as u32);
                        out.put_slice(bytes);
                    }
                    SubmitImage::Hash(hash) => {
                        out.put_u8(1);
                        out.put_u128_le(*hash);
                    }
                }
                put_config(&mut out, config);
                out.put_u8(*want_events as u8);
                out.put_u64_le(*deadline_ms);
            }
            Request::Status => out.put_u8(2),
            Request::Cancel { job_id } => {
                out.put_u8(3);
                out.put_u64_le(*job_id);
            }
            Request::Drain => out.put_u8(4),
        }
        out
    }

    /// Decode a frame body. The whole body must be consumed.
    pub fn decode(body: &[u8]) -> Result<Request, WireError> {
        let mut r = Reader::new(body);
        let req = match r.u8()? {
            0 => Request::Hello { version: r.u16()? },
            1 => {
                let image = match r.u8()? {
                    0 => {
                        let len = r.u32()? as usize;
                        SubmitImage::Bytes(r.bytes(len)?.to_vec())
                    }
                    1 => SubmitImage::Hash(r.u128()?),
                    t => {
                        return Err(WireError::Decode(format!("invalid SubmitImage tag {t}")));
                    }
                };
                Request::Submit {
                    image,
                    config: get_config(&mut r)?,
                    want_events: r.boolean()?,
                    deadline_ms: r.u64()?,
                }
            }
            2 => Request::Status,
            3 => Request::Cancel { job_id: r.u64()? },
            4 => Request::Drain,
            t => return Err(WireError::Decode(format!("invalid Request tag {t}"))),
        };
        done(req, &r)
    }
}

impl Response {
    /// Encode into a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::HelloOk { version } => {
                out.put_u8(0);
                out.put_u16_le(*version);
            }
            Response::Accepted { job_id } => {
                out.put_u8(1);
                out.put_u64_le(*job_id);
            }
            Response::Rejected { reason } => {
                out.put_u8(2);
                put_reject_reason(&mut out, reason);
            }
            Response::Event { job_id, event } => {
                out.put_u8(3);
                out.put_u64_le(*job_id);
                put_event(&mut out, event);
            }
            Response::Analysis {
                job_id,
                from_cache,
                payload,
            } => {
                out.put_u8(4);
                out.put_u64_le(*job_id);
                out.put_u8(*from_cache as u8);
                out.put_u32_le(payload.len() as u32);
                out.put_slice(payload);
            }
            Response::Cancelled { job_id, reason } => {
                out.put_u8(5);
                out.put_u64_le(*job_id);
                put_string(&mut out, reason);
            }
            Response::CancelOk { job_id, state } => {
                out.put_u8(6);
                out.put_u64_le(*job_id);
                out.put_u8(match state {
                    JobState::Unknown => 0,
                    JobState::Queued => 1,
                    JobState::Running => 2,
                });
            }
            Response::StatusInfo(status) => {
                out.put_u8(7);
                put_status(&mut out, status);
            }
            Response::DrainOk { jobs_served } => {
                out.put_u8(8);
                out.put_u64_le(*jobs_served);
            }
        }
        out
    }

    /// Decode a frame body. The whole body must be consumed.
    pub fn decode(body: &[u8]) -> Result<Response, WireError> {
        let mut r = Reader::new(body);
        let resp = match r.u8()? {
            0 => Response::HelloOk { version: r.u16()? },
            1 => Response::Accepted { job_id: r.u64()? },
            2 => Response::Rejected {
                reason: get_reject_reason(&mut r)?,
            },
            3 => Response::Event {
                job_id: r.u64()?,
                event: get_event(&mut r)?,
            },
            4 => {
                let job_id = r.u64()?;
                let from_cache = r.boolean()?;
                let len = r.u32()? as usize;
                Response::Analysis {
                    job_id,
                    from_cache,
                    payload: r.bytes(len)?.to_vec(),
                }
            }
            5 => Response::Cancelled {
                job_id: r.u64()?,
                reason: r.string()?,
            },
            6 => Response::CancelOk {
                job_id: r.u64()?,
                state: match r.u8()? {
                    0 => JobState::Unknown,
                    1 => JobState::Queued,
                    2 => JobState::Running,
                    t => {
                        return Err(WireError::Decode(format!("invalid JobState tag {t}")));
                    }
                },
            },
            7 => Response::StatusInfo(get_status(&mut r)?),
            8 => Response::DrainOk {
                jobs_served: r.u64()?,
            },
            t => return Err(WireError::Decode(format!("invalid Response tag {t}"))),
        };
        done(resp, &r)
    }
}

/// Write `request` as one frame.
pub fn send_request(w: &mut impl Write, request: &Request) -> Result<(), WireError> {
    write_frame(w, &request.encode())
}

/// Write `response` as one frame.
pub fn send_response(w: &mut impl Write, response: &Response) -> Result<(), WireError> {
    write_frame(w, &response.encode())
}

/// Read and decode one request frame.
pub fn read_request(r: &mut impl Read) -> Result<Request, WireError> {
    Request::decode(&read_frame(r)?)
}

/// Read and decode one response frame.
pub fn read_response(r: &mut impl Read) -> Result<Response, WireError> {
    Response::decode(&read_frame(r)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmres_cache::config_fingerprint;

    fn request_round_trip(req: &Request) -> Request {
        Request::decode(&req.encode()).expect("round trip decodes")
    }

    fn response_round_trip(resp: &Response) -> Response {
        Response::decode(&resp.encode()).expect("round trip decodes")
    }

    #[test]
    fn requests_round_trip() {
        let mut config = AnalysisConfig::default();
        config.taint.max_depth = 7;
        config.exeid.score_threshold = 0.625;
        for req in [
            Request::Hello {
                version: PROTOCOL_VERSION,
            },
            Request::Submit {
                image: SubmitImage::Bytes(vec![1, 2, 3, 4]),
                config: config.clone(),
                want_events: true,
                deadline_ms: 1500,
            },
            Request::Submit {
                image: SubmitImage::Hash(0xDEAD_BEEF_u128 << 64 | 0x1234),
                config: AnalysisConfig::default(),
                want_events: false,
                deadline_ms: 0,
            },
            Request::Status,
            Request::Cancel { job_id: 42 },
            Request::Drain,
        ] {
            let back = request_round_trip(&req);
            assert_eq!(back.encode(), req.encode());
            if let (Request::Submit { config: a, .. }, Request::Submit { config: b, .. }) =
                (&req, &back)
            {
                // The config fingerprint — the cache identity — survives
                // the wire exactly.
                assert_eq!(config_fingerprint(a), config_fingerprint(b));
            }
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::HelloOk {
                version: PROTOCOL_VERSION,
            },
            Response::Accepted { job_id: 7 },
            Response::Rejected {
                reason: RejectReason::QueueFull {
                    depth: 32,
                    retry_after_ms: 250,
                },
            },
            Response::Rejected {
                reason: RejectReason::BadRequest {
                    detail: "submit before hello".to_string(),
                },
            },
            Response::Event {
                job_id: 3,
                event: Event::StageFinished(StageKind::FieldId, Duration::from_micros(1234)),
            },
            Response::Event {
                job_id: 3,
                event: Event::Diagnostic(Diagnostic::new(
                    StageKind::Semantics,
                    Severity::Info,
                    "f@0x100",
                    "fallback",
                )),
            },
            Response::Analysis {
                job_id: 9,
                from_cache: true,
                payload: vec![0xAA; 100],
            },
            Response::Cancelled {
                job_id: 9,
                reason: "deadline exceeded".to_string(),
            },
            Response::CancelOk {
                job_id: 9,
                state: JobState::Queued,
            },
            Response::StatusInfo(ServiceStatus {
                queue_depth: 1,
                queue_cap: 8,
                inflight: 2,
                jobs_served: 100,
                jobs_rejected: 3,
                jobs_cancelled: 1,
                cache_hits: 60,
                cache_misses: 40,
                unit_hits: 512,
                unit_misses: 9,
                lib_fns_matched: 12,
                lib_traversals_skipped: 34,
                lib_summary_applies: 56,
                class_cache_hits: 78,
                prefilter_skips: 90,
                class_cache_entries: 11,
                draining: true,
            }),
            Response::DrainOk { jobs_served: 100 },
        ] {
            let back = response_round_trip(&resp);
            assert_eq!(back.encode(), resp.encode());
        }
    }

    #[test]
    fn every_event_kind_survives_the_wire() {
        for ev in [
            Event::StageStarted(StageKind::ExeId),
            Event::StageFinished(StageKind::FormCheck, Duration::from_nanos(17)),
            Event::Count(Counter::TaintQueries, 9),
            Event::Count(Counter::SlicesBatched, 4),
            Event::Count(Counter::PrefilterSkips, 2),
            Event::Count(Counter::ClassCacheHits, 8),
            Event::Diagnostic(Diagnostic::bare(StageKind::Cache, Severity::Warning, "w")),
        ] {
            let resp = Response::Event {
                job_id: 1,
                event: ev.clone(),
            };
            match response_round_trip(&resp) {
                Response::Event { event, .. } => assert_eq!(event, ev),
                other => panic!("decoded to {other:?}"),
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut body = Request::Status.encode();
        body.push(0);
        assert!(matches!(
            Request::decode(&body),
            Err(WireError::TrailingBytes { left: 1 })
        ));
        let mut body = Response::Accepted { job_id: 1 }.encode();
        body.extend_from_slice(&[1, 2]);
        assert_eq!(
            Response::decode(&body),
            Err(WireError::TrailingBytes { left: 2 })
        );
    }

    #[test]
    fn frame_io_round_trips_and_caps_length() {
        let mut buf = Vec::new();
        send_request(&mut buf, &Request::Cancel { job_id: 5 }).unwrap();
        let mut cursor = &buf[..];
        match read_request(&mut cursor).unwrap() {
            Request::Cancel { job_id } => assert_eq!(job_id, 5),
            other => panic!("decoded to {other:?}"),
        }
        // A second read on the drained stream reports a clean close.
        assert_eq!(read_frame(&mut cursor), Err(WireError::ConnectionClosed));

        // A hostile length prefix is refused before allocation.
        let huge = (MAX_FRAME as u32 + 1).to_le_bytes();
        assert_eq!(
            read_frame(&mut &huge[..]),
            Err(WireError::FrameTooLarge {
                len: MAX_FRAME as u64 + 1
            })
        );
    }

    #[test]
    fn bad_tags_error_cleanly() {
        assert!(Request::decode(&[99]).is_err());
        assert!(Response::decode(&[99]).is_err());
        assert!(Request::decode(&[]).is_err());
        // Submit with an invalid image tag.
        assert!(Request::decode(&[1, 7]).is_err());
        // Event with an invalid counter tag.
        let mut body = vec![3];
        body.extend_from_slice(&1u64.to_le_bytes());
        body.push(2); // Event::Count
        body.push(200); // bad counter tag
        body.extend_from_slice(&1u64.to_le_bytes());
        assert!(Response::decode(&body).is_err());
    }
}
