//! The resident analysis daemon: TCP accept loop, admission-controlled
//! job queue, worker pool and a fixed-size connection multiplexer.
//!
//! # Architecture
//!
//! ```text
//!            accept loop (non-blocking poll)
//!                 │ round-robin handoff to a fixed io-shard pool
//!                 ▼
//!   io shards ── admission control ──▶ bounded FIFO queue ──▶ workers
//!     │  sweep every connection:│ reject / cache hit            │
//!     │  flush + read + parse   ▼                               ▼
//!     └──◀─── per-connection outbound frame queues ◀────────────┘
//! ```
//!
//! Connections are *multiplexed*: a fixed pool of io-shard threads
//! ([`ServerConfig::io_threads`], default 2) owns every socket. Each
//! shard sweeps its connections — flushing queued response frames with
//! non-blocking writes, reading whatever bytes are available,
//! reassembling length-prefixed frames and dispatching them inline —
//! then parks on a condvar with a short timeout. Workers never touch a
//! socket; they append pre-encoded frames to a connection's outbound
//! queue and wake its shard, so the server holds hundreds of mostly
//! idle connections with a handful of threads, and interleaved job
//! completions never interleave bytes on the wire.
//!
//! Admission control is explicit and structured: a full queue, a hit on
//! the per-connection in-flight cap, or a draining server each answer
//! with a [`Response::Rejected`] carrying a machine-readable
//! [`RejectReason`] — a client is never left hanging. Accepted jobs run
//! [`analyze_firmware_cancellable`] under a per-job [`CancelToken`]
//! (deadline-armed when the submit asked for one), and the served
//! analysis is the FRAC [`put_analysis`] encoding — byte-identical to
//! what a local `analyze` of the same image, config and model produces.
//!
//! A `Drain` request must block until the queue empties without
//! stalling the other connections on its shard, so it is parked on a
//! dedicated waiter thread — the one place the multiplexer still
//! spawns per-request.
//!
//! [`put_analysis`]: firmres_cache::codec::put_analysis

use crate::wire::{
    JobState, RejectReason, Request, Response, ServiceStatus, SubmitImage, MAX_FRAME,
    PROTOCOL_VERSION,
};
use firmres::{
    analyze_firmware_cancellable, analyze_packed, AnalysisConfig, CancelToken, Error, FnObserver,
    NullObserver, Observer,
};
use firmres_cache::codec::put_analysis;
use firmres_cache::{AnalysisCache, CacheKey, StorePolicy};
use firmres_firmware::FirmwareImage;
use firmres_semantics::Classifier;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// How long the accept loop sleeps between polls of the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(10);

/// How long an io shard parks when a sweep made no progress. Worker
/// completions and new connections wake the shard immediately; this
/// bounds only the latency of *request* arrival on an idle socket.
const SHARD_PARK: Duration = Duration::from_millis(1);

/// How long a shard keeps flushing queued frames after shutdown before
/// abandoning unresponsive clients.
const FINAL_FLUSH: Duration = Duration::from_secs(3);

/// Most bytes one connection may pull off its socket in a single sweep
/// — keeps a fire-hosing client from starving its shard siblings.
const READ_QUANTUM: usize = 256 * 1024;

/// Tuning for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads draining the job queue. `0` is a degenerate but
    /// well-defined configuration — jobs are admitted and queued but
    /// never start — used by the admission-control tests.
    pub workers: usize,
    /// Message-unit parallelism inside one job (the `jobs` argument of
    /// the pipeline; does not change output).
    pub unit_jobs: usize,
    /// Io-shard threads multiplexing the sockets. `0` is clamped to 1.
    pub io_threads: usize,
    /// Queue capacity. A submit that finds the queue at capacity is
    /// rejected with [`RejectReason::QueueFull`], never blocked.
    pub queue_cap: usize,
    /// Maximum unfinished jobs one connection may have in flight.
    pub conn_inflight_cap: u32,
    /// The back-off hint carried by [`RejectReason::QueueFull`].
    pub retry_after_ms: u64,
    /// Analysis-cache directory. `None` disables caching (every submit
    /// runs the pipeline; hash submits are always rejected).
    pub cache_dir: Option<PathBuf>,
    /// Store policy (shards, eviction budget, watermarks) applied to
    /// the cache directory. The default is the historical unbounded
    /// flat store.
    pub store: StorePolicy,
    /// Semantics classifier applied to every job, or `None` for the
    /// keyword fallback — part of the cache identity, so it must match
    /// the local run a served result is compared against.
    pub classifier: Option<Classifier>,
    /// Known-library index overlaid onto every job's taint config
    /// (`--libid` / the `[libid]` config section). Part of the cache
    /// identity: the index fingerprint is folded into every key, so an
    /// index-less client run never shares entries with an indexed one.
    pub lib_index: Option<Arc<firmres_dataflow::LibIndex>>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 1,
            unit_jobs: 1,
            io_threads: 2,
            queue_cap: 32,
            conn_inflight_cap: 8,
            retry_after_ms: 250,
            cache_dir: None,
            store: StorePolicy::default(),
            classifier: None,
            lib_index: None,
        }
    }
}

/// Monotonic server counters, updated with relaxed atomics (they are
/// operator telemetry, not synchronization).
#[derive(Debug, Default)]
struct ServiceCounters {
    jobs_served: AtomicU64,
    jobs_rejected: AtomicU64,
    jobs_cancelled: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    unit_hits: AtomicU64,
    unit_misses: AtomicU64,
    lib_fns_matched: AtomicU64,
    lib_traversals_skipped: AtomicU64,
    lib_summary_applies: AtomicU64,
}

// ---- connection handles --------------------------------------------------

/// Wake-up latch for one io shard: senders set the flag and notify, the
/// shard consumes it (or times out) between sweeps.
#[derive(Default)]
struct ShardWake {
    flag: Mutex<bool>,
    cv: Condvar,
}

impl ShardWake {
    fn wake(&self) {
        let mut flag = self.flag.lock().expect("wake lock");
        *flag = true;
        self.cv.notify_one();
    }

    fn park(&self, timeout: Duration) {
        let mut flag = self.flag.lock().expect("wake lock");
        if !*flag {
            flag = self.cv.wait_timeout(flag, timeout).expect("wake lock").0;
        }
        *flag = false;
    }
}

/// The mutable half of a connection that producers (io shard, workers,
/// the drain waiter) share.
#[derive(Default)]
struct ConnState {
    /// Complete wire frames (length prefix included) awaiting flush.
    outbound: VecDeque<Vec<u8>>,
    /// Set when the socket is gone: frames are dropped instead of
    /// queued, so a worker finishing a job for a dead client never
    /// grows an unbounded queue. The job outcome is still counted —
    /// there is just nobody left to tell.
    closed: bool,
    /// Set to finish the conversation: the shard flushes what is
    /// queued, then closes the socket.
    close_after_flush: bool,
}

/// A cloneable sender for one connection's outbound frame stream —
/// the multiplexer's replacement for the old per-connection writer
/// thread and its `mpsc` channel.
#[derive(Clone)]
struct ConnHandle {
    state: Arc<parking_lot::Mutex<ConnState>>,
    wake: Arc<ShardWake>,
}

impl ConnHandle {
    fn send(&self, response: &Response) {
        let body = response.encode();
        let mut frame = Vec::with_capacity(4 + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&body);
        {
            let mut st = self.state.lock();
            if st.closed {
                return;
            }
            st.outbound.push_back(frame);
        }
        self.wake.wake();
    }
}

/// Encode and enqueue one response frame for a connection.
fn send(reply: &ConnHandle, response: &Response) {
    reply.send(response);
}

/// One admitted job waiting in (or pulled from) the queue.
struct Job {
    id: u64,
    packed: Vec<u8>,
    config: AnalysisConfig,
    want_events: bool,
    token: CancelToken,
    reply: ConnHandle,
    conn_inflight: Arc<AtomicU32>,
}

/// The queue proper plus the worker-liveness accounting that must sit
/// under the same lock for the drain wait to be race-free.
#[derive(Default)]
struct QueueState {
    queue: VecDeque<Job>,
    running: u32,
    stop: bool,
}

struct Shared {
    qs: Mutex<QueueState>,
    /// Workers wait here for work (or the stop flag).
    work_cv: Condvar,
    /// Drain waits here for `queue empty && running == 0`.
    idle_cv: Condvar,
    draining: AtomicBool,
    shutdown: AtomicBool,
    next_job_id: AtomicU64,
    counters: ServiceCounters,
    /// Cancel tokens of currently running jobs, by job id.
    running_tokens: parking_lot::Mutex<HashMap<u64, CancelToken>>,
    cache: Option<AnalysisCache>,
    classifier: Option<Classifier>,
    cfg: ServerConfig,
}

impl Shared {
    fn status(&self) -> ServiceStatus {
        // The classification cache keeps its own atomics; snapshot them
        // here rather than mirroring into ServiceCounters so the numbers
        // can never drift from what the cache actually holds.
        let class = self
            .cache
            .as_ref()
            .map(|c| c.class_cache_stats())
            .unwrap_or_default();
        let qs = self.qs.lock().expect("queue lock");
        ServiceStatus {
            queue_depth: qs.queue.len() as u32,
            queue_cap: self.cfg.queue_cap as u32,
            inflight: qs.running,
            jobs_served: self.counters.jobs_served.load(Ordering::Relaxed),
            jobs_rejected: self.counters.jobs_rejected.load(Ordering::Relaxed),
            jobs_cancelled: self.counters.jobs_cancelled.load(Ordering::Relaxed),
            cache_hits: self.counters.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.counters.cache_misses.load(Ordering::Relaxed),
            unit_hits: self.counters.unit_hits.load(Ordering::Relaxed),
            unit_misses: self.counters.unit_misses.load(Ordering::Relaxed),
            lib_fns_matched: self.counters.lib_fns_matched.load(Ordering::Relaxed),
            lib_traversals_skipped: self.counters.lib_traversals_skipped.load(Ordering::Relaxed),
            lib_summary_applies: self.counters.lib_summary_applies.load(Ordering::Relaxed),
            class_cache_hits: class.hits,
            prefilter_skips: class.prefilter_skips,
            class_cache_entries: class.entries,
            draining: self.draining.load(Ordering::Acquire),
        }
    }

    fn reject(&self, reply: &ConnHandle, reason: RejectReason) {
        self.counters.jobs_rejected.fetch_add(1, Ordering::Relaxed);
        send(reply, &Response::Rejected { reason });
    }
}

/// A resident FIRMRES analysis daemon bound to a TCP address.
///
/// [`Server::run`] blocks serving connections until a client drains it;
/// bind on port 0 and pass [`Server::local_addr`] to clients for
/// ephemeral-port setups (the pattern the end-to-end tests use).
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind the daemon to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral
    /// port). Opening the cache directory sweeps orphans and, when an
    /// eviction budget is configured, surveys the store's occupancy.
    pub fn bind(addr: impl ToSocketAddrs, cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            qs: Mutex::new(QueueState::default()),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            next_job_id: AtomicU64::new(1),
            counters: ServiceCounters::default(),
            running_tokens: parking_lot::Mutex::new(HashMap::new()),
            cache: cfg
                .cache_dir
                .as_ref()
                .map(|dir| AnalysisCache::with_policy(dir, cfg.store.clone())),
            classifier: cfg.classifier.clone(),
            cfg,
        });
        Ok(Server { listener, shared })
    }

    /// The address the daemon actually listens on.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve connections until drained, then return the final counter
    /// snapshot. Worker threads and every io shard are joined before
    /// this returns.
    pub fn run(self) -> ServiceStatus {
        let workers: Vec<_> = (0..self.shared.cfg.workers)
            .map(|_| {
                let shared = Arc::clone(&self.shared);
                thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        // The io-shard pool: each shard owns an inbox of newly accepted
        // sockets and a wake latch shared with every producer that can
        // create work for it.
        let shard_count = self.shared.cfg.io_threads.max(1);
        let mut inboxes = Vec::with_capacity(shard_count);
        let mut wakes = Vec::with_capacity(shard_count);
        let shards: Vec<_> = (0..shard_count)
            .map(|_| {
                let inbox = Arc::new(parking_lot::Mutex::new(Vec::<TcpStream>::new()));
                let wake = Arc::new(ShardWake::default());
                inboxes.push(Arc::clone(&inbox));
                wakes.push(Arc::clone(&wake));
                let shared = Arc::clone(&self.shared);
                thread::spawn(move || io_shard_loop(&shared, &inbox, &wake))
            })
            .collect();

        let mut next_shard = 0usize;
        loop {
            if self.shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    inboxes[next_shard].lock().push(stream);
                    wakes[next_shard].wake();
                    next_shard = (next_shard + 1) % shard_count;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(POLL_INTERVAL);
                }
                Err(_) => thread::sleep(POLL_INTERVAL),
            }
        }

        // Shutdown: release the workers, then the shards (they flush
        // what is queued, bounded by FINAL_FLUSH, and exit).
        {
            let mut qs = self.shared.qs.lock().expect("queue lock");
            qs.stop = true;
            self.shared.work_cv.notify_all();
        }
        for w in workers {
            let _ = w.join();
        }
        for wake in &wakes {
            wake.wake();
        }
        for s in shards {
            let _ = s.join();
        }
        self.shared.status()
    }
}

// ---- workers ------------------------------------------------------------

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut qs = shared.qs.lock().expect("queue lock");
            loop {
                if qs.stop {
                    return;
                }
                if let Some(job) = qs.queue.pop_front() {
                    qs.running += 1;
                    break job;
                }
                qs = shared.work_cv.wait(qs).expect("queue lock");
            }
        };
        run_job(shared, job);
        let mut qs = shared.qs.lock().expect("queue lock");
        qs.running -= 1;
        if qs.queue.is_empty() && qs.running == 0 {
            shared.idle_cv.notify_all();
        }
    }
}

fn run_job(shared: &Shared, mut job: Job) {
    shared
        .running_tokens
        .lock()
        .insert(job.id, job.token.clone());

    // Overlay the server's known-library index onto the client-supplied
    // config before anything keys or runs: the cache key and the
    // pipeline must see the same effective configuration.
    if let Some(index) = &shared.cfg.lib_index {
        job.config.taint.libid = firmres_dataflow::LibId::On;
        job.config.taint.lib_index = Some(Arc::clone(index));
    }

    let classifier = shared.classifier.as_ref();
    let outcome = match FirmwareImage::unpack(&job.packed) {
        Ok(fw) => {
            let reply = job.reply.clone();
            let job_id = job.id;
            let mut streaming;
            let mut silent = NullObserver;
            let observer: &mut dyn Observer = if job.want_events {
                streaming = FnObserver::new(move |event| {
                    send(&reply, &Response::Event { job_id, event });
                });
                &mut streaming
            } else {
                &mut silent
            };
            // With a cache configured, a miss goes through the
            // unit-granular funnel: the daemon diffs the submitted image
            // against its stored artifacts automatically and re-runs
            // only the dirty units. Without one, the plain pipeline.
            match &shared.cache {
                Some(cache) => firmres_cache::analyze_image_units_incremental(
                    &fw,
                    classifier,
                    &job.config,
                    shared.cfg.unit_jobs,
                    cache,
                    observer,
                    Some(&job.token),
                )
                .map(|out| {
                    let c = &shared.counters;
                    c.unit_hits
                        .fetch_add(out.stats.unit_hits, Ordering::Relaxed);
                    c.unit_misses
                        .fetch_add(out.stats.unit_misses, Ordering::Relaxed);
                    firmres_cache::codec::get_analysis(&mut firmres_cache::codec::Reader::new(
                        &out.bytes,
                    ))
                    .ok()
                })
                .and_then(|decoded| match decoded {
                    Some(analysis) => Ok(analysis),
                    // Funnel bytes always decode; re-run defensively.
                    None => analyze_firmware_cancellable(
                        &fw,
                        classifier,
                        &job.config,
                        shared.cfg.unit_jobs,
                        &mut NullObserver,
                        &job.token,
                    ),
                }),
                None => analyze_firmware_cancellable(
                    &fw,
                    classifier,
                    &job.config,
                    shared.cfg.unit_jobs,
                    observer,
                    &job.token,
                ),
            }
        }
        // An unpackable image degrades exactly as the local pipeline
        // does: a stub analysis carrying an Input diagnostic.
        Err(_) => Ok(analyze_packed(&job.packed, classifier, &job.config)),
    };

    shared.running_tokens.lock().remove(&job.id);

    match outcome {
        Ok(analysis) => {
            let c = &shared.counters;
            c.lib_fns_matched
                .fetch_add(analysis.counters.lib_fns_matched, Ordering::Relaxed);
            c.lib_traversals_skipped
                .fetch_add(analysis.counters.lib_traversals_skipped, Ordering::Relaxed);
            c.lib_summary_applies
                .fetch_add(analysis.counters.lib_summary_applies, Ordering::Relaxed);
            if let Some(cache) = &shared.cache {
                let key = CacheKey::of_packed(&job.packed, classifier, &job.config);
                // A full store or unwritable directory degrades the
                // cache, not the response.
                let _ = cache.store(&key, &analysis);
            }
            let mut payload = Vec::new();
            put_analysis(&mut payload, &analysis);
            shared.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
            shared.counters.jobs_served.fetch_add(1, Ordering::Relaxed);
            send(
                &job.reply,
                &Response::Analysis {
                    job_id: job.id,
                    from_cache: false,
                    payload,
                },
            );
        }
        Err(Error::Cancelled { deadline_exceeded }) => {
            shared
                .counters
                .jobs_cancelled
                .fetch_add(1, Ordering::Relaxed);
            send(
                &job.reply,
                &Response::Cancelled {
                    job_id: job.id,
                    reason: if deadline_exceeded {
                        "deadline exceeded".to_string()
                    } else {
                        "cancelled".to_string()
                    },
                },
            );
        }
        Err(e) => {
            // The cancellable pipeline has no other error source today;
            // report rather than crash the worker if that changes.
            send(
                &job.reply,
                &Response::Cancelled {
                    job_id: job.id,
                    reason: format!("analysis failed: {e}"),
                },
            );
        }
    }
    job.conn_inflight.fetch_sub(1, Ordering::AcqRel);
}

// ---- the multiplexer ----------------------------------------------------

/// One socket as an io shard sees it: the stream, its shared outbound
/// handle, and the reassembly / flush state the sweep loop threads
/// through.
struct Conn {
    stream: TcpStream,
    handle: ConnHandle,
    /// Unparsed inbound bytes (partial frames carry across sweeps).
    rbuf: Vec<u8>,
    /// The frame currently being written, and how much of it went out.
    wbuf: Vec<u8>,
    woff: usize,
    hello_done: bool,
    /// Stop parsing input (post-Drain, or after a fatal protocol
    /// error); the socket stays open until the outbound queue drains.
    stop_reading: bool,
    /// Clean EOF seen; the connection closes once every in-flight job
    /// has answered and the answers are flushed.
    eof: bool,
    /// Io error: drop the connection at the end of the sweep.
    dead: bool,
    conn_inflight: Arc<AtomicU32>,
}

impl Conn {
    fn flushed(&self) -> bool {
        self.woff == self.wbuf.len() && self.handle.state.lock().outbound.is_empty()
    }
}

fn io_shard_loop(
    shared: &Arc<Shared>,
    inbox: &parking_lot::Mutex<Vec<TcpStream>>,
    wake: &Arc<ShardWake>,
) {
    let mut conns: Vec<Conn> = Vec::new();
    loop {
        for stream in inbox.lock().drain(..) {
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            // Response frames are one write each; without NODELAY every
            // round-trip rides a delayed-ACK timer.
            let _ = stream.set_nodelay(true);
            conns.push(Conn {
                stream,
                handle: ConnHandle {
                    state: Arc::new(parking_lot::Mutex::new(ConnState::default())),
                    wake: Arc::clone(wake),
                },
                rbuf: Vec::new(),
                wbuf: Vec::new(),
                woff: 0,
                hello_done: false,
                stop_reading: false,
                eof: false,
                dead: false,
                conn_inflight: Arc::new(AtomicU32::new(0)),
            });
        }

        let mut progressed = false;
        for conn in &mut conns {
            progressed |= flush_conn(conn);
            if !conn.dead && !conn.stop_reading && !conn.eof {
                progressed |= read_conn(conn);
                progressed |= dispatch_frames(shared, conn);
            }
            // Give frames queued by the dispatch a same-sweep flush:
            // the common request→response round trip never waits for
            // the next park cycle.
            progressed |= flush_conn(conn);
        }

        conns.retain(|conn| {
            let close_requested = conn.handle.state.lock().close_after_flush;
            let done = conn.flushed()
                && (close_requested
                    || (conn.eof && conn.conn_inflight.load(Ordering::Acquire) == 0));
            if conn.dead || done {
                conn.handle.state.lock().closed = true;
                false
            } else {
                true
            }
        });

        if shared.shutdown.load(Ordering::Acquire) {
            final_flush(&mut conns);
            return;
        }
        if !progressed {
            wake.park(SHARD_PARK);
        }
    }
}

/// Write queued frames until the socket would block. Returns whether
/// any bytes moved.
fn flush_conn(conn: &mut Conn) -> bool {
    let mut progressed = false;
    loop {
        if conn.woff == conn.wbuf.len() {
            let mut st = conn.handle.state.lock();
            match st.outbound.pop_front() {
                Some(frame) => {
                    drop(st);
                    conn.wbuf = frame;
                    conn.woff = 0;
                }
                None => return progressed,
            }
        }
        match conn.stream.write(&conn.wbuf[conn.woff..]) {
            Ok(0) => {
                conn.dead = true;
                return true;
            }
            Ok(n) => {
                conn.woff += n;
                progressed = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return progressed,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                return true;
            }
        }
    }
}

/// Pull available bytes into the reassembly buffer, up to the fairness
/// quantum. Returns whether anything arrived.
fn read_conn(conn: &mut Conn) -> bool {
    let mut buf = [0u8; 16 * 1024];
    let mut taken = 0usize;
    while taken < READ_QUANTUM {
        match conn.stream.read(&mut buf) {
            Ok(0) => {
                conn.eof = true;
                break;
            }
            Ok(n) => {
                conn.rbuf.extend_from_slice(&buf[..n]);
                taken += n;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    taken > 0
}

/// Reassemble and dispatch every complete frame in the buffer. Returns
/// whether any frame was handled.
fn dispatch_frames(shared: &Arc<Shared>, conn: &mut Conn) -> bool {
    let mut consumed = 0usize;
    let mut progressed = false;
    while !conn.stop_reading && !conn.dead {
        let pending = &conn.rbuf[consumed..];
        if pending.len() < 4 {
            break;
        }
        let len = u32::from_le_bytes(pending[..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME {
            // Same contract as the old per-connection reader: oversized
            // frames answer BadRequest and end the conversation.
            shared.reject(
                &conn.handle,
                RejectReason::BadRequest {
                    detail: format!("frame of {len} bytes exceeds the cap"),
                },
            );
            close_conn(conn);
            break;
        }
        if pending.len() < 4 + len {
            break;
        }
        let body = pending[4..4 + len].to_vec();
        consumed += 4 + len;
        progressed = true;
        dispatch_one(shared, conn, &body);
    }
    if consumed > 0 {
        conn.rbuf.drain(..consumed);
    }
    progressed
}

/// Finish the conversation: stop parsing, flush what is queued, close.
fn close_conn(conn: &mut Conn) {
    conn.stop_reading = true;
    conn.handle.state.lock().close_after_flush = true;
}

fn dispatch_one(shared: &Arc<Shared>, conn: &mut Conn, body: &[u8]) {
    // The handshake must come first; anything else is a protocol error.
    if !conn.hello_done {
        match Request::decode(body) {
            Ok(Request::Hello { version }) if version == PROTOCOL_VERSION => {
                conn.hello_done = true;
                send(
                    &conn.handle,
                    &Response::HelloOk {
                        version: PROTOCOL_VERSION,
                    },
                );
            }
            Ok(Request::Hello { .. }) => {
                shared.reject(
                    &conn.handle,
                    RejectReason::VersionMismatch {
                        server: PROTOCOL_VERSION,
                    },
                );
                close_conn(conn);
            }
            Ok(_) => {
                shared.reject(
                    &conn.handle,
                    RejectReason::BadRequest {
                        detail: "first frame must be Hello".to_string(),
                    },
                );
                close_conn(conn);
            }
            Err(e) => {
                shared.reject(
                    &conn.handle,
                    RejectReason::BadRequest {
                        detail: e.to_string(),
                    },
                );
                close_conn(conn);
            }
        }
        return;
    }
    match Request::decode(body) {
        Ok(Request::Hello { .. }) => shared.reject(
            &conn.handle,
            RejectReason::BadRequest {
                detail: "duplicate Hello".to_string(),
            },
        ),
        Ok(Request::Submit {
            image,
            config,
            want_events,
            deadline_ms,
        }) => handle_submit(
            shared,
            &conn.handle,
            &conn.conn_inflight,
            image,
            config,
            want_events,
            deadline_ms,
        ),
        Ok(Request::Status) => send(&conn.handle, &Response::StatusInfo(shared.status())),
        Ok(Request::Cancel { job_id }) => handle_cancel(shared, &conn.handle, job_id),
        Ok(Request::Drain) => {
            // Drain blocks until the queue idles. That wait must not
            // stall the shard's other connections, so it gets its own
            // waiter thread; the shard stops parsing this socket and
            // closes it once DrainOk is flushed.
            conn.stop_reading = true;
            let shared = Arc::clone(shared);
            let handle = conn.handle.clone();
            thread::spawn(move || {
                handle_drain(&shared, &handle);
                handle.state.lock().close_after_flush = true;
                handle.wake.wake();
            });
        }
        Err(e) => shared.reject(
            &conn.handle,
            RejectReason::BadRequest {
                detail: e.to_string(),
            },
        ),
    }
}

/// Post-shutdown epilogue: keep writing until every surviving client
/// has its queued frames (the drainer's `DrainOk` above all), bounded
/// by [`FINAL_FLUSH`].
fn final_flush(conns: &mut [Conn]) {
    let deadline = Instant::now() + FINAL_FLUSH;
    loop {
        let mut pending = false;
        for conn in conns.iter_mut() {
            if conn.dead {
                continue;
            }
            flush_conn(conn);
            pending |= !conn.dead && !conn.flushed();
        }
        if !pending || Instant::now() >= deadline {
            break;
        }
        thread::sleep(SHARD_PARK);
    }
    for conn in conns {
        conn.handle.state.lock().closed = true;
    }
}

// ---- request handlers ----------------------------------------------------

fn handle_submit(
    shared: &Shared,
    tx: &ConnHandle,
    conn_inflight: &Arc<AtomicU32>,
    image: SubmitImage,
    config: AnalysisConfig,
    want_events: bool,
    deadline_ms: u64,
) {
    if shared.draining.load(Ordering::Acquire) {
        return shared.reject(tx, RejectReason::Draining);
    }

    let classifier = shared.classifier.as_ref();
    let packed = match image {
        SubmitImage::Bytes(packed) => {
            // Cache first: a warm hit never touches the queue.
            if let Some(cache) = &shared.cache {
                let key = CacheKey::of_packed(&packed, classifier, &config);
                if let Ok(entry) = cache.load(&key) {
                    return serve_hit(shared, tx, &entry.analysis);
                }
            }
            packed
        }
        SubmitImage::Hash(hash) => {
            // Hash-addressed submits are cache-only by construction:
            // the daemon cannot analyze bytes it was never sent.
            if let Some(cache) = &shared.cache {
                let key = CacheKey::of_hash(hash, classifier, &config);
                if let Ok(entry) = cache.load(&key) {
                    return serve_hit(shared, tx, &entry.analysis);
                }
            }
            return shared.reject(tx, RejectReason::UnknownImage);
        }
    };

    let cap = shared.cfg.conn_inflight_cap;
    if conn_inflight.load(Ordering::Acquire) >= cap {
        return shared.reject(tx, RejectReason::InFlightCap { cap });
    }

    let mut qs = shared.qs.lock().expect("queue lock");
    if qs.queue.len() >= shared.cfg.queue_cap {
        let depth = qs.queue.len() as u32;
        drop(qs);
        return shared.reject(
            tx,
            RejectReason::QueueFull {
                depth,
                retry_after_ms: shared.cfg.retry_after_ms,
            },
        );
    }
    let job_id = shared.next_job_id.fetch_add(1, Ordering::Relaxed);
    let token = if deadline_ms > 0 {
        CancelToken::with_deadline(Duration::from_millis(deadline_ms))
    } else {
        CancelToken::new()
    };
    conn_inflight.fetch_add(1, Ordering::AcqRel);
    // Accepted goes on the connection's outbound queue before the job
    // becomes visible to any worker, so no streamed Event frame can
    // precede it.
    send(tx, &Response::Accepted { job_id });
    qs.queue.push_back(Job {
        id: job_id,
        packed,
        config,
        want_events,
        token,
        reply: tx.clone(),
        conn_inflight: Arc::clone(conn_inflight),
    });
    shared.work_cv.notify_one();
    drop(qs);
}

/// Answer a submit straight from the cache: `Accepted` then a terminal
/// `Analysis` frame re-encoded through the same codec a pipeline run
/// uses, so hit and miss payloads are byte-comparable.
fn serve_hit(shared: &Shared, tx: &ConnHandle, analysis: &firmres::FirmwareAnalysis) {
    let job_id = shared.next_job_id.fetch_add(1, Ordering::Relaxed);
    let mut payload = Vec::new();
    put_analysis(&mut payload, analysis);
    shared.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
    shared.counters.jobs_served.fetch_add(1, Ordering::Relaxed);
    send(tx, &Response::Accepted { job_id });
    send(
        tx,
        &Response::Analysis {
            job_id,
            from_cache: true,
            payload,
        },
    );
}

fn handle_cancel(shared: &Shared, tx: &ConnHandle, job_id: u64) {
    // Queued first: remove the job before a worker can claim it. The
    // terminal Cancelled frame goes out under the queue lock, before
    // the idle condvar fires, so a drain blocked on this job cannot
    // slip its DrainOk ahead of the job's terminal frame.
    let queued = {
        let mut qs = shared.qs.lock().expect("queue lock");
        let mut removed = None;
        qs.queue.retain(|job| {
            if job.id == job_id {
                removed = Some((job.reply.clone(), Arc::clone(&job.conn_inflight)));
                false
            } else {
                true
            }
        });
        if let Some((reply, conn_inflight)) = &removed {
            shared
                .counters
                .jobs_cancelled
                .fetch_add(1, Ordering::Relaxed);
            send(
                reply,
                &Response::Cancelled {
                    job_id,
                    reason: "cancelled while queued".to_string(),
                },
            );
            conn_inflight.fetch_sub(1, Ordering::AcqRel);
        }
        if qs.queue.is_empty() && qs.running == 0 {
            shared.idle_cv.notify_all();
        }
        removed.is_some()
    };
    if queued {
        return send(
            tx,
            &Response::CancelOk {
                job_id,
                state: JobState::Queued,
            },
        );
    }
    if let Some(token) = shared.running_tokens.lock().get(&job_id) {
        token.cancel();
        return send(
            tx,
            &Response::CancelOk {
                job_id,
                state: JobState::Running,
            },
        );
    }
    send(
        tx,
        &Response::CancelOk {
            job_id,
            state: JobState::Unknown,
        },
    );
}

fn handle_drain(shared: &Shared, tx: &ConnHandle) {
    shared.draining.store(true, Ordering::Release);
    {
        let mut qs = shared.qs.lock().expect("queue lock");
        while !(qs.queue.is_empty() && qs.running == 0) {
            qs = shared.idle_cv.wait(qs).expect("queue lock");
        }
        qs.stop = true;
        shared.work_cv.notify_all();
    }
    send(
        tx,
        &Response::DrainOk {
            jobs_served: shared.counters.jobs_served.load(Ordering::Relaxed),
        },
    );
    shared.shutdown.store(true, Ordering::Release);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_usable() {
        let cfg = ServerConfig::default();
        assert!(cfg.workers >= 1);
        assert!(cfg.io_threads >= 1);
        assert!(cfg.queue_cap >= 1);
        assert!(cfg.conn_inflight_cap >= 1);
        assert!(cfg.cache_dir.is_none());
        assert_eq!(cfg.store, StorePolicy::default());
    }

    #[test]
    fn status_snapshot_starts_clean() {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
        let status = server.shared.status();
        assert_eq!(status.queue_depth, 0);
        assert_eq!(status.queue_cap, ServerConfig::default().queue_cap as u32);
        assert_eq!(status.inflight, 0);
        assert_eq!(status.jobs_served, 0);
        assert!(!status.draining);
        assert!(server.local_addr().expect("addr").port() > 0);
    }
}
