//! The resident analysis daemon: TCP accept loop, admission-controlled
//! job queue, worker pool and per-connection response streams.
//!
//! # Architecture
//!
//! ```text
//!            accept loop (non-blocking poll)
//!                 │ one handler thread per connection
//!                 ▼
//!   reader ── admission control ──▶ bounded FIFO queue ──▶ workers
//!     │            │ reject / cache hit                      │
//!     ▼            ▼                                         ▼
//!   writer ◀── encoded Response frames (mpsc) ◀──────────────┘
//! ```
//!
//! Each connection gets a dedicated writer thread owning the socket's
//! write half; the reader thread and every worker processing that
//! connection's jobs send pre-encoded frames through an `mpsc` channel,
//! so interleaved job completions never interleave bytes on the wire.
//!
//! Admission control is explicit and structured: a full queue, a hit on
//! the per-connection in-flight cap, or a draining server each answer
//! with a [`Response::Rejected`] carrying a machine-readable
//! [`RejectReason`] — a client is never left hanging. Accepted jobs run
//! [`analyze_firmware_cancellable`] under a per-job [`CancelToken`]
//! (deadline-armed when the submit asked for one), and the served
//! analysis is the FRAC [`put_analysis`] encoding — byte-identical to
//! what a local `analyze` of the same image, config and model produces.
//!
//! [`put_analysis`]: firmres_cache::codec::put_analysis

use crate::wire::{
    self, JobState, RejectReason, Request, Response, ServiceStatus, SubmitImage, WireError,
    MAX_FRAME, PROTOCOL_VERSION,
};
use firmres::{
    analyze_firmware_cancellable, analyze_packed, AnalysisConfig, CancelToken, Error, FnObserver,
    NullObserver, Observer,
};
use firmres_cache::codec::put_analysis;
use firmres_cache::{AnalysisCache, CacheKey};
use firmres_firmware::FirmwareImage;
use firmres_semantics::Classifier;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

/// How long the accept loop and connection readers sleep between polls
/// of the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(10);

/// Tuning for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads draining the job queue. `0` is a degenerate but
    /// well-defined configuration — jobs are admitted and queued but
    /// never start — used by the admission-control tests.
    pub workers: usize,
    /// Message-unit parallelism inside one job (the `jobs` argument of
    /// the pipeline; does not change output).
    pub unit_jobs: usize,
    /// Queue capacity. A submit that finds the queue at capacity is
    /// rejected with [`RejectReason::QueueFull`], never blocked.
    pub queue_cap: usize,
    /// Maximum unfinished jobs one connection may have in flight.
    pub conn_inflight_cap: u32,
    /// The back-off hint carried by [`RejectReason::QueueFull`].
    pub retry_after_ms: u64,
    /// Analysis-cache directory. `None` disables caching (every submit
    /// runs the pipeline; hash submits are always rejected).
    pub cache_dir: Option<PathBuf>,
    /// Semantics classifier applied to every job, or `None` for the
    /// keyword fallback — part of the cache identity, so it must match
    /// the local run a served result is compared against.
    pub classifier: Option<Classifier>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 1,
            unit_jobs: 1,
            queue_cap: 32,
            conn_inflight_cap: 8,
            retry_after_ms: 250,
            cache_dir: None,
            classifier: None,
        }
    }
}

/// Monotonic server counters, updated with relaxed atomics (they are
/// operator telemetry, not synchronization).
#[derive(Debug, Default)]
struct ServiceCounters {
    jobs_served: AtomicU64,
    jobs_rejected: AtomicU64,
    jobs_cancelled: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    unit_hits: AtomicU64,
    unit_misses: AtomicU64,
}

/// One admitted job waiting in (or pulled from) the queue.
struct Job {
    id: u64,
    packed: Vec<u8>,
    config: AnalysisConfig,
    want_events: bool,
    token: CancelToken,
    reply: mpsc::Sender<Vec<u8>>,
    conn_inflight: Arc<AtomicU32>,
}

/// The queue proper plus the worker-liveness accounting that must sit
/// under the same lock for the drain wait to be race-free.
#[derive(Default)]
struct QueueState {
    queue: VecDeque<Job>,
    running: u32,
    stop: bool,
}

struct Shared {
    qs: Mutex<QueueState>,
    /// Workers wait here for work (or the stop flag).
    work_cv: Condvar,
    /// Drain waits here for `queue empty && running == 0`.
    idle_cv: Condvar,
    draining: AtomicBool,
    shutdown: AtomicBool,
    next_job_id: AtomicU64,
    counters: ServiceCounters,
    /// Cancel tokens of currently running jobs, by job id.
    running_tokens: parking_lot::Mutex<HashMap<u64, CancelToken>>,
    cache: Option<AnalysisCache>,
    classifier: Option<Classifier>,
    cfg: ServerConfig,
}

impl Shared {
    fn status(&self) -> ServiceStatus {
        let qs = self.qs.lock().expect("queue lock");
        ServiceStatus {
            queue_depth: qs.queue.len() as u32,
            queue_cap: self.cfg.queue_cap as u32,
            inflight: qs.running,
            jobs_served: self.counters.jobs_served.load(Ordering::Relaxed),
            jobs_rejected: self.counters.jobs_rejected.load(Ordering::Relaxed),
            jobs_cancelled: self.counters.jobs_cancelled.load(Ordering::Relaxed),
            cache_hits: self.counters.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.counters.cache_misses.load(Ordering::Relaxed),
            unit_hits: self.counters.unit_hits.load(Ordering::Relaxed),
            unit_misses: self.counters.unit_misses.load(Ordering::Relaxed),
            draining: self.draining.load(Ordering::Acquire),
        }
    }

    fn reject(&self, reply: &mpsc::Sender<Vec<u8>>, reason: RejectReason) {
        self.counters.jobs_rejected.fetch_add(1, Ordering::Relaxed);
        send(reply, &Response::Rejected { reason });
    }
}

/// Encode and enqueue one response frame for a connection's writer.
/// A send to a hung-up connection is dropped silently: the job outcome
/// is still counted, there is just nobody left to tell.
fn send(reply: &mpsc::Sender<Vec<u8>>, response: &Response) {
    let _ = reply.send(response.encode());
}

/// A resident FIRMRES analysis daemon bound to a TCP address.
///
/// [`Server::run`] blocks serving connections until a client drains it;
/// bind on port 0 and pass [`Server::local_addr`] to clients for
/// ephemeral-port setups (the pattern the end-to-end tests use).
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind the daemon to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral
    /// port). The cache directory, if configured, is opened lazily by
    /// the store itself — no I/O happens here beyond the bind.
    pub fn bind(addr: impl ToSocketAddrs, cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            qs: Mutex::new(QueueState::default()),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            draining: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            next_job_id: AtomicU64::new(1),
            counters: ServiceCounters::default(),
            running_tokens: parking_lot::Mutex::new(HashMap::new()),
            cache: cfg.cache_dir.as_ref().map(AnalysisCache::new),
            classifier: cfg.classifier.clone(),
            cfg,
        });
        Ok(Server { listener, shared })
    }

    /// The address the daemon actually listens on.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve connections until drained, then return the final counter
    /// snapshot. Worker threads and every connection handler are joined
    /// before this returns.
    pub fn run(self) -> ServiceStatus {
        let workers: Vec<_> = (0..self.shared.cfg.workers)
            .map(|_| {
                let shared = Arc::clone(&self.shared);
                thread::spawn(move || worker_loop(&shared))
            })
            .collect();

        let mut conns = Vec::new();
        loop {
            if self.shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(&self.shared);
                    conns.push(thread::spawn(move || handle_connection(stream, &shared)));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(POLL_INTERVAL);
                }
                Err(_) => thread::sleep(POLL_INTERVAL),
            }
        }

        // Shutdown: release the workers, then the connection handlers
        // (their readers poll the shutdown flag and exit on their own).
        {
            let mut qs = self.shared.qs.lock().expect("queue lock");
            qs.stop = true;
            self.shared.work_cv.notify_all();
        }
        for w in workers {
            let _ = w.join();
        }
        for c in conns {
            let _ = c.join();
        }
        self.shared.status()
    }
}

// ---- workers ------------------------------------------------------------

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut qs = shared.qs.lock().expect("queue lock");
            loop {
                if qs.stop {
                    return;
                }
                if let Some(job) = qs.queue.pop_front() {
                    qs.running += 1;
                    break job;
                }
                qs = shared.work_cv.wait(qs).expect("queue lock");
            }
        };
        run_job(shared, job);
        let mut qs = shared.qs.lock().expect("queue lock");
        qs.running -= 1;
        if qs.queue.is_empty() && qs.running == 0 {
            shared.idle_cv.notify_all();
        }
    }
}

fn run_job(shared: &Shared, job: Job) {
    shared
        .running_tokens
        .lock()
        .insert(job.id, job.token.clone());

    let classifier = shared.classifier.as_ref();
    let outcome = match FirmwareImage::unpack(&job.packed) {
        Ok(fw) => {
            let reply = job.reply.clone();
            let job_id = job.id;
            let mut streaming;
            let mut silent = NullObserver;
            let observer: &mut dyn Observer = if job.want_events {
                streaming = FnObserver::new(move |event| {
                    send(&reply, &Response::Event { job_id, event });
                });
                &mut streaming
            } else {
                &mut silent
            };
            // With a cache configured, a miss goes through the
            // unit-granular funnel: the daemon diffs the submitted image
            // against its stored artifacts automatically and re-runs
            // only the dirty units. Without one, the plain pipeline.
            match &shared.cache {
                Some(cache) => firmres_cache::analyze_image_units_incremental(
                    &fw,
                    classifier,
                    &job.config,
                    shared.cfg.unit_jobs,
                    cache,
                    observer,
                    Some(&job.token),
                )
                .map(|out| {
                    let c = &shared.counters;
                    c.unit_hits
                        .fetch_add(out.stats.unit_hits, Ordering::Relaxed);
                    c.unit_misses
                        .fetch_add(out.stats.unit_misses, Ordering::Relaxed);
                    firmres_cache::codec::get_analysis(&mut firmres_cache::codec::Reader::new(
                        &out.bytes,
                    ))
                    .ok()
                })
                .and_then(|decoded| match decoded {
                    Some(analysis) => Ok(analysis),
                    // Funnel bytes always decode; re-run defensively.
                    None => analyze_firmware_cancellable(
                        &fw,
                        classifier,
                        &job.config,
                        shared.cfg.unit_jobs,
                        &mut NullObserver,
                        &job.token,
                    ),
                }),
                None => analyze_firmware_cancellable(
                    &fw,
                    classifier,
                    &job.config,
                    shared.cfg.unit_jobs,
                    observer,
                    &job.token,
                ),
            }
        }
        // An unpackable image degrades exactly as the local pipeline
        // does: a stub analysis carrying an Input diagnostic.
        Err(_) => Ok(analyze_packed(&job.packed, classifier, &job.config)),
    };

    shared.running_tokens.lock().remove(&job.id);

    match outcome {
        Ok(analysis) => {
            if let Some(cache) = &shared.cache {
                let key = CacheKey::of_packed(&job.packed, classifier, &job.config);
                // A full store or unwritable directory degrades the
                // cache, not the response.
                let _ = cache.store(&key, &analysis);
            }
            let mut payload = Vec::new();
            put_analysis(&mut payload, &analysis);
            shared.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
            shared.counters.jobs_served.fetch_add(1, Ordering::Relaxed);
            send(
                &job.reply,
                &Response::Analysis {
                    job_id: job.id,
                    from_cache: false,
                    payload,
                },
            );
        }
        Err(Error::Cancelled { deadline_exceeded }) => {
            shared
                .counters
                .jobs_cancelled
                .fetch_add(1, Ordering::Relaxed);
            send(
                &job.reply,
                &Response::Cancelled {
                    job_id: job.id,
                    reason: if deadline_exceeded {
                        "deadline exceeded".to_string()
                    } else {
                        "cancelled".to_string()
                    },
                },
            );
        }
        Err(e) => {
            // The cancellable pipeline has no other error source today;
            // report rather than crash the worker if that changes.
            send(
                &job.reply,
                &Response::Cancelled {
                    job_id: job.id,
                    reason: format!("analysis failed: {e}"),
                },
            );
        }
    }
    job.conn_inflight.fetch_sub(1, Ordering::AcqRel);
}

// ---- connections --------------------------------------------------------

/// Read one frame, polling the shutdown flag between attempts. Returns
/// `Ok(None)` on a clean close (EOF between frames) or server shutdown.
fn poll_read_frame(stream: &mut TcpStream, shared: &Shared) -> Result<Option<Vec<u8>>, WireError> {
    let mut len = [0u8; 4];
    let mut filled = 0;
    while filled < len.len() {
        if filled == 0 && shared.shutdown.load(Ordering::Acquire) {
            return Ok(None);
        }
        match stream.read(&mut len[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(WireError::Io("eof inside frame length".to_string())),
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e.to_string())),
        }
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(WireError::FrameTooLarge { len: len as u64 });
    }
    let mut body = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match stream.read(&mut body[filled..]) {
            Ok(0) => return Err(WireError::Io("eof inside frame body".to_string())),
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e.to_string())),
        }
    }
    Ok(Some(body))
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    // Response frames are small; without NODELAY every round-trip rides
    // a delayed-ACK timer.
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };

    // The writer thread serializes all frames for this connection;
    // everything else (reader, workers) sends encoded frames through tx.
    let (tx, rx) = mpsc::channel::<Vec<u8>>();
    let writer = thread::spawn(move || {
        let mut write_half = write_half;
        while let Ok(frame) = rx.recv() {
            if wire::write_frame(&mut write_half, &frame).is_err() {
                // Client gone: keep draining the channel so senders
                // never block on a dead connection.
                while rx.recv().is_ok() {}
                return;
            }
        }
    });

    serve_requests(&mut stream, shared, &tx);

    drop(tx);
    let _ = writer.join();
}

fn serve_requests(stream: &mut TcpStream, shared: &Shared, tx: &mpsc::Sender<Vec<u8>>) {
    // The handshake must come first; anything else is a protocol error.
    match poll_read_frame(stream, shared) {
        Ok(Some(body)) => match Request::decode(&body) {
            Ok(Request::Hello { version }) if version == PROTOCOL_VERSION => {
                send(
                    tx,
                    &Response::HelloOk {
                        version: PROTOCOL_VERSION,
                    },
                );
            }
            Ok(Request::Hello { .. }) => {
                shared.reject(
                    tx,
                    RejectReason::VersionMismatch {
                        server: PROTOCOL_VERSION,
                    },
                );
                return;
            }
            Ok(_) => {
                shared.reject(
                    tx,
                    RejectReason::BadRequest {
                        detail: "first frame must be Hello".to_string(),
                    },
                );
                return;
            }
            Err(e) => {
                shared.reject(
                    tx,
                    RejectReason::BadRequest {
                        detail: e.to_string(),
                    },
                );
                return;
            }
        },
        Ok(None) | Err(_) => return,
    }

    let conn_inflight = Arc::new(AtomicU32::new(0));
    loop {
        let body = match poll_read_frame(stream, shared) {
            Ok(Some(body)) => body,
            Ok(None) => return,
            Err(WireError::FrameTooLarge { len }) => {
                shared.reject(
                    tx,
                    RejectReason::BadRequest {
                        detail: format!("frame of {len} bytes exceeds the cap"),
                    },
                );
                return;
            }
            Err(_) => return,
        };
        match Request::decode(&body) {
            Ok(Request::Hello { .. }) => shared.reject(
                tx,
                RejectReason::BadRequest {
                    detail: "duplicate Hello".to_string(),
                },
            ),
            Ok(Request::Submit {
                image,
                config,
                want_events,
                deadline_ms,
            }) => handle_submit(
                shared,
                tx,
                &conn_inflight,
                image,
                config,
                want_events,
                deadline_ms,
            ),
            Ok(Request::Status) => send(tx, &Response::StatusInfo(shared.status())),
            Ok(Request::Cancel { job_id }) => handle_cancel(shared, tx, job_id),
            Ok(Request::Drain) => {
                handle_drain(shared, tx);
                return;
            }
            Err(e) => shared.reject(
                tx,
                RejectReason::BadRequest {
                    detail: e.to_string(),
                },
            ),
        }
    }
}

fn handle_submit(
    shared: &Shared,
    tx: &mpsc::Sender<Vec<u8>>,
    conn_inflight: &Arc<AtomicU32>,
    image: SubmitImage,
    config: AnalysisConfig,
    want_events: bool,
    deadline_ms: u64,
) {
    if shared.draining.load(Ordering::Acquire) {
        return shared.reject(tx, RejectReason::Draining);
    }

    let classifier = shared.classifier.as_ref();
    let packed = match image {
        SubmitImage::Bytes(packed) => {
            // Cache first: a warm hit never touches the queue.
            if let Some(cache) = &shared.cache {
                let key = CacheKey::of_packed(&packed, classifier, &config);
                if let Ok(entry) = cache.load(&key) {
                    return serve_hit(shared, tx, &entry.analysis);
                }
            }
            packed
        }
        SubmitImage::Hash(hash) => {
            // Hash-addressed submits are cache-only by construction:
            // the daemon cannot analyze bytes it was never sent.
            if let Some(cache) = &shared.cache {
                let key = CacheKey::of_hash(hash, classifier, &config);
                if let Ok(entry) = cache.load(&key) {
                    return serve_hit(shared, tx, &entry.analysis);
                }
            }
            return shared.reject(tx, RejectReason::UnknownImage);
        }
    };

    let cap = shared.cfg.conn_inflight_cap;
    if conn_inflight.load(Ordering::Acquire) >= cap {
        return shared.reject(tx, RejectReason::InFlightCap { cap });
    }

    let mut qs = shared.qs.lock().expect("queue lock");
    if qs.queue.len() >= shared.cfg.queue_cap {
        let depth = qs.queue.len() as u32;
        drop(qs);
        return shared.reject(
            tx,
            RejectReason::QueueFull {
                depth,
                retry_after_ms: shared.cfg.retry_after_ms,
            },
        );
    }
    let job_id = shared.next_job_id.fetch_add(1, Ordering::Relaxed);
    let token = if deadline_ms > 0 {
        CancelToken::with_deadline(Duration::from_millis(deadline_ms))
    } else {
        CancelToken::new()
    };
    conn_inflight.fetch_add(1, Ordering::AcqRel);
    // Accepted goes on the connection's channel before the job becomes
    // visible to any worker, so no streamed Event frame can precede it.
    send(tx, &Response::Accepted { job_id });
    qs.queue.push_back(Job {
        id: job_id,
        packed,
        config,
        want_events,
        token,
        reply: tx.clone(),
        conn_inflight: Arc::clone(conn_inflight),
    });
    shared.work_cv.notify_one();
    drop(qs);
}

/// Answer a submit straight from the cache: `Accepted` then a terminal
/// `Analysis` frame re-encoded through the same codec a pipeline run
/// uses, so hit and miss payloads are byte-comparable.
fn serve_hit(shared: &Shared, tx: &mpsc::Sender<Vec<u8>>, analysis: &firmres::FirmwareAnalysis) {
    let job_id = shared.next_job_id.fetch_add(1, Ordering::Relaxed);
    let mut payload = Vec::new();
    put_analysis(&mut payload, analysis);
    shared.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
    shared.counters.jobs_served.fetch_add(1, Ordering::Relaxed);
    send(tx, &Response::Accepted { job_id });
    send(
        tx,
        &Response::Analysis {
            job_id,
            from_cache: true,
            payload,
        },
    );
}

fn handle_cancel(shared: &Shared, tx: &mpsc::Sender<Vec<u8>>, job_id: u64) {
    // Queued first: remove the job before a worker can claim it. The
    // terminal Cancelled frame goes out under the queue lock, before
    // the idle condvar fires, so a drain blocked on this job cannot
    // slip its DrainOk ahead of the job's terminal frame.
    let queued = {
        let mut qs = shared.qs.lock().expect("queue lock");
        let mut removed = None;
        qs.queue.retain(|job| {
            if job.id == job_id {
                removed = Some((job.reply.clone(), Arc::clone(&job.conn_inflight)));
                false
            } else {
                true
            }
        });
        if let Some((reply, conn_inflight)) = &removed {
            shared
                .counters
                .jobs_cancelled
                .fetch_add(1, Ordering::Relaxed);
            send(
                reply,
                &Response::Cancelled {
                    job_id,
                    reason: "cancelled while queued".to_string(),
                },
            );
            conn_inflight.fetch_sub(1, Ordering::AcqRel);
        }
        if qs.queue.is_empty() && qs.running == 0 {
            shared.idle_cv.notify_all();
        }
        removed.is_some()
    };
    if queued {
        return send(
            tx,
            &Response::CancelOk {
                job_id,
                state: JobState::Queued,
            },
        );
    }
    if let Some(token) = shared.running_tokens.lock().get(&job_id) {
        token.cancel();
        return send(
            tx,
            &Response::CancelOk {
                job_id,
                state: JobState::Running,
            },
        );
    }
    send(
        tx,
        &Response::CancelOk {
            job_id,
            state: JobState::Unknown,
        },
    );
}

fn handle_drain(shared: &Shared, tx: &mpsc::Sender<Vec<u8>>) {
    shared.draining.store(true, Ordering::Release);
    {
        let mut qs = shared.qs.lock().expect("queue lock");
        while !(qs.queue.is_empty() && qs.running == 0) {
            qs = shared.idle_cv.wait(qs).expect("queue lock");
        }
        qs.stop = true;
        shared.work_cv.notify_all();
    }
    send(
        tx,
        &Response::DrainOk {
            jobs_served: shared.counters.jobs_served.load(Ordering::Relaxed),
        },
    );
    shared.shutdown.store(true, Ordering::Release);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_usable() {
        let cfg = ServerConfig::default();
        assert!(cfg.workers >= 1);
        assert!(cfg.queue_cap >= 1);
        assert!(cfg.conn_inflight_cap >= 1);
        assert!(cfg.cache_dir.is_none());
    }

    #[test]
    fn status_snapshot_starts_clean() {
        let server = Server::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
        let status = server.shared.status();
        assert_eq!(status.queue_depth, 0);
        assert_eq!(status.queue_cap, ServerConfig::default().queue_cap as u32);
        assert_eq!(status.inflight, 0);
        assert_eq!(status.jobs_served, 0);
        assert!(!status.draining);
        assert!(server.local_addr().expect("addr").port() > 0);
    }
}
