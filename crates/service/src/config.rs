//! Declarative service configuration: one INI-style file settable with
//! CLI overrides, covering all three operational policies.
//!
//! ```text
//! # firmres service config — every key optional, defaults reproduce
//! # the built-in behavior exactly.
//!
//! [service]
//! workers = 2          # pipeline worker threads
//! unit_jobs = 1        # message-unit parallelism inside one job
//! io_threads = 2       # sockets-per-thread multiplexer shards
//!
//! [admission]
//! queue_cap = 32       # bounded FIFO depth (QueueFull beyond it)
//! inflight_cap = 8     # per-connection unfinished-job cap
//! retry_after_ms = 250 # back-off hint carried by QueueFull
//!
//! [store]
//! shards = 4           # key-prefix subdirectories (1 = flat layout)
//! byte_budget = 512M   # eviction budget ("none" = unbounded)
//! high_watermark = 1.0 # GC trigger, as a fraction of the budget
//! low_watermark = 0.85 # GC target, as a fraction of the budget
//! exempt_pinned = true # pinned entries survive collection
//! class_cache_entries = 1048576 # in-memory slice-classification
//!                      # cache budget ("none" = unbounded)
//!
//! [libid]
//! index = /etc/firmres/known.flix  # known-library index (.flix)
//! ```
//!
//! The format is deliberately tiny — `#`/`;` comments, `[section]`
//! headers, `key = value` lines — and strict: an unknown section or
//! key is an error, not a silent no-op, because a typoed
//! `byte_budgt = 1G` that parses cleanly would run the store
//! unbounded. `[store]` keys are delegated to
//! [`StorePolicy::apply`], so the file and the `cache-stats`/`serve`
//! flags can never drift apart.

use firmres_cache::StorePolicy;
use std::path::Path;

/// Every operational policy of the daemon, as plain data: the
/// `[service]` and `[admission]` sections plus a [`StorePolicy`] for
/// `[store]`. [`Default`] reproduces the long-standing built-in
/// behavior, so an empty (or absent) config file changes nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Pipeline worker threads (`[service] workers`).
    pub workers: usize,
    /// Message-unit parallelism inside one job (`[service] unit_jobs`).
    pub unit_jobs: usize,
    /// Multiplexer io-shard threads (`[service] io_threads`).
    pub io_threads: usize,
    /// Admission queue depth (`[admission] queue_cap`).
    pub queue_cap: usize,
    /// Per-connection in-flight cap (`[admission] inflight_cap`).
    pub conn_inflight_cap: u32,
    /// QueueFull back-off hint (`[admission] retry_after_ms`).
    pub retry_after_ms: u64,
    /// Store sharding and eviction policy (`[store]`).
    pub store: StorePolicy,
    /// Path to a known-library `.flix` index overlaid on every job
    /// (`[libid] index`), or `None` to run without one.
    pub libid_index: Option<String>,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 2,
            unit_jobs: 1,
            io_threads: 2,
            queue_cap: 32,
            conn_inflight_cap: 8,
            retry_after_ms: 250,
            store: StorePolicy::default(),
            libid_index: None,
        }
    }
}

impl ServiceConfig {
    /// Parse an INI-style config document. Unknown sections and keys
    /// are errors; every diagnostic carries its line number.
    pub fn parse(text: &str) -> Result<ServiceConfig, String> {
        let mut cfg = ServiceConfig::default();
        let mut section = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = idx + 1;
            if line.is_empty() || line.starts_with('#') || line.starts_with(';') {
                continue;
            }
            if let Some(name) = line.strip_prefix('[') {
                let Some(name) = name.strip_suffix(']') else {
                    return Err(format!("line {lineno}: unterminated section header"));
                };
                section = name.trim().to_ascii_lowercase();
                if !matches!(
                    section.as_str(),
                    "service" | "admission" | "store" | "libid"
                ) {
                    return Err(format!("line {lineno}: unknown section [{section}]"));
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {lineno}: expected `key = value`"));
            };
            let key = key.trim().to_ascii_lowercase();
            // Strip a trailing comment so `queue_cap = 32  # depth`
            // reads naturally.
            let value = value
                .split(['#', ';'])
                .next()
                .unwrap_or_default()
                .trim()
                .to_string();
            cfg.apply(&section, &key, &value)
                .map_err(|e| format!("line {lineno}: {e}"))?;
        }
        cfg.store.validate()?;
        Ok(cfg)
    }

    /// Read and parse a config file.
    pub fn from_file(path: impl AsRef<Path>) -> Result<ServiceConfig, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        ServiceConfig::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Lower into the server's runtime tuning. The cache directory,
    /// classifier and loaded library index are deployment inputs rather
    /// than policy, so they stay on [`ServerConfig`]'s defaults
    /// (`None`) for the caller to fill in ([`ServiceConfig::libid_index`]
    /// names the file; the CLI loads it).
    ///
    /// [`ServerConfig`]: crate::ServerConfig
    pub fn to_server_config(&self) -> crate::server::ServerConfig {
        crate::server::ServerConfig {
            workers: self.workers,
            unit_jobs: self.unit_jobs,
            io_threads: self.io_threads,
            queue_cap: self.queue_cap,
            conn_inflight_cap: self.conn_inflight_cap,
            retry_after_ms: self.retry_after_ms,
            store: self.store.clone(),
            ..crate::server::ServerConfig::default()
        }
    }

    /// Apply one `section.key = value` assignment.
    pub fn apply(&mut self, section: &str, key: &str, value: &str) -> Result<(), String> {
        let count = |what: &str| -> Result<usize, String> {
            value
                .parse::<usize>()
                .map_err(|_| format!("{what}: not a count: {value:?}"))
        };
        match (section, key) {
            ("service", "workers") => self.workers = count("workers")?,
            ("service", "unit_jobs") => self.unit_jobs = count("unit_jobs")?,
            ("service", "io_threads") => self.io_threads = count("io_threads")?,
            ("admission", "queue_cap") => self.queue_cap = count("queue_cap")?,
            ("admission", "inflight_cap") => {
                self.conn_inflight_cap = value
                    .parse()
                    .map_err(|_| format!("inflight_cap: not a count: {value:?}"))?;
            }
            ("admission", "retry_after_ms") => {
                self.retry_after_ms = value
                    .parse()
                    .map_err(|_| format!("retry_after_ms: not a duration in ms: {value:?}"))?;
            }
            ("store", _) => self.store.apply(key, value)?,
            ("libid", "index") => {
                self.libid_index = if value.is_empty() || value == "none" {
                    None
                } else {
                    Some(value.to_string())
                };
            }
            ("", _) => return Err(format!("key {key:?} before any [section] header")),
            (_, _) => return Err(format!("unknown key {key:?} in section [{section}]")),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_config_reproduces_builtin_behavior() {
        let parsed = ServiceConfig::parse("").expect("empty parses");
        assert_eq!(parsed, ServiceConfig::default());
        assert_eq!(parsed.store, StorePolicy::default());
    }

    #[test]
    fn full_config_round_trips_every_section() {
        let text = "\n\
            # fleet-scale profile\n\
            [service]\n\
            workers = 4\n\
            unit_jobs = 2\n\
            io_threads = 3   ; trailing comment\n\
            \n\
            [admission]\n\
            queue_cap = 64\n\
            inflight_cap = 16\n\
            retry_after_ms = 100\n\
            \n\
            [store]\n\
            shards = 8\n\
            byte_budget = 2M\n\
            high_watermark = 0.95\n\
            low_watermark = 0.8\n\
            exempt_pinned = false\n\
            class_cache_entries = 4096\n";
        let cfg = ServiceConfig::parse(text).expect("full config parses");
        assert_eq!(cfg.libid_index, None);
        assert_eq!(cfg.workers, 4);
        assert_eq!(cfg.unit_jobs, 2);
        assert_eq!(cfg.io_threads, 3);
        assert_eq!(cfg.queue_cap, 64);
        assert_eq!(cfg.conn_inflight_cap, 16);
        assert_eq!(cfg.retry_after_ms, 100);
        assert_eq!(cfg.store.shards, 8);
        assert_eq!(cfg.store.byte_budget, Some(2 << 20));
        assert!(!cfg.store.exempt_pinned);
        assert_eq!(cfg.store.class_cache_entries, 4096);
    }

    #[test]
    fn class_cache_entries_accepts_the_unbounded_spellings() {
        for spelling in ["none", "unlimited", "0"] {
            let text = format!("[store]\nclass_cache_entries = {spelling}\n");
            let cfg = ServiceConfig::parse(&text).expect("unbounded spelling parses");
            assert_eq!(cfg.store.class_cache_entries, 0, "spelling {spelling:?}");
        }
    }

    #[test]
    fn libid_section_sets_and_clears_the_index_path() {
        let cfg = ServiceConfig::parse(
            "[libid]
index = /srv/known.flix
",
        )
        .unwrap();
        assert_eq!(cfg.libid_index.as_deref(), Some("/srv/known.flix"));
        let cfg = ServiceConfig::parse(
            "[libid]
index = none
",
        )
        .unwrap();
        assert_eq!(cfg.libid_index, None);
        let err = ServiceConfig::parse(
            "[libid]
indexx = x
",
        )
        .unwrap_err();
        assert!(err.contains("indexx"), "{err}");
    }

    #[test]
    fn typos_are_errors_with_line_numbers() {
        let err = ServiceConfig::parse("[service]\nwrokers = 4\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("wrokers"), "{err}");
        let err = ServiceConfig::parse("[serviec]\n").unwrap_err();
        assert!(err.contains("unknown section"), "{err}");
        let err = ServiceConfig::parse("workers = 4\n").unwrap_err();
        assert!(err.contains("before any [section]"), "{err}");
        let err = ServiceConfig::parse("[store]\nbyte_budgt = 1G\n").unwrap_err();
        assert!(err.contains("byte_budgt"), "{err}");
    }

    #[test]
    fn invalid_watermarks_fail_validation_at_parse_time() {
        let err = ServiceConfig::parse("[store]\nlow_watermark = 0.9\nhigh_watermark = 0.5\n")
            .unwrap_err();
        assert!(err.contains("low"), "{err}");
    }
}
