//! # firmres-service
//!
//! A resident FIRMRES analysis daemon and its blocking client.
//!
//! Re-running a cold process per firmware image wastes exactly what the
//! paper's evaluation sweep needs most: a warm semantics model, a warm
//! analysis cache and a standing worker pool. This crate keeps all
//! three resident behind a small TCP service:
//!
//! * [`wire`] — a length-prefixed, versioned binary protocol in the
//!   FRAC-codec idiom: panic-free decoding, hard frame-size caps, and
//!   analysis payloads that reuse the cache codec so a served result is
//!   byte-identical to a local `analyze` of the same inputs.
//! * [`server`] — the daemon: bounded FIFO job queue with explicit
//!   admission control (structured rejects, never silent hangs),
//!   per-connection in-flight caps, streamed pipeline progress bridged
//!   off the [`Observer`] seam, per-job deadlines enforced by
//!   cooperative [`CancelToken`]s at unit boundaries, first-class cache
//!   integration (submit-by-hash answers without shipping bytes), and
//!   graceful drain that finishes in-flight work before shutting down.
//! * [`config`] — policies as declarative data: worker/io-thread
//!   sizing, admission limits, and the store's shard/eviction policy
//!   in one INI-style file with CLI overrides, defaults reproducing
//!   the built-in behavior.
//! * [`client`] — a blocking client library the `firmres-suite` CLI
//!   builds its `serve`/`submit`/`status`/`drain` subcommands on.
//! * [`load`] — an open-/closed-loop load generator over the same wire
//!   protocol: concurrent submit-by-bytes and submit-by-hash traffic,
//!   coordinated-omission-corrected latency percentiles, and admission
//!   rejections tallied as outcomes so saturation sweeps can watch the
//!   QueueFull/`retry_after_ms` path engage.
//!
//! # Example
//!
//! ```
//! use firmres::AnalysisConfig;
//! use firmres_service::{Client, Server, ServerConfig, SubmitImage};
//!
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
//! let addr = server.local_addr().unwrap();
//! let handle = std::thread::spawn(move || server.run());
//!
//! let dev = firmres_corpus::generate_device(4, 1);
//! let mut client = Client::connect(addr).unwrap();
//! let served = client
//!     .submit(
//!         SubmitImage::Bytes(dev.firmware.pack().to_vec()),
//!         &AnalysisConfig::default(),
//!         false,
//!         0,
//!     )
//!     .unwrap();
//! assert_eq!(served.analysis.executable, dev.cloud_executable);
//!
//! client.drain().unwrap();
//! handle.join().unwrap();
//! ```
//!
//! [`Observer`]: firmres::Observer
//! [`CancelToken`]: firmres::CancelToken
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod config;
pub mod load;
pub mod server;
pub mod wire;

pub use client::{Client, ClientError, Served};
pub use config::ServiceConfig;
pub use load::{run_load, LatencyHistogram, LoadConfig, LoadReport};
pub use server::{Server, ServerConfig};
pub use wire::{
    JobState, RejectReason, Request, Response, ServiceStatus, SubmitImage, WireError, MAX_FRAME,
    PROTOCOL_VERSION,
};
