//! # firmres-mft
//!
//! The Message Field Tree (MFT) and message reconstruction (paper §IV-C,
//! §IV-D).
//!
//! The MFT is built from the backward-taint trace of a delivery callsite:
//! the taint *source* (the message argument) is the root, the taint
//! *sinks* (field origins) are the leaves, and the paths in between encode
//! the message-construction logic. This crate provides:
//!
//! * [`Mft`] — the tree, with the paper's two transformations:
//!   [`Mft::simplified`] (keep only branching nodes and leaves, Fig. 5)
//!   and [`Mft::inverted`] (reverse child order so fields appear in
//!   construction order rather than backward-discovery order).
//! * [`CodeSlice`] — per-path code slices in the semantically enriched
//!   P-Code representation `(Datatype, Name/Constant, NodeID)` that the
//!   `firmres-semantics` classifier consumes.
//! * [`split_format`] / [`cluster`] — separation of `sprintf`-assembled
//!   partial messages into per-field pieces, with delimiters discovered by
//!   longest-common-subsequence similarity clustering.
//! * [`reconstruct`] — assembly of a [`ReconstructedMessage`] (format,
//!   ordered fields with keys and origins) from the tree.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lcs;
mod message;
mod slice;
mod split;
mod tree;

pub use lcs::{cluster, lcs_len, similarity};
pub use message::{
    is_lan_address, mentions_lan, reconstruct, MessageField, MessageFormat, ReconstructedMessage,
    Transport,
};
pub use slice::{enrich_op, slices_for_tree, CodeSlice, SliceRenderer};
pub use split::{cluster_count, split_format, FormatPiece};
pub use tree::{Mft, MftNode, MftNodeId, MftNodeKind};
