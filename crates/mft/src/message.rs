//! Message reconstruction from the MFT (paper §IV-D).

use crate::split::{extract_key, split_format};
use crate::tree::{Mft, MftNodeId, MftNodeKind};
use firmres_dataflow::FieldSource;
use std::fmt;

/// Transport implied by the delivery function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transport {
    /// TLS stream (`SSL_write`, `CyaSSL_write`).
    Ssl,
    /// Plain socket (`send`, `sendto`, `write`).
    Tcp,
    /// MQTT publish.
    Mqtt,
    /// HTTP request helpers.
    Http,
    /// Unknown delivery function.
    Unknown,
}

impl Transport {
    /// Classify a delivery function name.
    pub fn from_delivery(name: &str) -> Transport {
        match name {
            "SSL_write" | "CyaSSL_write" => Transport::Ssl,
            "send" | "sendto" | "write" => Transport::Tcp,
            "mosquitto_publish" | "mqtt_publish" => Transport::Mqtt,
            "http_post" | "http_get" | "curl_easy_perform" => Transport::Http,
            _ => Transport::Unknown,
        }
    }
}

impl fmt::Display for Transport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Transport::Ssl => "ssl",
            Transport::Tcp => "tcp",
            Transport::Mqtt => "mqtt",
            Transport::Http => "http",
            Transport::Unknown => "unknown",
        })
    }
}

/// Inferred wire format of the message body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageFormat {
    /// Nested JSON.
    Json,
    /// URL-encoded query string (`a=1&b=2`).
    Query,
    /// Loose `key=value` text.
    KeyValue,
    /// Opaque/unstructured.
    Raw,
}

impl fmt::Display for MessageFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MessageFormat::Json => "json",
            MessageFormat::Query => "query",
            MessageFormat::KeyValue => "keyvalue",
            MessageFormat::Raw => "raw",
        })
    }
}

/// One reconstructed message field: key, value origin, and (after
/// classification) its primitive semantic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageField {
    /// Field key, when recoverable (`mac`, `serialNumber`, …).
    pub key: Option<String>,
    /// Where the value comes from.
    pub origin: FieldSource,
    /// Primitive label assigned by the semantics model (`Dev-Identifier`,
    /// …); `None` before classification.
    pub semantic: Option<String>,
}

/// A device-cloud message reconstructed from one delivery callsite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconstructedMessage {
    /// Delivery function name.
    pub delivery: String,
    /// Transport classification.
    pub transport: Transport,
    /// Endpoint (MQTT topic / HTTP path), when recovered.
    pub endpoint: Option<String>,
    /// Inferred body format.
    pub format: MessageFormat,
    /// Fields in construction order.
    pub fields: Vec<MessageField>,
    /// Full format template when the message was built by one formatted
    /// write.
    pub template: Option<String>,
}

impl ReconstructedMessage {
    /// Keys of all fields that have one, in order.
    pub fn keys(&self) -> Vec<&str> {
        self.fields
            .iter()
            .filter_map(|f| f.key.as_deref())
            .collect()
    }

    /// The field with the given key.
    pub fn field(&self, key: &str) -> Option<&MessageField> {
        self.fields.iter().find(|f| f.key.as_deref() == Some(key))
    }
}

impl fmt::Display for ReconstructedMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}/{}] ", self.transport, self.format)?;
        if let Some(e) = &self.endpoint {
            write!(f, "{e} ")?;
        }
        let fields: Vec<String> = self
            .fields
            .iter()
            .map(|fld| {
                let key = fld.key.as_deref().unwrap_or("_");
                format!("{key}={}", fld.origin)
            })
            .collect();
        write!(f, "{{{}}}", fields.join(", "))
    }
}

/// Whether `text` is (or contains) a LAN/link-local/multicast/broadcast
/// address — messages addressed to these are device-to-device traffic and
/// are discarded (paper §IV-D).
pub fn is_lan_address(text: &str) -> bool {
    let t = text.trim();
    // IPv6 link-local.
    let upper = t.to_ascii_uppercase();
    if upper.starts_with("FE80") {
        return true;
    }
    // Extract a leading IPv4 dotted quad.
    let octets: Vec<u8> = t
        .split(['.', ':', '/'])
        .take(4)
        .map_while(|p| p.parse::<u8>().ok())
        .collect();
    if octets.len() < 4 {
        return false;
    }
    match octets[0] {
        10 => true,
        172 => (16..=31).contains(&octets[1]),
        192 => octets[1] == 168,
        169 => octets[1] == 254,
        224..=239 => true, // multicast
        255 => octets == [255, 255, 255, 255],
        _ => false,
    }
}

/// Whether any string constant in the tree mentions a LAN address — the
/// grouping step's discard condition.
pub fn mentions_lan(mft: &Mft) -> bool {
    mft.nodes().iter().any(|n| {
        matches!(
            &n.kind,
            MftNodeKind::Field(FieldSource::StringConstant { value, .. }) if is_lan_address(value)
        )
    })
}

/// Reconstruct the message from a (non-simplified, non-inverted) MFT.
///
/// Concatenation order: the taint engine records buffer writes in
/// backward-discovery order, so writes are *reversed* here — the
/// equivalent of simplifying and inverting the tree (Fig. 5) — and fields
/// inside one formatted write follow the format-string order.
pub fn reconstruct(mft: &Mft) -> ReconstructedMessage {
    let delivery = match &mft.root().kind {
        MftNodeKind::Root { delivery } => delivery.clone(),
        _ => "<unknown>".to_string(),
    };
    let transport = Transport::from_delivery(&delivery);
    let mut fields: Vec<MessageField> = Vec::new();
    let mut template: Option<String> = None;
    let mut saw_json_writer = false;
    let mut pending_key: Option<String> = None;

    // Writes attached (transitively through pass-through ops) below the
    // root, in backward order; re-reverse for construction order.
    let mut writes = collect_writes(mft, mft.root().id);
    writes.reverse();

    for wid in &writes {
        let node = mft.node(*wid);
        let MftNodeKind::Concat { via } = &node.kind else {
            continue;
        };
        match via.as_str() {
            "sprintf" | "snprintf" => {
                let Some(fmt) = first_string_leaf(mft, node.children.first().copied()) else {
                    // Format unavailable: emit raw fields.
                    for c in node.children.iter().skip(1) {
                        fields.push(MessageField {
                            key: pending_key.take(),
                            origin: primary_source(mft, *c),
                            semantic: None,
                        });
                    }
                    continue;
                };
                let pieces = split_format(&fmt);
                if template.is_none() {
                    template = Some(fmt.clone());
                }
                let values = &node.children[1..];
                for (i, piece) in pieces.iter().enumerate() {
                    if piece.spec.is_some() {
                        let origin = values.get(i).map(|c| primary_source(mft, *c)).unwrap_or(
                            FieldSource::Unresolved {
                                reason: "missing argument",
                            },
                        );
                        fields.push(MessageField {
                            key: piece.key.clone().or_else(|| pending_key.take()),
                            origin,
                            semantic: None,
                        });
                    } else if !piece.literal.trim().is_empty() {
                        // A pure literal chunk (path prefix, trailing brace).
                        fields.push(MessageField {
                            key: piece.key.clone(),
                            origin: FieldSource::StringConstant {
                                addr: 0,
                                value: piece.literal.clone(),
                            },
                            semantic: None,
                        });
                    }
                }
            }
            v if v.starts_with("cJSON_Add") => {
                saw_json_writer = true;
                let key = first_string_leaf(mft, node.children.first().copied());
                let origin = node
                    .children
                    .get(1)
                    .map(|c| primary_source(mft, *c))
                    .unwrap_or(FieldSource::Unresolved {
                        reason: "missing value",
                    });
                fields.push(MessageField {
                    key,
                    origin,
                    semantic: None,
                });
            }
            _ => {
                // strcpy/strcat/store/getter writes: one contribution each.
                let origin = if node.children.is_empty() {
                    FieldSource::Unresolved {
                        reason: "opaque write",
                    }
                } else {
                    primary_source(mft, node.children[0])
                };
                // A literal ending in '=' or ':' is a key for the next
                // value write (the strcpy("id=") / strcat(value) idiom).
                if let FieldSource::StringConstant { value, .. } = &origin {
                    let trimmed = value.trim_end();
                    if trimmed.ends_with('=') || trimmed.ends_with(':') {
                        if let Some(k) = extract_key(value) {
                            pending_key = Some(k);
                            continue;
                        }
                    }
                }
                fields.push(MessageField {
                    key: pending_key.take(),
                    origin,
                    semantic: None,
                });
            }
        }
    }

    // No buffer writes at all: the message is the root's direct sources.
    if writes.is_empty() {
        for src in mft.field_sources() {
            fields.push(MessageField {
                key: None,
                origin: src.clone(),
                semantic: None,
            });
        }
        fields.reverse(); // backward discovery → construction order
    }

    let format = infer_format(saw_json_writer, template.as_deref(), &fields);
    ReconstructedMessage {
        delivery,
        transport,
        endpoint: None,
        format,
        fields,
        template,
    }
}

/// Collect Concat nodes in discovery order, descending through
/// pass-through ops (but not into other Concat nodes' subtrees, whose
/// writes belong to nested buffers).
fn collect_writes(mft: &Mft, id: MftNodeId) -> Vec<MftNodeId> {
    let mut out = Vec::new();
    walk_writes(mft, id, &mut out);
    out
}

fn walk_writes(mft: &Mft, id: MftNodeId, out: &mut Vec<MftNodeId>) {
    for c in &mft.node(id).children {
        match &mft.node(*c).kind {
            MftNodeKind::Concat { .. } => out.push(*c),
            MftNodeKind::Op { .. } => walk_writes(mft, *c, out),
            _ => {}
        }
    }
}

fn first_string_leaf(mft: &Mft, id: Option<MftNodeId>) -> Option<String> {
    let id = id?;
    let n = mft.node(id);
    if let MftNodeKind::Field(FieldSource::StringConstant { value, .. }) = &n.kind {
        return Some(value.clone());
    }
    for c in &n.children {
        if let Some(s) = first_string_leaf(mft, Some(*c)) {
            return Some(s);
        }
    }
    None
}

/// The most informative source in a subtree: first concrete leaf, else
/// first leaf, else unresolved.
fn primary_source(mft: &Mft, id: MftNodeId) -> FieldSource {
    let mut leaves = Vec::new();
    collect_field_sources(mft, id, &mut leaves);
    leaves
        .iter()
        .find(|s| s.is_concrete())
        .or_else(|| leaves.first())
        .cloned()
        .unwrap_or(FieldSource::Unresolved {
            reason: "empty subtree",
        })
}

fn collect_field_sources(mft: &Mft, id: MftNodeId, out: &mut Vec<FieldSource>) {
    let n = mft.node(id);
    if let MftNodeKind::Field(s) = &n.kind {
        out.push(s.clone());
    }
    for c in &n.children {
        collect_field_sources(mft, *c, out);
    }
}

fn infer_format(
    saw_json_writer: bool,
    template: Option<&str>,
    fields: &[MessageField],
) -> MessageFormat {
    if saw_json_writer {
        return MessageFormat::Json;
    }
    if let Some(t) = template {
        let t = t.trim_start();
        if t.starts_with('{') || t.starts_with("[{") {
            return MessageFormat::Json;
        }
        if t.contains('&') && t.contains('=') {
            return MessageFormat::Query;
        }
        if t.contains('=') || t.contains(':') {
            return MessageFormat::KeyValue;
        }
        return MessageFormat::Raw;
    }
    let keyed = fields.iter().filter(|f| f.key.is_some()).count();
    if keyed >= 2 {
        MessageFormat::Query
    } else if keyed == 1 {
        MessageFormat::KeyValue
    } else {
        MessageFormat::Raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmres_dataflow::TaintEngine;
    use firmres_isa::{lift, Assembler};

    fn reconstruct_src(src: &str, delivery: &str, arg: usize) -> ReconstructedMessage {
        let exe = Assembler::new().assemble(src).unwrap();
        let p = lift(&exe, "t").unwrap();
        let mut found = None;
        for f in p.functions() {
            for c in f.callsites() {
                if c.call_target().and_then(|t| p.callee_name(t)) == Some(delivery) {
                    found = Some((f.entry(), c.addr));
                }
            }
        }
        let (func, call) = found.unwrap();
        let tree = TaintEngine::new(&p).trace(func, call, arg);
        reconstruct(&Mft::from_taint(&tree))
    }

    #[test]
    fn sprintf_query_message() {
        let msg = reconstruct_src(
            r#"
.func main
.local buf 128
.local mac 32
    lea a0, mac
    callx get_mac_addr
    lea a0, buf
    la  a1, fmt
    lea a2, mac
    la  a3, sn
    callx sprintf
    lea a1, buf
    li  a0, 1
    callx SSL_write
    ret
.endfunc
.data
fmt: .asciz "mac=%s&sn=%s"
sn: .asciz "SN42"
"#,
            "SSL_write",
            1,
        );
        assert_eq!(msg.transport, Transport::Ssl);
        assert_eq!(msg.format, MessageFormat::Query);
        assert_eq!(msg.template.as_deref(), Some("mac=%s&sn=%s"));
        assert_eq!(msg.keys(), vec!["mac", "sn"]);
        assert!(msg
            .field("mac")
            .unwrap()
            .origin
            .to_string()
            .contains("get_mac_addr"));
        assert!(msg.field("sn").unwrap().origin.to_string().contains("SN42"));
    }

    #[test]
    fn strcpy_strcat_key_value_pairing() {
        let msg = reconstruct_src(
            r#"
.func main
.local buf 128
.local id 32
    lea a0, id
    callx get_serial
    lea a0, buf
    la  a1, kid
    callx strcpy
    lea a0, buf
    lea a1, id
    callx strcat
    lea a1, buf
    li  a0, 3
    callx send
    ret
.endfunc
.data
kid: .asciz "serial="
"#,
            "send",
            1,
        );
        assert_eq!(msg.transport, Transport::Tcp);
        assert_eq!(msg.fields.len(), 1, "literal key merged with value: {msg}");
        let f = &msg.fields[0];
        assert_eq!(f.key.as_deref(), Some("serial"));
        assert!(f.origin.to_string().contains("get_serial"));
    }

    #[test]
    fn cjson_message_is_json_with_paired_keys() {
        let msg = reconstruct_src(
            r#"
.func main
    callx cJSON_CreateObject
    mov t0, rv
    mov a0, t0
    la  a1, k1
    la  a2, v1
    callx cJSON_AddStringToObject
    mov a0, t0
    la  a1, k2
    la  a2, v2
    callx cJSON_AddStringToObject
    mov a0, t0
    callx cJSON_Print
    mov a1, rv
    li  a0, 1
    callx SSL_write
    ret
.endfunc
.data
k1: .asciz "deviceId"
v1: .asciz "D-1"
k2: .asciz "token"
v2: .asciz "T-9"
"#,
            "SSL_write",
            1,
        );
        assert_eq!(msg.format, MessageFormat::Json);
        assert_eq!(
            msg.keys(),
            vec!["deviceId", "token"],
            "construction order restored"
        );
        assert!(msg
            .field("token")
            .unwrap()
            .origin
            .to_string()
            .contains("T-9"));
    }

    #[test]
    fn constant_message_raw() {
        let msg = reconstruct_src(
            ".func main\n la a1, s\n li a0, 1\n callx SSL_write\n ret\n.endfunc\n.data\ns: .asciz \"HEARTBEAT\"\n",
            "SSL_write",
            1,
        );
        assert_eq!(msg.format, MessageFormat::Raw);
        assert_eq!(msg.fields.len(), 1);
        assert!(msg.fields[0].origin.to_string().contains("HEARTBEAT"));
    }

    #[test]
    fn lan_address_detection() {
        for lan in [
            "10.0.0.1",
            "172.16.1.1",
            "172.31.255.254",
            "192.168.1.100",
            "169.254.0.1",
            "224.0.0.1",
            "239.255.255.250",
            "255.255.255.255",
            "FE80::1",
            "fe80::abcd",
        ] {
            assert!(is_lan_address(lan), "{lan} is LAN");
        }
        for wan in [
            "8.8.8.8",
            "172.15.0.1",
            "172.32.0.1",
            "193.168.1.1",
            "cloud.example.com",
            "1.1",
        ] {
            assert!(!is_lan_address(wan), "{wan} is not LAN");
        }
    }

    #[test]
    fn lan_filter_applies_to_trees() {
        let src = |ip: &str| {
            format!(
                ".func main\n la a1, host\n li a0, 1\n callx SSL_write\n ret\n.endfunc\n.data\nhost: .asciz \"{ip}\"\n"
            )
        };
        let build = |s: &str| {
            let exe = Assembler::new().assemble(s).unwrap();
            let p = lift(&exe, "t").unwrap();
            let f = p.function_by_name("main").unwrap();
            let call = f.callsites().next().unwrap().addr;
            let tree = TaintEngine::new(&p).trace(f.entry(), call, 1);
            Mft::from_taint(&tree)
        };
        assert!(mentions_lan(&build(&src("192.168.0.1"))));
        assert!(!mentions_lan(&build(&src("54.212.7.9"))));
    }

    #[test]
    fn display_formats_message() {
        let msg = ReconstructedMessage {
            delivery: "SSL_write".into(),
            transport: Transport::Ssl,
            endpoint: Some("/api/register".into()),
            format: MessageFormat::Query,
            fields: vec![MessageField {
                key: Some("mac".into()),
                origin: FieldSource::NumericConstant { value: 7 },
                semantic: None,
            }],
            template: None,
        };
        let s = msg.to_string();
        assert!(s.contains("/api/register"));
        assert!(s.contains("mac="));
    }
}
