//! The Message Field Tree and its transformations (paper §IV-C/D, Fig. 5).

use firmres_dataflow::{FieldSource, TaintNodeKind, TaintTree};
use firmres_ir::{Address, PcodeOp};
use std::fmt::Write as _;

/// Identifier of a node within an [`Mft`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MftNodeId(pub usize);

/// What an MFT node represents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MftNodeKind {
    /// The message argument at the delivery callsite.
    Root {
        /// Delivery function name.
        delivery: String,
    },
    /// A field-concatenation step (a write into the message buffer).
    Concat {
        /// The writer (`sprintf`, `strcat`, `cJSON_AddStringToObject`, a
        /// raw store, …).
        via: String,
    },
    /// Field encoding / formatting / plumbing on the path (copies,
    /// arithmetic, pass-through calls). Removed by simplification.
    Op {
        /// Display label for the operation.
        label: String,
    },
    /// A terminal field source (leaf).
    Field(FieldSource),
    /// A semantic annotation attached after classification (§IV-D: "we
    /// add the annotation of the identified semantics of the field as a
    /// new leaf node").
    Annotation(String),
}

/// One node of the [`Mft`].
#[derive(Debug, Clone)]
pub struct MftNode {
    /// This node's id.
    pub id: MftNodeId,
    /// Parent id (None for the root).
    pub parent: Option<MftNodeId>,
    /// Children in current order.
    pub children: Vec<MftNodeId>,
    /// Node kind.
    pub kind: MftNodeKind,
    /// The associated IR operation, when there is one.
    pub op: Option<PcodeOp>,
    /// Function the node was discovered in.
    pub func: Address,
}

/// The Message Field Tree.
///
/// # Examples
///
/// ```
/// use firmres_mft::Mft;
/// use firmres_dataflow::TaintEngine;
/// use firmres_isa::{Assembler, lift};
///
/// let exe = Assembler::new().assemble(r#"
/// .func main
///     la a1, msg
///     li a0, 1
///     callx SSL_write
///     ret
/// .endfunc
/// .data
/// msg: .asciz "PING"
/// "#)?;
/// let prog = lift(&exe, "d")?;
/// let f = prog.function_by_name("main").unwrap();
/// let call = f.callsites().next().unwrap().addr;
/// let tree = TaintEngine::new(&prog).trace(f.entry(), call, 1);
/// let mft = Mft::from_taint(&tree);
/// assert_eq!(mft.leaves().len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Mft {
    nodes: Vec<MftNode>,
}

impl Mft {
    /// Build an MFT from a backward-taint trace.
    pub fn from_taint(tree: &TaintTree) -> Mft {
        let mut mft = Mft::default();
        for n in tree.nodes() {
            let kind = match &n.kind {
                TaintNodeKind::Root { delivery } => MftNodeKind::Root {
                    delivery: delivery.clone(),
                },
                TaintNodeKind::Write { via } => MftNodeKind::Concat { via: via.clone() },
                TaintNodeKind::Transform { opcode } => MftNodeKind::Op {
                    label: opcode.mnemonic().to_string(),
                },
                TaintNodeKind::ThroughCall { callee } => MftNodeKind::Op {
                    label: format!("call {callee}"),
                },
                TaintNodeKind::ParamCross { param } => MftNodeKind::Op {
                    label: format!("param #{param}"),
                },
                TaintNodeKind::Source(s) => MftNodeKind::Field(s.clone()),
            };
            mft.nodes.push(MftNode {
                id: MftNodeId(n.id.0),
                parent: n.parent.map(|p| MftNodeId(p.0)),
                children: n.children.iter().map(|c| MftNodeId(c.0)).collect(),
                kind,
                op: n.op.clone(),
                func: n.func,
            });
        }
        mft
    }

    /// Rebuild an MFT from an explicit node list, e.g. when decoding a
    /// persisted analysis. Node ids must be dense (node `i` has id `i`,
    /// the root at index 0) and parent/children links consistent — the
    /// layout [`Mft::nodes`] hands out.
    ///
    /// # Panics
    ///
    /// Panics when a node's id does not match its index.
    pub fn from_nodes(nodes: Vec<MftNode>) -> Mft {
        for (i, n) in nodes.iter().enumerate() {
            assert_eq!(n.id.0, i, "node ids must be dense and in order");
        }
        Mft { nodes }
    }

    /// The root node.
    ///
    /// # Panics
    ///
    /// Panics on an empty tree.
    pub fn root(&self) -> &MftNode {
        &self.nodes[0]
    }

    /// The node with id `id`.
    pub fn node(&self, id: MftNodeId) -> &MftNode {
        &self.nodes[id.0]
    }

    /// All nodes.
    pub fn nodes(&self) -> &[MftNode] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Leaf node ids ([`MftNodeKind::Field`]) in depth-first order — the
    /// message fields as currently ordered.
    pub fn leaves(&self) -> Vec<MftNodeId> {
        let mut out = Vec::new();
        if self.nodes.is_empty() {
            return out;
        }
        self.dfs_leaves(MftNodeId(0), &mut out);
        out
    }

    fn dfs_leaves(&self, id: MftNodeId, out: &mut Vec<MftNodeId>) {
        let n = &self.nodes[id.0];
        if matches!(n.kind, MftNodeKind::Field(_)) {
            out.push(id);
        }
        for c in &n.children {
            self.dfs_leaves(*c, out);
        }
    }

    /// Field sources at the leaves, in depth-first order.
    pub fn field_sources(&self) -> Vec<&FieldSource> {
        self.leaves()
            .into_iter()
            .filter_map(|id| match &self.nodes[id.0].kind {
                MftNodeKind::Field(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    /// The paper's simplification (Fig. 5): keep the root, branching nodes
    /// (more than one child), concatenation nodes, leaves and annotations;
    /// splice out pass-through chain nodes.
    pub fn simplified(&self) -> Mft {
        if self.nodes.is_empty() {
            return Mft::default();
        }
        let mut out = Mft::default();
        let root = &self.nodes[0];
        let new_root = MftNode {
            id: MftNodeId(0),
            parent: None,
            children: Vec::new(),
            kind: root.kind.clone(),
            op: root.op.clone(),
            func: root.func,
        };
        out.nodes.push(new_root);
        for c in &root.children {
            self.copy_simplified(*c, MftNodeId(0), &mut out);
        }
        out
    }

    fn keeps(&self, id: MftNodeId) -> bool {
        let n = &self.nodes[id.0];
        match &n.kind {
            MftNodeKind::Root { .. } | MftNodeKind::Field(_) | MftNodeKind::Annotation(_) => true,
            MftNodeKind::Concat { .. } => true,
            MftNodeKind::Op { .. } => n.children.len() > 1,
        }
    }

    fn copy_simplified(&self, id: MftNodeId, parent: MftNodeId, out: &mut Mft) {
        let n = &self.nodes[id.0];
        if self.keeps(id) {
            let new_id = MftNodeId(out.nodes.len());
            out.nodes.push(MftNode {
                id: new_id,
                parent: Some(parent),
                children: Vec::new(),
                kind: n.kind.clone(),
                op: n.op.clone(),
                func: n.func,
            });
            out.nodes[parent.0].children.push(new_id);
            for c in &n.children {
                self.copy_simplified(*c, new_id, out);
            }
        } else {
            // Splice: attach this node's children directly to `parent`.
            for c in &n.children {
                self.copy_simplified(*c, parent, out);
            }
        }
    }

    /// The paper's inversion: reverse every node's child order. Backward
    /// taint discovers the *latest* concatenation first; inverting the
    /// simplified MFT puts fields into construction order.
    pub fn inverted(&self) -> Mft {
        let mut out = self.clone();
        for n in &mut out.nodes {
            n.children.reverse();
        }
        out
    }

    /// Attach a semantic annotation as a new child of `leaf`'s parent
    /// path (directly under the leaf).
    pub fn annotate(&mut self, leaf: MftNodeId, text: impl Into<String>) {
        let id = MftNodeId(self.nodes.len());
        let func = self.nodes[leaf.0].func;
        self.nodes.push(MftNode {
            id,
            parent: Some(leaf),
            children: Vec::new(),
            kind: MftNodeKind::Annotation(text.into()),
            op: None,
            func,
        });
        self.nodes[leaf.0].children.push(id);
    }

    /// A stable hash of the path from the root to `leaf` (used for field
    /// grouping, §IV-D: "assigns a hash value to each path for efficient
    /// matching").
    pub fn path_hash(&self, leaf: MftNodeId) -> u64 {
        let mut path = Vec::new();
        let mut cur = Some(leaf);
        while let Some(id) = cur {
            path.push(id);
            cur = self.nodes[id.0].parent;
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for id in path.iter().rev() {
            let label = match &self.nodes[id.0].kind {
                MftNodeKind::Root { delivery } => delivery.clone(),
                MftNodeKind::Concat { via } => via.clone(),
                MftNodeKind::Op { label } => label.clone(),
                MftNodeKind::Field(s) => s.to_string(),
                MftNodeKind::Annotation(a) => a.clone(),
            };
            for b in label.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h ^= self.nodes[id.0].children.len() as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// ASCII rendering for reports and the Fig. 5 demonstration binary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.nodes.is_empty() {
            return out;
        }
        self.render_node(MftNodeId(0), 0, &mut out);
        out
    }

    fn render_node(&self, id: MftNodeId, depth: usize, out: &mut String) {
        let n = &self.nodes[id.0];
        let label = match &n.kind {
            MftNodeKind::Root { delivery } => format!("ROOT [{delivery}]"),
            MftNodeKind::Concat { via } => format!("CONCAT via {via}"),
            MftNodeKind::Op { label } => format!("op {label}"),
            MftNodeKind::Field(s) => format!("FIELD {s}"),
            MftNodeKind::Annotation(a) => format!("@{a}"),
        };
        let _ = writeln!(out, "{}{}", "  ".repeat(depth), label);
        for c in &n.children {
            self.render_node(*c, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmres_dataflow::TaintEngine;
    use firmres_isa::{lift, Assembler};

    fn build_mft(src: &str, delivery: &str, arg: usize) -> Mft {
        let exe = Assembler::new().assemble(src).unwrap();
        let p = lift(&exe, "t").unwrap();
        let mut found = None;
        for f in p.functions() {
            for c in f.callsites() {
                if c.call_target().and_then(|t| p.callee_name(t)) == Some(delivery) {
                    found = Some((f.entry(), c.addr));
                }
            }
        }
        let (func, call) = found.unwrap();
        let tree = TaintEngine::new(&p).trace(func, call, arg);
        Mft::from_taint(&tree)
    }

    const CONCAT_SRC: &str = r#"
.func main
.local buf 128
    lea a0, buf
    la  a1, first
    callx strcpy
    lea a0, buf
    la  a1, second
    callx strcat
    lea a0, buf
    la  a1, third
    callx strcat
    lea a1, buf
    li  a0, 1
    callx SSL_write
    ret
.endfunc
.data
first: .asciz "A"
second: .asciz "B"
third: .asciz "C"
"#;

    #[test]
    fn inversion_restores_construction_order() {
        let mft = build_mft(CONCAT_SRC, "SSL_write", 1);
        // Backward discovery: C, B, A.
        let before: Vec<String> = mft.field_sources().iter().map(|s| s.to_string()).collect();
        assert_eq!(before, vec!["\"C\"", "\"B\"", "\"A\""]);
        // Inverted: A, B, C — the order the message was built in.
        let inv = mft.simplified().inverted();
        let after: Vec<String> = inv.field_sources().iter().map(|s| s.to_string()).collect();
        assert_eq!(after, vec!["\"A\"", "\"B\"", "\"C\""]);
    }

    #[test]
    fn simplification_drops_pass_through_ops() {
        let mft = build_mft(CONCAT_SRC, "SSL_write", 1);
        let simple = mft.simplified();
        assert!(simple.len() <= mft.len());
        assert!(
            simple
                .nodes()
                .iter()
                .all(|n| !matches!(&n.kind, MftNodeKind::Op { .. }) || n.children.len() > 1),
            "remaining op nodes are branching"
        );
        // Leaves survive simplification.
        assert_eq!(simple.leaves().len(), mft.leaves().len());
    }

    #[test]
    fn double_inversion_is_identity_on_field_order() {
        let mft = build_mft(CONCAT_SRC, "SSL_write", 1).simplified();
        let once: Vec<String> = mft
            .inverted()
            .field_sources()
            .iter()
            .map(|s| s.to_string())
            .collect();
        let twice: Vec<String> = mft
            .inverted()
            .inverted()
            .field_sources()
            .iter()
            .map(|s| s.to_string())
            .collect();
        let orig: Vec<String> = mft.field_sources().iter().map(|s| s.to_string()).collect();
        assert_eq!(twice, orig);
        assert_ne!(once, orig, "one inversion changes the order here");
    }

    #[test]
    fn annotations_are_attached_and_rendered() {
        let mut mft = build_mft(CONCAT_SRC, "SSL_write", 1);
        let leaf = mft.leaves()[0];
        mft.annotate(leaf, "Dev-Identifier");
        let rendered = mft.render();
        assert!(rendered.contains("@Dev-Identifier"), "{rendered}");
        assert!(rendered.contains("ROOT [SSL_write]"));
        assert!(rendered.contains("CONCAT via strcat"));
    }

    #[test]
    fn path_hashes_distinguish_leaves_and_are_stable() {
        let mft = build_mft(CONCAT_SRC, "SSL_write", 1);
        let leaves = mft.leaves();
        assert!(leaves.len() >= 2);
        let h0 = mft.path_hash(leaves[0]);
        let h1 = mft.path_hash(leaves[1]);
        assert_ne!(h0, h1);
        assert_eq!(h0, mft.path_hash(leaves[0]));
    }

    #[test]
    fn from_nodes_round_trips_a_real_tree() {
        let mft = build_mft(CONCAT_SRC, "SSL_write", 1);
        let rebuilt = Mft::from_nodes(mft.nodes().to_vec());
        assert_eq!(rebuilt.render(), mft.render());
        assert_eq!(rebuilt.leaves(), mft.leaves());
    }

    #[test]
    fn empty_tree_operations() {
        let mft = Mft::default();
        assert!(mft.is_empty());
        assert!(mft.leaves().is_empty());
        assert_eq!(mft.render(), "");
        assert!(mft.simplified().is_empty());
    }
}
