//! Separation of `sprintf`-style partial messages into per-field pieces.
//!
//! A format string like `"mac=%s&sn=%s&ver=%d"` assembles several fields
//! in one call; feeding the whole string to the classifier "adds noise to
//! neural networks" (paper §IV-C, Listing 3). This module splits the
//! format at conversion specifications, derives each piece's key text, and
//! exposes the literal chunks so delimiters can be confirmed by LCS
//! clustering.

use crate::lcs::cluster;

/// One piece of a split format string: the literal text leading up to a
/// conversion (which usually carries the field key) plus the conversion
/// itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormatPiece {
    /// Literal text before the conversion (e.g. `"mac="`, `"\"sn\":\""`).
    pub literal: String,
    /// The conversion character (`s`, `d`, `u`, `x`, `c`), or `None` for a
    /// trailing literal with no conversion.
    pub spec: Option<char>,
    /// Field key extracted from the literal (`mac`, `sn`), when one is
    /// recognizable.
    pub key: Option<String>,
}

/// Split a printf-style format string into [`FormatPiece`]s.
///
/// # Examples
///
/// ```
/// use firmres_mft::split_format;
///
/// let pieces = split_format("mac=%s&sn=%s");
/// assert_eq!(pieces.len(), 2);
/// assert_eq!(pieces[0].key.as_deref(), Some("mac"));
/// assert_eq!(pieces[1].key.as_deref(), Some("sn"));
/// ```
pub fn split_format(fmt: &str) -> Vec<FormatPiece> {
    let mut pieces = Vec::new();
    let mut literal = String::new();
    let mut chars = fmt.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '%' {
            literal.push(c);
            continue;
        }
        match chars.next() {
            Some('%') => literal.push('%'),
            Some(spec) if "sduxc".contains(spec) => {
                // Strip the joining delimiter off non-leading pieces so each
                // piece stands alone ("&sn=" → "sn="), per Listing 3.
                let lit = std::mem::take(&mut literal);
                let lit = if pieces.is_empty() {
                    lit
                } else {
                    lit.trim_start_matches(['&', ',', ';', '|', ' '])
                        .to_string()
                };
                pieces.push(FormatPiece {
                    key: extract_key(&lit),
                    literal: lit,
                    spec: Some(spec),
                });
            }
            Some(other) => {
                literal.push('%');
                literal.push(other);
            }
            None => literal.push('%'),
        }
    }
    if !literal.is_empty() {
        pieces.push(FormatPiece {
            key: extract_key(&literal),
            literal,
            spec: None,
        });
    }
    pieces
}

/// Extract the field key from a literal chunk: the identifier immediately
/// before a trailing `=` / `":"` / `=:`-style separator.
pub(crate) fn extract_key(literal: &str) -> Option<String> {
    // Strip trailing quote/colon/equals decoration, then take the trailing
    // identifier.
    let trimmed = literal.trim_end_matches(['"', '\'', ' ']);
    let trimmed = trimmed
        .strip_suffix(':')
        .or_else(|| trimmed.strip_suffix('='))
        .unwrap_or(
            // JSON style: `"key":"` → after stripping quotes we see `key":`
            trimmed,
        );
    let trimmed = trimmed.trim_end_matches(['"', '\'', ':', '=']);
    let key: String = trimmed
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_' || *c == '-')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    if key.is_empty() || key.chars().all(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(key)
    }
}

/// Cluster the literal chunks of several format strings at `threshold`,
/// returning the cluster count — the statistic reported per threshold in
/// Table II (the substrings of deconstructed messages grouped into 5–7
/// clusters at thresholds 0.5/0.6/0.7).
pub fn cluster_count(formats: &[&str], threshold: f64) -> usize {
    let mut chunks: Vec<String> = Vec::new();
    for f in formats {
        for p in split_format(f) {
            if !p.literal.is_empty() {
                chunks.push(p.literal);
            }
        }
    }
    cluster(&chunks, threshold).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_query_style() {
        let pieces = split_format("uploadType=%s&firmwareVersion=%s&serialNo=%s");
        assert_eq!(pieces.len(), 3);
        assert_eq!(pieces[0].key.as_deref(), Some("uploadType"));
        assert_eq!(pieces[1].key.as_deref(), Some("firmwareVersion"));
        assert_eq!(pieces[2].key.as_deref(), Some("serialNo"));
        assert!(pieces.iter().all(|p| p.spec == Some('s')));
    }

    #[test]
    fn splits_json_style() {
        let pieces = split_format("{\"mac\":\"%s\",\"sn\":\"%s\",\"ver\":%d}");
        assert_eq!(pieces.len(), 4, "three conversions plus trailing brace");
        assert_eq!(pieces[0].key.as_deref(), Some("mac"));
        assert_eq!(pieces[1].key.as_deref(), Some("sn"));
        assert_eq!(pieces[2].key.as_deref(), Some("ver"));
        assert_eq!(pieces[2].spec, Some('d'));
        assert_eq!(pieces[3].spec, None, "trailing literal");
    }

    #[test]
    fn percent_escape_is_literal() {
        let pieces = split_format("progress=100%%&id=%s");
        assert_eq!(pieces.len(), 1);
        assert!(pieces[0].literal.contains("100%"));
        assert_eq!(pieces[0].key.as_deref(), Some("id"));
    }

    #[test]
    fn no_conversions_yields_single_literal() {
        let pieces = split_format("/api/v1/register");
        assert_eq!(pieces.len(), 1);
        assert_eq!(pieces[0].spec, None);
    }

    #[test]
    fn unknown_spec_kept_literal() {
        let pieces = split_format("a=%q&b=%s");
        assert_eq!(pieces.len(), 1);
        assert!(pieces[0].literal.contains("%q"));
        assert_eq!(pieces[0].key.as_deref(), Some("b"));
    }

    #[test]
    fn key_extraction_variants() {
        assert_eq!(extract_key("mac="), Some("mac".to_string()));
        assert_eq!(
            extract_key("\"serialNumber\":\""),
            Some("serialNumber".to_string())
        );
        assert_eq!(extract_key("&device_id="), Some("device_id".to_string()));
        assert_eq!(extract_key("?m=camera&a="), Some("a".to_string()));
        assert_eq!(extract_key("   "), None);
        assert_eq!(extract_key("123="), None, "pure digits are not a key");
    }

    #[test]
    fn cluster_count_threshold_behaviour() {
        let formats = ["mac=%s&sn=%s", "uid=%s&token=%s", "{\"a\":\"%s\"}"];
        let c_lo = cluster_count(&formats, 0.3);
        let c_hi = cluster_count(&formats, 0.9);
        assert!(c_lo <= c_hi);
        assert!(c_hi >= 3);
    }
}
