//! Code-slice extraction in the semantically enriched P-Code form.
//!
//! Each root-to-leaf path of the MFT yields a slice: the IR operations on
//! the path rendered as `(Datatype, Name/Constant, NodeID)` triples
//! (paper §IV-C, "Semantic Information Embedding"). Slices for fields
//! assembled by multi-field `sprintf` calls additionally carry their own
//! piece of the format string, produced by [`crate::split_format`] — the
//! paper's partial-message separation.

use crate::split::split_format;
use crate::tree::{Mft, MftNodeId, MftNodeKind};
use firmres_dataflow::{DefUse, FieldSource};
use firmres_ir::{
    is_import_address, AddressSpace, ColdPath, DataType, Function, Opcode, PcodeOp, Program,
    Varnode,
};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A code slice for one message field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeSlice {
    /// Enriched operation text, root-to-leaf, `;`-joined.
    pub text: String,
    /// The terminal source of the field.
    pub source: FieldSource,
    /// Leaf node in the originating MFT.
    pub leaf: MftNodeId,
    /// Path hash for message/field grouping.
    pub path_hash: u64,
    /// The field's own piece of a split format string (`"sn=%s"`,
    /// `"\"mac\":"`), when the field was assembled by a multi-field
    /// writer.
    pub piece: Option<String>,
}

/// Render one operation in the enriched form, e.g.
/// `CALL (Fun, sprintf), (Local, buf, v_2443), (Cons, "mac=%s")`.
pub fn enrich_op(program: &Program, func: &Function, op: &PcodeOp) -> String {
    enrich_op_with(program, func, op, None)
}

/// [`enrich_op`] with an optional def-use analysis: when available, call
/// arguments held in bare registers are traced one definition back so
/// named locals and string constants appear in the slice text — what a
/// decompiler shows at the call site (`sprintf(buf, "mac=%s", mac)`).
pub(crate) fn enrich_op_with(
    program: &Program,
    func: &Function,
    op: &PcodeOp,
    du: Option<&DefUse>,
) -> String {
    let mut parts: Vec<String> = Vec::new();
    if op.opcode.is_call() {
        // First input is the target; render it as a function.
        if let Some(target) = op.inputs.first().and_then(Varnode::const_value) {
            let name = program.callee_name(target).unwrap_or("indirect");
            parts.push(format!("(Fun, {name})"));
        }
        for arg in op.call_args() {
            parts.push(enrich_call_arg(program, func, op, arg, du));
        }
    } else {
        if let Some(out) = &op.output {
            parts.push(enrich_varnode(program, func, out));
        }
        for input in &op.inputs {
            parts.push(enrich_varnode(program, func, input));
        }
    }
    format!("{} {}", op.opcode.mnemonic(), parts.join(", "))
}

/// Resolve a call argument through a short definition chain so the slice
/// shows the decompiled operand instead of a raw register.
fn enrich_call_arg(
    program: &Program,
    func: &Function,
    call: &PcodeOp,
    arg: &Varnode,
    du: Option<&DefUse>,
) -> String {
    let Some(du) = du else {
        return enrich_varnode(program, func, arg);
    };
    let Some(at) = du.position_of(call.addr) else {
        return enrich_varnode(program, func, arg);
    };
    let mut v = arg.clone();
    let mut pos = at;
    for _ in 0..8 {
        if v.is_const() || func.symbols().lookup(&v).is_some() {
            break;
        }
        let defs = du.reaching_defs(pos, &v);
        if defs.len() != 1 {
            break;
        }
        let def = defs[0];
        let op = crate::slice::op_of(func, def);
        match op.opcode {
            Opcode::Copy => {
                v = op.inputs[0].clone();
                pos = def;
            }
            // `lea` of a named local: addi rd, sp, off.
            Opcode::IntAdd => {
                let sp = Varnode::new(AddressSpace::Register, 2, 4);
                if op.inputs[0] == sp {
                    if let Some(k) = op.inputs[1].const_value() {
                        let slot = Varnode::stack(k as i64, 4);
                        if func.symbols().lookup(&slot).is_some() {
                            v = slot;
                        }
                    }
                }
                break;
            }
            _ => break,
        }
    }
    enrich_varnode(program, func, &v)
}

pub(crate) fn op_of(func: &Function, r: crate::slice::OpRefAlias) -> &PcodeOp {
    &func.block(r.block).ops[r.index]
}

pub(crate) type OpRefAlias = firmres_dataflow::OpRef;

/// Render one varnode in the enriched `(Datatype, Name, NodeID)` form.
pub(crate) fn enrich_varnode(program: &Program, func: &Function, v: &Varnode) -> String {
    if let Some(value) = v.const_value() {
        if is_import_address(value) || program.function(value).is_some() {
            let name = program.callee_name(value).unwrap_or("fn");
            return format!("(Fun, {name})");
        }
        if let Some(s) = program.string_at(value) {
            return format!("(Cons, \"{s}\")");
        }
        return format!("(Cons, {value:#x})");
    }
    let id = func.symbols().node_id(v);
    if let Some(sym) = func.symbols().lookup(v) {
        let tag = sym.data_type.tag();
        if sym.data_type == DataType::Function {
            return format!("(Fun, {})", sym.name);
        }
        return format!("({tag}, {}, v_{id})", sym.name);
    }
    // Unnamed storage: synthesize a decompiler-style name.
    match v.space {
        firmres_ir::AddressSpace::Register => {
            format!("(Local, r{}, v_{id})", v.offset)
        }
        firmres_ir::AddressSpace::Stack => {
            format!("(Local, local_{:x}, v_{id})", v.offset as i64)
        }
        firmres_ir::AddressSpace::Unique => format!("(Local, tmp{}, v_{id})", v.offset),
        _ => format!("(Local, anon, v_{id})"),
    }
}

/// Per-leaf piece information for multi-field writers: the leaf's own
/// piece text, plus (for formatted writers) the full template it was cut
/// from, so the template can be substituted out of the leaf's slice —
/// the paper's partial-message separation, applied *before* slices reach
/// the classifier.
struct PieceInfo {
    piece: String,
    full_template: Option<String>,
}

fn piece_map(mft: &Mft) -> BTreeMap<MftNodeId, PieceInfo> {
    let mut map = BTreeMap::new();
    // strcpy/strcat chains alternate key-literal writes and value writes;
    // give each value leaf its key literal as the piece (the paper's
    // observation that access-control fields travel as key-value pairs).
    for n in mft.nodes() {
        let children = &n.children;
        for j in 0..children.len() {
            let key_node = mft.node(children[j]);
            let MftNodeKind::Concat { via } = &key_node.kind else {
                continue;
            };
            if via != "strcat" && via != "strcpy" && via != "store" {
                continue;
            }
            let Some(lit) = first_string_leaf(mft, children[j]) else {
                continue;
            };
            let trimmed = lit.trim_end();
            if !(trimmed.ends_with('=') || trimmed.ends_with(':')) {
                continue;
            }
            // Children are in backward-discovery order: the paired value
            // write is the *previous* sibling.
            if j == 0 {
                continue;
            }
            let value_node = mft.node(children[j - 1]);
            if !matches!(&value_node.kind, MftNodeKind::Concat { .. }) {
                continue;
            }
            for leaf in subtree_leaves(mft, children[j - 1]) {
                map.entry(leaf).or_insert_with(|| PieceInfo {
                    piece: lit.clone(),
                    full_template: None,
                });
            }
        }
    }
    for n in mft.nodes() {
        let MftNodeKind::Concat { via } = &n.kind else {
            continue;
        };
        if n.children.len() < 2 {
            continue;
        }
        // First child subtree should resolve to the key/format constant.
        let Some(key_text) = first_string_leaf(mft, n.children[0]) else {
            continue;
        };
        if via == "sprintf" || via == "snprintf" {
            let pieces = split_format(&key_text);
            for (i, child) in n.children.iter().enumerate().skip(1) {
                if let Some(piece) = pieces.get(i - 1) {
                    let rendered = match piece.spec {
                        Some(spec) => format!("{}%{}", piece.literal, spec),
                        None => piece.literal.clone(),
                    };
                    for leaf in subtree_leaves(mft, *child) {
                        map.insert(
                            leaf,
                            PieceInfo {
                                piece: rendered.clone(),
                                full_template: Some(key_text.clone()),
                            },
                        );
                    }
                }
            }
        } else if via.starts_with("cJSON_Add") {
            // children = [key, value]; the value's piece is the JSON key.
            for leaf in subtree_leaves(mft, n.children[1]) {
                map.insert(
                    leaf,
                    PieceInfo {
                        piece: format!("\"{key_text}\":"),
                        full_template: None,
                    },
                );
            }
        }
    }
    map
}

fn first_string_leaf(mft: &Mft, id: MftNodeId) -> Option<String> {
    let n = mft.node(id);
    if let MftNodeKind::Field(FieldSource::StringConstant { value, .. }) = &n.kind {
        return Some(value.clone());
    }
    for c in &n.children {
        if let Some(s) = first_string_leaf(mft, *c) {
            return Some(s);
        }
    }
    None
}

fn subtree_leaves(mft: &Mft, id: MftNodeId) -> Vec<MftNodeId> {
    let mut out = Vec::new();
    collect_leaves(mft, id, &mut out);
    out
}

fn collect_leaves(mft: &Mft, id: MftNodeId, out: &mut Vec<MftNodeId>) {
    let n = mft.node(id);
    if matches!(n.kind, MftNodeKind::Field(_)) {
        out.push(id);
    }
    for c in &n.children {
        collect_leaves(mft, *c, out);
    }
}

/// Produce a [`CodeSlice`] for every field leaf of `mft`.
///
/// Paths are rendered root-to-leaf; operations shared by several fields
/// (the delivery call, common concatenation steps) appear in each slice,
/// preserving the per-field context the classifier learns from.
pub fn slices_for_tree(program: &Program, mft: &Mft) -> Vec<CodeSlice> {
    SliceRenderer::new(program).slices_for_tree(mft)
}

/// Reusable slice renderer: caches per-function def-use analyses across
/// trees, which matters when rendering slices for every message of a
/// firmware (the pipeline renders hundreds of slices over the same few
/// functions).
///
/// The renderer is `Sync` — the def-use cache lives behind a lock, so one
/// renderer can serve the pipeline's parallel message units. Cached
/// analyses are deterministic functions of the immutable program, so a
/// racing fill can only insert the value every other worker would have.
pub struct SliceRenderer<'p> {
    program: &'p Program,
    mode: ColdPath,
    defuse: RwLock<BTreeMap<u64, Arc<DefUse>>>,
}

impl<'p> SliceRenderer<'p> {
    /// Create a renderer over `program` with the default (optimized)
    /// cold-path data structures.
    pub fn new(program: &'p Program) -> Self {
        SliceRenderer::with_mode(program, ColdPath::default())
    }

    /// Create a renderer whose cached def-use analyses use the given
    /// [`ColdPath`] implementation. Query results are identical either
    /// way; only the solver's data layout differs.
    pub fn with_mode(program: &'p Program, mode: ColdPath) -> Self {
        SliceRenderer {
            program,
            mode,
            defuse: RwLock::new(BTreeMap::new()),
        }
    }

    fn du(&self, func: u64, f: &Function) -> Arc<DefUse> {
        if let Some(du) = self.defuse.read().get(&func) {
            return Arc::clone(du);
        }
        let du = Arc::new(DefUse::compute_with(f, self.mode));
        Arc::clone(self.defuse.write().entry(func).or_insert(du))
    }

    /// Produce a [`CodeSlice`] for every field leaf of `mft` (see
    /// [`slices_for_tree`]).
    ///
    /// Both modes emit identical bytes; the reference mode re-renders
    /// every operation of every root-to-leaf path from scratch (the
    /// pre-optimization behaviour, kept as the byte-identity oracle),
    /// while the optimized mode renders each distinct operation once per
    /// firmware via the cross-tree line memo and assembles slice text in
    /// a single buffer.
    pub fn slices_for_tree(&self, mft: &Mft) -> Vec<CodeSlice> {
        match self.mode {
            ColdPath::Reference => self.slices_for_tree_reference(mft),
            ColdPath::Optimized => self.slices_for_tree_memo(mft),
        }
    }

    /// The original per-leaf rendering: every operation on every path is
    /// enriched fresh and joined through intermediate `String`s.
    fn slices_for_tree_reference(&self, mft: &Mft) -> Vec<CodeSlice> {
        let program = self.program;
        let pieces = piece_map(mft);
        let mut out = Vec::new();
        for leaf in mft.leaves() {
            let source = match &mft.node(leaf).kind {
                MftNodeKind::Field(s) => s.clone(),
                _ => continue,
            };
            // Collect path root→leaf.
            let mut path = Vec::new();
            let mut cur = Some(leaf);
            while let Some(id) = cur {
                path.push(id);
                cur = mft.node(id).parent;
            }
            path.reverse();
            let info = pieces.get(&leaf);
            let mut rendered: Vec<String> = Vec::new();
            for id in &path {
                let n = mft.node(*id);
                if let Some(op) = &n.op {
                    if let Some(f) = program.function(n.func) {
                        let du = self.du(n.func, f);
                        let mut line = enrich_op_with(program, f, op, Some(&du));
                        // Partial-message separation: this field's slice shows
                        // only its own piece of a multi-field template, not the
                        // whole format string (which would leak sibling keys
                        // into the classifier's context).
                        if let Some(PieceInfo {
                            piece,
                            full_template: Some(full),
                        }) = info
                        {
                            line = line.replace(full.as_str(), piece.as_str());
                        }
                        rendered.push(line);
                    }
                }
            }
            // The leaf itself (source description) closes the slice.
            rendered.push(format!("SRC {source}"));
            if let Some(info) = info {
                rendered.push(format!("FIELD (Cons, \"{}\")", info.piece));
            }
            out.push(CodeSlice {
                text: rendered.join(" ; "),
                source,
                leaf,
                path_hash: mft.path_hash(leaf),
                piece: info.map(|i| i.piece.clone()),
            });
        }
        out
    }

    /// Memoized rendering: byte-identical to
    /// [`Self::slices_for_tree_reference`] (the cold-path gate's report
    /// comparison pins this), with each node's operation rendered once
    /// per tree and slice text assembled in one buffer.
    fn slices_for_tree_memo(&self, mft: &Mft) -> Vec<CodeSlice> {
        let program = self.program;
        let pieces = piece_map(mft);
        // A node's operation renders identically for every leaf whose
        // path crosses it, and path prefixes are shared (the delivery
        // call sits on *every* path) — render each node once per tree
        // instead of once per leaf. The leaf-dependent template
        // substitution below is applied while copying into the slice
        // buffer, so the memo stays leaf-independent and the emitted
        // text is unchanged.
        let mut node_lines: BTreeMap<MftNodeId, Option<String>> = BTreeMap::new();
        let mut out = Vec::new();
        for leaf in mft.leaves() {
            let source = match &mft.node(leaf).kind {
                MftNodeKind::Field(s) => s.clone(),
                _ => continue,
            };
            // Collect path root→leaf.
            let mut path = Vec::new();
            let mut cur = Some(leaf);
            while let Some(id) = cur {
                path.push(id);
                cur = mft.node(id).parent;
            }
            path.reverse();
            let info = pieces.get(&leaf);
            // Assemble the slice text directly: appending each line (with
            // the `" ; "` separator between lines) produces the same
            // bytes the reference `Vec<String>` + `join(" ; ")` does,
            // without an owned copy of every memoized line per leaf.
            let mut text = String::new();
            for id in &path {
                let line = node_lines.entry(*id).or_insert_with(|| {
                    let n = mft.node(*id);
                    let op = n.op.as_ref()?;
                    let f = program.function(n.func)?;
                    let du = self.du(n.func, f);
                    Some(enrich_op_with(program, f, op, Some(&du)))
                });
                if let Some(line) = line {
                    if !text.is_empty() {
                        text.push_str(" ; ");
                    }
                    // Partial-message separation: this field's slice shows
                    // only its own piece of a multi-field template, not the
                    // whole format string (which would leak sibling keys
                    // into the classifier's context). The streamed scan
                    // below is `str::replace` (leftmost, non-overlapping)
                    // writing straight into the slice buffer.
                    match info {
                        Some(PieceInfo {
                            piece,
                            full_template: Some(full),
                        }) if !full.is_empty() => {
                            let mut rest: &str = line;
                            while let Some(pos) = rest.find(full.as_str()) {
                                text.push_str(&rest[..pos]);
                                text.push_str(piece);
                                rest = &rest[pos + full.len()..];
                            }
                            text.push_str(rest);
                        }
                        Some(PieceInfo {
                            piece,
                            full_template: Some(full),
                        }) => {
                            // Degenerate empty template: defer to
                            // `str::replace` for its exact semantics.
                            text.push_str(&line.replace(full.as_str(), piece.as_str()));
                        }
                        _ => text.push_str(line),
                    }
                }
            }
            // The leaf itself (source description) closes the slice.
            if !text.is_empty() {
                text.push_str(" ; ");
            }
            {
                use std::fmt::Write as _;
                write!(text, "SRC {source}").expect("write to String");
            }
            if let Some(info) = info {
                text.push_str(" ; FIELD (Cons, \"");
                text.push_str(&info.piece);
                text.push_str("\")");
            }
            out.push(CodeSlice {
                text,
                source,
                leaf,
                path_hash: mft.path_hash(leaf),
                piece: info.map(|i| i.piece.clone()),
            });
        }
        out
    }
}

/// Whether an opcode would normally appear in slices (used by tests and
/// diagnostics).
pub(crate) fn _slice_relevant(op: Opcode) -> bool {
    op.is_dataflow() || op.is_call()
}

#[cfg(test)]
mod tests {
    use super::*;
    use firmres_dataflow::TaintEngine;
    use firmres_isa::{lift, Assembler};

    fn mft_for(src: &str, delivery: &str, arg: usize) -> (Program, Mft) {
        let exe = Assembler::new().assemble(src).unwrap();
        let p = lift(&exe, "t").unwrap();
        let mut found = None;
        for f in p.functions() {
            for c in f.callsites() {
                if c.call_target().and_then(|t| p.callee_name(t)) == Some(delivery) {
                    found = Some((f.entry(), c.addr));
                }
            }
        }
        let (func, call) = found.unwrap();
        let tree = TaintEngine::new(&p).trace(func, call, arg);
        let mft = Mft::from_taint(&tree);
        (p, mft)
    }

    const SPRINTF_SRC: &str = r#"
.func main
.local buf 128
.local mac 32
    lea a0, mac
    callx get_mac_addr
    lea a0, buf
    la  a1, fmt
    lea a2, mac
    la  a3, sn
    callx sprintf
    lea a1, buf
    li  a0, 1
    callx SSL_write
    ret
.endfunc
.data
fmt: .asciz "mac=%s&sn=%s"
sn: .asciz "SN123456"
"#;

    #[test]
    fn slices_cover_every_leaf() {
        let (p, mft) = mft_for(SPRINTF_SRC, "SSL_write", 1);
        let slices = slices_for_tree(&p, &mft);
        assert_eq!(slices.len(), mft.leaves().len());
        assert!(slices.iter().all(|s| !s.text.is_empty()));
    }

    #[test]
    fn sprintf_value_slices_carry_their_format_piece() {
        let (p, mft) = mft_for(SPRINTF_SRC, "SSL_write", 1);
        let slices = slices_for_tree(&p, &mft);
        let mac_slice = slices
            .iter()
            .find(|s| s.source.to_string().contains("get_mac_addr"))
            .expect("mac leaf present");
        assert_eq!(mac_slice.piece.as_deref(), Some("mac=%s"));
        assert!(mac_slice.text.contains("mac=%s"), "{}", mac_slice.text);
        let sn_slice = slices
            .iter()
            .find(|s| s.source.to_string().contains("SN123456"))
            .expect("sn leaf present");
        assert_eq!(sn_slice.piece.as_deref(), Some("sn=%s"));
    }

    #[test]
    fn enriched_text_contains_function_and_symbol_names() {
        let (p, mft) = mft_for(SPRINTF_SRC, "SSL_write", 1);
        let slices = slices_for_tree(&p, &mft);
        let any = &slices[0];
        assert!(any.text.contains("(Fun, SSL_write)"), "{}", any.text);
        // The named local `buf` shows up with a node id.
        assert!(
            slices.iter().any(|s| s.text.contains("(Local, buf, v_")),
            "named locals rendered: {}",
            slices[0].text
        );
    }

    #[test]
    fn cjson_value_slices_get_json_key_piece() {
        let src = r#"
.func main
    callx cJSON_CreateObject
    mov t0, rv
    mov a0, t0
    la  a1, k
    la  a2, v
    callx cJSON_AddStringToObject
    mov a0, t0
    callx cJSON_Print
    mov a1, rv
    li  a0, 1
    callx SSL_write
    ret
.endfunc
.data
k: .asciz "deviceId"
v: .asciz "D-1000"
"#;
        let (p, mft) = mft_for(src, "SSL_write", 1);
        let slices = slices_for_tree(&p, &mft);
        let value_slice = slices
            .iter()
            .find(|s| s.source.to_string().contains("D-1000"))
            .expect("value leaf");
        assert_eq!(value_slice.piece.as_deref(), Some("\"deviceId\":"));
    }

    #[test]
    fn enrich_op_renders_paper_style() {
        let src = ".func main\n la a0, s\n callx puts\n ret\n.endfunc\n.data\ns: .asciz \"posting data of is %s\"\n";
        let exe = Assembler::new().assemble(src).unwrap();
        let p = lift(&exe, "t").unwrap();
        let f = p.function_by_name("main").unwrap();
        let call = f.callsites().next().unwrap();
        let text = enrich_op(&p, f, call);
        assert!(text.starts_with("CALL (Fun, puts)"), "{text}");
        let copy = f.ops().find(|o| o.opcode == Opcode::Copy).unwrap();
        let text = enrich_op(&p, f, copy);
        assert!(text.contains("(Cons, \"posting data of is %s\")"), "{text}");
    }

    #[test]
    fn path_hashes_group_same_message_fields() {
        let (p, mft) = mft_for(SPRINTF_SRC, "SSL_write", 1);
        let slices = slices_for_tree(&p, &mft);
        // All slices of this one message share the root, so hashes differ
        // per leaf but are all nonzero and stable.
        let hashes: Vec<u64> = slices.iter().map(|s| s.path_hash).collect();
        assert!(hashes.iter().all(|h| *h != 0));
        // Structurally distinct paths hash differently (identical paths —
        // e.g. two unresolved garbage arguments — may legitimately collide).
        let mac = slices
            .iter()
            .find(|s| s.source.to_string().contains("get_mac_addr"))
            .unwrap();
        let sn = slices
            .iter()
            .find(|s| s.source.to_string().contains("SN123456"))
            .unwrap();
        assert_ne!(mac.path_hash, sn.path_hash);
    }
}
