//! Longest-common-subsequence similarity and clustering.
//!
//! Used to discover the delimiters of `sprintf`-assembled partial messages
//! (paper §IV-C): substrings of formatted output are clustered by
//! `Similarity(a, b) = 2·L_common / (L_a + L_b)` where `L_common` is the
//! length of the longest common subsequence.

/// Length of the longest common subsequence of `a` and `b`.
///
/// Classic O(|a|·|b|) dynamic program over bytes.
///
/// # Examples
///
/// ```
/// assert_eq!(firmres_mft::lcs_len("abcde", "ace"), 3);
/// assert_eq!(firmres_mft::lcs_len("", "xyz"), 0);
/// ```
pub fn lcs_len(a: &str, b: &str) -> usize {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let mut prev = vec![0usize; b.len() + 1];
    let mut cur = vec![0usize; b.len() + 1];
    for &ca in a {
        for (j, &cb) in b.iter().enumerate() {
            cur[j + 1] = if ca == cb {
                prev[j] + 1
            } else {
                prev[j + 1].max(cur[j])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The paper's clustering similarity: `2·LCS(a,b) / (|a| + |b|)`.
///
/// Symmetric and bounded to `[0, 1]`; `1.0` exactly when `a == b` (and
/// both non-empty). Two empty strings are defined to be identical (1.0).
pub fn similarity(a: &str, b: &str) -> f64 {
    let la = a.len();
    let lb = b.len();
    if la + lb == 0 {
        return 1.0;
    }
    2.0 * lcs_len(a, b) as f64 / (la + lb) as f64
}

/// Greedy agglomerative clustering: each string joins the first cluster
/// whose representative (first member) is at least `threshold` similar,
/// otherwise it founds a new cluster.
///
/// The paper evaluates thresholds 0.5, 0.6 and 0.7 (Table II's
/// `thd` columns); the same sweep is reproduced in the benchmarks.
pub fn cluster(items: &[String], threshold: f64) -> Vec<Vec<String>> {
    let mut clusters: Vec<Vec<String>> = Vec::new();
    for item in items {
        match clusters
            .iter_mut()
            .find(|c| similarity(&c[0], item) >= threshold)
        {
            Some(c) => c.push(item.clone()),
            None => clusters.push(vec![item.clone()]),
        }
    }
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcs_basics() {
        assert_eq!(lcs_len("abc", "abc"), 3);
        assert_eq!(lcs_len("abc", "xyz"), 0);
        assert_eq!(lcs_len("deviceId=", "userId="), 4); // "eId="
    }

    #[test]
    fn lcs_known_values() {
        assert_eq!(lcs_len("AGGTAB", "GXTXAYB"), 4); // GTAB
        assert_eq!(lcs_len("a", ""), 0);
    }

    #[test]
    fn similarity_properties() {
        // symmetric
        assert_eq!(similarity("mac=%s", "sn=%s"), similarity("sn=%s", "mac=%s"));
        // identity
        assert!((similarity("abc", "abc") - 1.0).abs() < 1e-12);
        // bounded
        let s = similarity("mac=%s&", "uploadType=%s&");
        assert!((0.0..=1.0).contains(&s));
        // empty-empty defined as 1
        assert_eq!(similarity("", ""), 1.0);
        assert_eq!(similarity("", "x"), 0.0);
    }

    #[test]
    fn clustering_groups_similar_key_value_pieces() {
        let items: Vec<String> = ["mac=%s", "sn=%s", "model=%s", "POST /register", "GET /ping"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let clusters = cluster(&items, 0.5);
        // The three key=value pieces cluster together; the two HTTP lines
        // form separate or shared clusters, but never join the k=v group.
        let kv = clusters
            .iter()
            .find(|c| c.contains(&"mac=%s".to_string()))
            .unwrap();
        assert!(kv.contains(&"sn=%s".to_string()));
        assert!(!kv.contains(&"POST /register".to_string()));
    }

    #[test]
    fn threshold_sweep_is_monotone_in_cluster_count() {
        let items: Vec<String> = ["a=%s", "bb=%s", "ccc=%s", "dddd=%d", "x", "yy"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let c5 = cluster(&items, 0.5).len();
        let c6 = cluster(&items, 0.6).len();
        let c7 = cluster(&items, 0.7).len();
        assert!(
            c5 <= c6 && c6 <= c7,
            "higher threshold, never fewer clusters: {c5} {c6} {c7}"
        );
    }

    #[test]
    fn empty_input_yields_no_clusters() {
        assert!(cluster(&[], 0.5).is_empty());
    }
}
