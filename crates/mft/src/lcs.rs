//! Longest-common-subsequence similarity and clustering.
//!
//! Used to discover the delimiters of `sprintf`-assembled partial messages
//! (paper §IV-C): substrings of formatted output are clustered by
//! `Similarity(a, b) = 2·L_common / (L_a + L_b)` where `L_common` is the
//! length of the longest common subsequence.
//!
//! `lcs_len` is the bit-parallel formulation (Crochemore et al., "A fast
//! and practical bit-vector algorithm for the LCS problem"): the DP row
//! lives in ⌈|b|/64⌉ machine words and each character of `a` updates the
//! whole row with a handful of word operations, so the cost is
//! O(⌈|b|/64⌉·|a|) instead of the classic O(|a|·|b|). The classic DP is
//! kept under `#[cfg(test)]` as the oracle the property tests compare
//! against.

/// Length of the longest common subsequence of `a` and `b`.
///
/// Bit-parallel over bytes: the row state `V` starts all-ones; for each
/// byte of `a` with match mask `M` over `b`,
/// `V' = (V + (V & M)) | (V & !M)` (the addition carries across words,
/// low to high). The LCS length is the number of zero bits among the low
/// `|b|` bits of the final `V`. Carries past bit `|b|` can scramble the
/// unused high bits of the top word, but carries only travel upward, so
/// the counted bits are never affected.
///
/// # Examples
///
/// ```
/// assert_eq!(firmres_mft::lcs_len("abcde", "ace"), 3);
/// assert_eq!(firmres_mft::lcs_len("", "xyz"), 0);
/// ```
pub fn lcs_len(a: &str, b: &str) -> usize {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let n = b.len();
    let words = n.div_ceil(64);

    // Match masks, one row of `words` words per distinct byte of `b`.
    // `slot[c]` indexes the row for byte value `c` (MAX = not in `b`,
    // so the update below is the identity and is skipped entirely).
    let mut slot = [u16::MAX; 256];
    let mut distinct = 0u16;
    for &cb in b {
        if slot[cb as usize] == u16::MAX {
            slot[cb as usize] = distinct;
            distinct += 1;
        }
    }
    let mut masks = vec![0u64; distinct as usize * words];
    for (j, &cb) in b.iter().enumerate() {
        let base = slot[cb as usize] as usize * words;
        masks[base + (j >> 6)] |= 1u64 << (j & 63);
    }

    let mut v = vec![u64::MAX; words];
    for &ca in a {
        let s = slot[ca as usize];
        if s == u16::MAX {
            continue; // M = 0 leaves V unchanged
        }
        let row = &masks[s as usize * words..s as usize * words + words];
        let mut carry = 0u64;
        for (vw, &m) in v.iter_mut().zip(row) {
            let old = *vw;
            let u = old & m;
            let (sum, c1) = old.overflowing_add(u);
            let (sum, c2) = sum.overflowing_add(carry);
            carry = u64::from(c1 | c2);
            *vw = sum | (old & !m);
        }
    }

    // Zero bits among the low n bits of V are matched positions.
    let mut len = 0usize;
    for (w, &vw) in v.iter().enumerate() {
        let low = if w == words - 1 && n % 64 != 0 {
            (1u64 << (n % 64)) - 1
        } else {
            u64::MAX
        };
        len += (!vw & low).count_ones() as usize;
    }
    len
}

/// The paper's clustering similarity: `2·LCS(a,b) / (|a| + |b|)`.
///
/// Symmetric and bounded to `[0, 1]`; `1.0` exactly when `a == b` (and
/// both non-empty). Two empty strings are defined to be identical (1.0).
pub fn similarity(a: &str, b: &str) -> f64 {
    let la = a.len();
    let lb = b.len();
    if la + lb == 0 {
        return 1.0;
    }
    2.0 * lcs_len(a, b) as f64 / (la + lb) as f64
}

/// `similarity(a, b) >= threshold`, with the LCS skipped whenever the
/// length-only upper bound already rules the pair out.
///
/// `LCS(a,b) <= min(|a|,|b|)`, so `similarity <= 2·min/(|a|+|b|)`; when
/// that bound is below the threshold the expensive comparison cannot
/// pass and is not run. The bound is exact arithmetic on the same
/// operands, so the answer is identical to computing the similarity —
/// only the cost differs.
fn meets_threshold(a: &str, b: &str, threshold: f64) -> bool {
    let la = a.len();
    let lb = b.len();
    if la + lb == 0 {
        return 1.0 >= threshold;
    }
    let bound = 2.0 * la.min(lb) as f64 / (la + lb) as f64;
    if bound < threshold {
        return false;
    }
    similarity(a, b) >= threshold
}

/// Greedy agglomerative clustering: each string joins the first cluster
/// whose representative (first member) is at least `threshold` similar,
/// otherwise it founds a new cluster.
///
/// The paper evaluates thresholds 0.5, 0.6 and 0.7 (Table II's
/// `thd` columns); the same sweep is reproduced in the benchmarks.
/// Membership is tracked by index and the owned strings are materialized
/// once at the end, so growing a cluster shuffles `usize`s, not `String`s.
pub fn cluster(items: &[String], threshold: f64) -> Vec<Vec<String>> {
    let mut members: Vec<Vec<usize>> = Vec::new();
    for (i, item) in items.iter().enumerate() {
        match members
            .iter_mut()
            .find(|c| meets_threshold(&items[c[0]], item, threshold))
        {
            Some(c) => c.push(i),
            None => members.push(vec![i]),
        }
    }
    members
        .into_iter()
        .map(|c| c.into_iter().map(|i| items[i].clone()).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The classic O(|a|·|b|) dynamic program — the oracle `lcs_len`'s
    /// bit-parallel row update is verified against.
    fn lcs_len_dp(a: &str, b: &str) -> usize {
        let (a, b) = (a.as_bytes(), b.as_bytes());
        if a.is_empty() || b.is_empty() {
            return 0;
        }
        let mut prev = vec![0usize; b.len() + 1];
        let mut cur = vec![0usize; b.len() + 1];
        for &ca in a {
            for (j, &cb) in b.iter().enumerate() {
                cur[j + 1] = if ca == cb {
                    prev[j] + 1
                } else {
                    prev[j + 1].max(cur[j])
                };
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        prev[b.len()]
    }

    #[test]
    fn lcs_basics() {
        assert_eq!(lcs_len("abc", "abc"), 3);
        assert_eq!(lcs_len("abc", "xyz"), 0);
        assert_eq!(lcs_len("deviceId=", "userId="), 4); // "eId="
    }

    #[test]
    fn lcs_known_values() {
        assert_eq!(lcs_len("AGGTAB", "GXTXAYB"), 4); // GTAB
        assert_eq!(lcs_len("a", ""), 0);
    }

    #[test]
    fn lcs_crosses_word_boundaries() {
        // |b| > 64 exercises the multi-word carry chain.
        let a = "x".repeat(70) + "key=value";
        let b = "key=".to_string() + &"y".repeat(100) + "value";
        assert_eq!(lcs_len(&a, &b), lcs_len_dp(&a, &b));
        let long = "ab".repeat(200);
        assert_eq!(lcs_len(&long, &long), long.len());
    }

    proptest! {
        #[test]
        fn bit_parallel_matches_dp(
            a in "[a-e=%&{}\"]{0,150}",
            b in "[a-e=%&{}\"]{0,150}",
        ) {
            prop_assert_eq!(lcs_len(&a, &b), lcs_len_dp(&a, &b));
        }

        #[test]
        fn bit_parallel_matches_dp_on_bytes(
            a in proptest::collection::vec(any::<u8>(), 0..200),
            b in proptest::collection::vec(any::<u8>(), 0..200),
        ) {
            // Arbitrary bytes via a lossless latin-1-ish mapping keeps the
            // byte-level DP comparable (multi-byte UTF-8 is fine: both
            // implementations operate on bytes).
            let a: String = a.iter().map(|&x| x as char).collect();
            let b: String = b.iter().map(|&x| x as char).collect();
            prop_assert_eq!(lcs_len(&a, &b), lcs_len_dp(&a, &b));
        }

        #[test]
        fn early_exit_never_changes_membership(
            items in proptest::collection::vec("[a-d=%]{0,20}", 0..12),
            thr in 0.0f64..1.0,
        ) {
            for a in &items {
                for b in &items {
                    prop_assert_eq!(
                        meets_threshold(a, b, thr),
                        similarity(a, b) >= thr
                    );
                }
            }
        }
    }

    #[test]
    fn similarity_properties() {
        // symmetric
        assert_eq!(similarity("mac=%s", "sn=%s"), similarity("sn=%s", "mac=%s"));
        // identity
        assert!((similarity("abc", "abc") - 1.0).abs() < 1e-12);
        // bounded
        let s = similarity("mac=%s&", "uploadType=%s&");
        assert!((0.0..=1.0).contains(&s));
        // empty-empty defined as 1
        assert_eq!(similarity("", ""), 1.0);
        assert_eq!(similarity("", "x"), 0.0);
    }

    #[test]
    fn clustering_groups_similar_key_value_pieces() {
        let items: Vec<String> = ["mac=%s", "sn=%s", "model=%s", "POST /register", "GET /ping"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let clusters = cluster(&items, 0.5);
        // The three key=value pieces cluster together; the two HTTP lines
        // form separate or shared clusters, but never join the k=v group.
        let kv = clusters
            .iter()
            .find(|c| c.contains(&"mac=%s".to_string()))
            .unwrap();
        assert!(kv.contains(&"sn=%s".to_string()));
        assert!(!kv.contains(&"POST /register".to_string()));
    }

    #[test]
    fn threshold_sweep_is_monotone_in_cluster_count() {
        let items: Vec<String> = ["a=%s", "bb=%s", "ccc=%s", "dddd=%d", "x", "yy"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let c5 = cluster(&items, 0.5).len();
        let c6 = cluster(&items, 0.6).len();
        let c7 = cluster(&items, 0.7).len();
        assert!(
            c5 <= c6 && c6 <= c7,
            "higher threshold, never fewer clusters: {c5} {c6} {c7}"
        );
    }

    #[test]
    fn empty_input_yields_no_clusters() {
        assert!(cluster(&[], 0.5).is_empty());
    }
}
