//! # firmres-cloud
//!
//! An in-process IoT cloud simulator: the probing target of the FIRMRES
//! pipeline.
//!
//! The paper validates reconstructed messages against live vendor clouds
//! and manually confirms access-control flaws (§IV-E, §V-C/D). This crate
//! replaces the live clouds with a configurable simulator:
//!
//! * [`Cloud`] — hosts HTTP-style and MQTT-style endpoints over a shared
//!   [`state::CloudState`] (registered devices, user accounts, bind
//!   tokens, stored resources).
//! * [`Endpoint`]/[`Check`] — per-endpoint access-control policy. Flawed
//!   policies (identifier-only auth, fixed tokens, missing credentials)
//!   mirror the vulnerability classes of Table III.
//! * [`probe`] — response classification exactly as §V-C: `Request OK`,
//!   `No Permission` and `Access Denied` confirm a *valid* reconstructed
//!   message; `Bad Request`, `Request Not Supported` and `Path Not Exists`
//!   mean the reconstruction is wrong.
//! * [`json`] — a minimal JSON parser/printer so the cloud actually
//!   parses the rendered device messages.
//!
//! Tokens and signatures use a keyed FNV construction
//! ([`mac::keyed_mac`]) — **not cryptographically secure**, deliberately:
//! only the equality/derivation structure matters for access-control
//! checking.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod mac;
pub mod mqtt;
pub mod probe;
pub mod state;

mod endpoint;
mod server;

pub use endpoint::{Check, Endpoint, EndpointKind, FlawClass, ResponseSpec};
pub use probe::{classify_response, ProbeOutcome, ResponseStatus};
pub use server::{Cloud, HttpRequest, HttpResponse};
pub use state::{CloudState, DeviceRecord};
