//! Endpoint definitions and access-control policies.

use std::fmt;

/// Transport kind of an endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EndpointKind {
    /// HTTP path (`/auth/get_bind_params`, `?m=camera&a=login`).
    Http,
    /// MQTT topic (`/sys/properties/report`).
    MqttTopic,
}

/// One access-control check an endpoint performs on an incoming message.
///
/// Field names refer to message parameters. A *secure* endpoint verifies
/// device authenticity (secret/signature/token), not just identity; the
/// vulnerable endpoints of Table III omit exactly these checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Check {
    /// Parameter must be present (any value).
    FieldPresent(String),
    /// Parameter must name a registered device (Dev-Identifier check).
    KnownDevice(String),
    /// `(identifier field, secret field)` must match the provisioned
    /// Dev-Secret.
    SecretValid(String, String),
    /// `(user field, password field)` must be a valid account (User-Cred).
    UserCredValid(String, String),
    /// `(identifier field, token field)` must be a valid Bind-Token.
    TokenValid(String, String),
    /// `(identifier field, signature field)` must verify against the
    /// device secret (Signature).
    SignatureValid(String, String),
}

impl Check {
    /// Whether this check verifies *authenticity* (not just identity).
    pub fn is_authenticity(&self) -> bool {
        matches!(
            self,
            Check::SecretValid(..)
                | Check::UserCredValid(..)
                | Check::TokenValid(..)
                | Check::SignatureValid(..)
        )
    }
}

/// What a successful request returns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResponseSpec {
    /// Plain acknowledgement.
    Ok,
    /// A fixed, device-independent token (the Table III device-5 flaw).
    FixedToken(String),
    /// The device's real bind token (sensitive when auth is weak).
    BindToken(String),
    /// The device certificate / secret (CVE-2023-2586 pattern).
    DeviceSecret(String),
    /// Storage access/secret keys.
    StorageKeys(String),
    /// List of stored resources (cloud recordings, share lists).
    ResourceList(String),
}

impl ResponseSpec {
    /// Whether the response leaks material useful for impersonation.
    pub fn leaks_credentials(&self) -> bool {
        matches!(
            self,
            ResponseSpec::FixedToken(_)
                | ResponseSpec::BindToken(_)
                | ResponseSpec::DeviceSecret(_)
                | ResponseSpec::StorageKeys(_)
        )
    }
}

/// A cloud endpoint with its access-control policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Endpoint {
    /// Path (HTTP) or topic (MQTT).
    pub path: String,
    /// Transport kind.
    pub kind: EndpointKind,
    /// Human description ("Uploading crash logs.") for Table III.
    pub functionality: String,
    /// Checks performed, in order.
    pub checks: Vec<Check>,
    /// Response on success.
    pub response: ResponseSpec,
    /// Impact statement when the policy is flawed (Table III
    /// "Consequence" column).
    pub consequence: Option<String>,
}

/// Classification of an endpoint's access-control weakness, mirroring the
/// paper's findings (§V-D: 10 identifier-only interfaces, 2 missing
/// Dev-Secret, 1 missing User-Cred).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FlawClass {
    /// Only Dev-Identifier fields are checked — forgeable from public or
    /// guessable identifiers.
    IdentifierOnly,
    /// Registration/bind flow without any Dev-Secret proof.
    MissingDevSecret,
    /// Binding without the owning user's credential.
    MissingUserCred,
    /// Returns a fixed token regardless of the device.
    FixedTokenIssued,
}

impl fmt::Display for FlawClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FlawClass::IdentifierOnly => "identifier-only authentication",
            FlawClass::MissingDevSecret => "missing Dev-Secret",
            FlawClass::MissingUserCred => "missing User-Cred",
            FlawClass::FixedTokenIssued => "fixed token issued",
        })
    }
}

impl Endpoint {
    /// Audit this endpoint's policy: `None` when some authenticity check
    /// is present, otherwise the flaw class.
    pub fn flaw(&self) -> Option<FlawClass> {
        if self.checks.iter().any(Check::is_authenticity) {
            // Secure unless it still hands out a fixed token.
            if matches!(self.response, ResponseSpec::FixedToken(_)) {
                return Some(FlawClass::FixedTokenIssued);
            }
            return None;
        }
        if matches!(self.response, ResponseSpec::FixedToken(_)) {
            return Some(FlawClass::FixedTokenIssued);
        }
        let is_bind = self.functionality.to_ascii_lowercase().contains("bind");
        let is_register = self.functionality.to_ascii_lowercase().contains("regist");
        if is_bind {
            return Some(FlawClass::MissingUserCred);
        }
        if is_register {
            return Some(FlawClass::MissingDevSecret);
        }
        Some(FlawClass::IdentifierOnly)
    }

    /// Parameter names the endpoint expects (union of check fields).
    pub fn expected_params(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for c in &self.checks {
            match c {
                Check::FieldPresent(f) | Check::KnownDevice(f) => out.push(f),
                Check::SecretValid(a, b)
                | Check::UserCredValid(a, b)
                | Check::TokenValid(a, b)
                | Check::SignatureValid(a, b) => {
                    out.push(a);
                    out.push(b);
                }
            }
        }
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn endpoint(checks: Vec<Check>, response: ResponseSpec, functionality: &str) -> Endpoint {
        Endpoint {
            path: "/x".into(),
            kind: EndpointKind::Http,
            functionality: functionality.into(),
            checks,
            response,
            consequence: None,
        }
    }

    #[test]
    fn secure_endpoint_has_no_flaw() {
        let e = endpoint(
            vec![
                Check::KnownDevice("deviceId".into()),
                Check::SecretValid("deviceId".into(), "secret".into()),
            ],
            ResponseSpec::Ok,
            "Uploading telemetry.",
        );
        assert_eq!(e.flaw(), None);
    }

    #[test]
    fn identifier_only_is_flagged() {
        let e = endpoint(
            vec![
                Check::KnownDevice("uid".into()),
                Check::FieldPresent("version".into()),
            ],
            ResponseSpec::Ok,
            "Uploading crash logs.",
        );
        assert_eq!(e.flaw(), Some(FlawClass::IdentifierOnly));
    }

    #[test]
    fn bind_without_user_cred() {
        let e = endpoint(
            vec![Check::KnownDevice("deviceID".into())],
            ResponseSpec::Ok,
            "Binding the device to the cloud user.",
        );
        assert_eq!(e.flaw(), Some(FlawClass::MissingUserCred));
    }

    #[test]
    fn registration_without_secret() {
        let e = endpoint(
            vec![Check::KnownDevice("serialNumber".into())],
            ResponseSpec::DeviceSecret("cert".into()),
            "Registrating device to the cloud.",
        );
        assert_eq!(e.flaw(), Some(FlawClass::MissingDevSecret));
    }

    #[test]
    fn fixed_token_flagged_even_with_auth() {
        let e = endpoint(
            vec![Check::SecretValid("id".into(), "secret".into())],
            ResponseSpec::FixedToken("FIXED-1".into()),
            "Registrating device to the cloud.",
        );
        assert_eq!(e.flaw(), Some(FlawClass::FixedTokenIssued));
    }

    #[test]
    fn expected_params_and_leaks() {
        let e = endpoint(
            vec![
                Check::KnownDevice("deviceId".into()),
                Check::TokenValid("deviceId".into(), "token".into()),
            ],
            ResponseSpec::StorageKeys("keys".into()),
            "Authenticating to storage.",
        );
        assert_eq!(e.expected_params(), vec!["deviceId", "token"]);
        assert!(e.response.leaks_credentials());
        assert!(!ResponseSpec::Ok.leaks_credentials());
    }

    #[test]
    fn authenticity_classification() {
        assert!(Check::SecretValid("a".into(), "b".into()).is_authenticity());
        assert!(Check::TokenValid("a".into(), "b".into()).is_authenticity());
        assert!(!Check::KnownDevice("a".into()).is_authenticity());
        assert!(!Check::FieldPresent("a".into()).is_authenticity());
    }
}
