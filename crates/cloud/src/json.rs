//! A minimal JSON value, parser and printer.
//!
//! Device-cloud message bodies are a small JSON subset (objects, arrays,
//! strings, integer numbers, booleans, null); building the parser keeps
//! the workspace dependency-light (see DESIGN.md) and exercises real
//! message-parsing paths in the cloud simulator.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`
    Null,
    /// `true`/`false`
    Bool(bool),
    /// Integer number (floats are out of scope for device messages).
    Num(i64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with deterministic key order.
    Obj(BTreeMap<String, Json>),
}

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub at: usize,
    /// Description.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with the byte offset of the first problem;
    /// trailing non-whitespace input is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(JsonError {
                at: p.pos,
                msg: "trailing input",
            });
        }
        Ok(v)
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The object member `key`, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Object members as strings: for flat device messages, the
    /// `key → stringified value` view used by the access-control checks.
    pub fn flat_params(&self) -> BTreeMap<String, String> {
        let mut out = BTreeMap::new();
        if let Json::Obj(m) = self {
            for (k, v) in m {
                let s = match v {
                    Json::Str(s) => s.clone(),
                    Json::Num(n) => n.to_string(),
                    Json::Bool(b) => b.to_string(),
                    Json::Null => "null".to_string(),
                    other => other.to_string(),
                };
                out.insert(k.clone(), s);
            }
        }
        out
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => write!(f, "{n}"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(members) => {
                write!(f, "{{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\t' => write!(f, "\\t")?,
            '\r' => write!(f, "\\r")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError { at: self.pos, msg })
        }
    }

    fn literal(&mut self, lit: &str, msg: &'static str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(JsonError { at: self.pos, msg })
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self
                .literal("true", "expected `true`")
                .map(|()| Json::Bool(true)),
            Some(b'f') => self
                .literal("false", "expected `false`")
                .map(|()| Json::Bool(false)),
            Some(b'n') => self.literal("null", "expected `null`").map(|()| Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(JsonError {
                at: self.pos,
                msg: "expected a value",
            }),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected `{`")?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected `:`")?;
            self.skip_ws();
            let value = self.value()?;
            members.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => {
                    return Err(JsonError {
                        at: self.pos,
                        msg: "expected `,` or `}`",
                    })
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected `[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => {
                    return Err(JsonError {
                        at: self.pos,
                        msg: "expected `,` or `]`",
                    })
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected `\"`")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => {
                    return Err(JsonError {
                        at: self.pos,
                        msg: "unterminated string",
                    })
                }
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let start = self.pos + 1;
                            let hex = self
                                .bytes
                                .get(start..start + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or(JsonError {
                                    at: self.pos,
                                    msg: "bad \\u escape",
                                })?;
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => {
                            return Err(JsonError {
                                at: self.pos,
                                msg: "bad escape",
                            })
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| JsonError {
                        at: self.pos,
                        msg: "invalid utf-8",
                    })?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits");
        text.parse::<i64>().map(Json::Num).map_err(|_| JsonError {
            at: start,
            msg: "bad number",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_device_message() {
        let v = Json::parse(
            "{\"mac\":\"00:11:22:33:44:55\",\"sn\":\"SN42\",\"ver\":7,\"ok\":true,\"x\":null}",
        )
        .unwrap();
        assert_eq!(
            v.get("mac").and_then(Json::as_str),
            Some("00:11:22:33:44:55")
        );
        assert_eq!(v.get("ver"), Some(&Json::Num(7)));
        let params = v.flat_params();
        assert_eq!(params["sn"], "SN42");
        assert_eq!(params["ok"], "true");
        assert_eq!(params["x"], "null");
    }

    #[test]
    fn print_parse_round_trip() {
        let src = "{\"a\":[1,2,{\"b\":\"c\"}],\"d\":\"e\\\"f\",\"n\":-5}";
        let v = Json::parse(src).unwrap();
        let printed = v.to_string();
        assert_eq!(Json::parse(&printed).unwrap(), v);
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::Str("line\nquote\" tab\t back\\".to_string());
        let t = v.to_string();
        assert_eq!(Json::parse(&t).unwrap(), v);
    }

    #[test]
    fn unicode_escape() {
        let v = Json::parse("\"\\u0041\\u00e9\"").unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }

    #[test]
    fn errors_have_positions() {
        for (src, _frag) in [
            ("{", "expected"),
            ("{\"a\":}", "value"),
            ("[1,]", "value"),
            ("\"abc", "unterminated"),
            ("123x", "trailing"),
            ("", "value"),
            ("{\"a\" 1}", ":"),
        ] {
            let err = Json::parse(src).unwrap_err();
            assert!(err.at <= src.len(), "{src}: offset in range");
        }
    }

    #[test]
    fn nested_arrays_and_empty_containers() {
        assert_eq!(Json::parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(Json::parse("{}").unwrap(), Json::Obj(BTreeMap::new()));
        let v = Json::parse("[[1],[2,[3]]]").unwrap();
        assert_eq!(v.to_string(), "[[1],[2,[3]]]");
    }

    #[test]
    fn flat_params_on_non_object() {
        assert!(Json::Num(1).flat_params().is_empty());
        assert!(Json::parse("[1]").unwrap().flat_params().is_empty());
    }
}
