//! A keyed hash for token and signature derivation.
//!
//! **Not cryptographically secure.** The simulator only needs the
//! *structure* of token schemes — `Bind-Token = f(secret, device, user)`,
//! `Signature = f(Dev-Secret)` (paper §II-B) — so a keyed FNV-1a is used.
//! A production cloud would use HMAC-SHA256; swapping it in would not
//! change any analysis result in this repository.

/// Compute a keyed MAC over `parts`, rendered as 16 hex digits.
pub fn keyed_mac(key: &str, parts: &[&str]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut absorb = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0x9e37_79b9_7f4a_7c15;
        h = h.rotate_left(17);
    };
    absorb(key.as_bytes());
    for p in parts {
        absorb(p.as_bytes());
    }
    format!("{h:016x}")
}

/// Derive a device signature from its secret (the paper's
/// `Signature = f(Dev-Secret)`).
pub fn derive_signature(dev_secret: &str, dev_identifier: &str) -> String {
    keyed_mac("sig", &[dev_secret, dev_identifier])
}

/// Derive a bind token for a (device, user) pair under a cloud key.
pub fn derive_bind_token(cloud_key: &str, dev_identifier: &str, user: &str) -> String {
    keyed_mac("bind", &[cloud_key, dev_identifier, user])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_key_sensitive() {
        let a = keyed_mac("k1", &["x", "y"]);
        assert_eq!(a, keyed_mac("k1", &["x", "y"]));
        assert_ne!(a, keyed_mac("k2", &["x", "y"]));
        assert_ne!(a, keyed_mac("k1", &["x", "z"]));
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn part_boundaries_matter() {
        assert_ne!(keyed_mac("k", &["ab", "c"]), keyed_mac("k", &["a", "bc"]));
    }

    #[test]
    fn derivations_differ_per_device_and_user() {
        let s1 = derive_signature("secret", "dev1");
        let s2 = derive_signature("secret", "dev2");
        assert_ne!(s1, s2);
        let t1 = derive_bind_token("ck", "dev1", "alice");
        let t2 = derive_bind_token("ck", "dev1", "bob");
        assert_ne!(t1, t2);
    }
}
