//! Cloud-side state: registered devices, user accounts, bindings and
//! stored resources.

use crate::mac::{derive_bind_token, derive_signature};
use std::collections::BTreeMap;

/// A device registered with the cloud.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceRecord {
    /// Identifier fields (`mac`, `serial`, `uid`, `deviceId`, …) and
    /// their values. Any of them identifies the device.
    pub identifiers: BTreeMap<String, String>,
    /// The manufacturer-provisioned device secret.
    pub secret: String,
    /// User the device is bound to, if any.
    pub bound_user: Option<String>,
}

impl DeviceRecord {
    /// Whether any identifier field equals `value`.
    pub fn has_identifier(&self, value: &str) -> bool {
        self.identifiers.values().any(|v| v == value)
    }

    /// The canonical identifier (first in key order).
    pub fn canonical_id(&self) -> &str {
        self.identifiers
            .values()
            .next()
            .map(String::as_str)
            .unwrap_or("")
    }
}

/// Mutable cloud state shared by all endpoints of one vendor cloud.
#[derive(Debug, Clone, Default)]
pub struct CloudState {
    /// Secret key the cloud derives bind tokens with.
    cloud_key: String,
    devices: Vec<DeviceRecord>,
    accounts: BTreeMap<String, String>,
    /// Per-device stored resources (video paths, share lists, …) keyed by
    /// canonical identifier.
    resources: BTreeMap<String, Vec<String>>,
}

impl CloudState {
    /// New state with the given token-derivation key.
    pub fn new(cloud_key: impl Into<String>) -> Self {
        CloudState {
            cloud_key: cloud_key.into(),
            ..Default::default()
        }
    }

    /// Register a device.
    pub fn register_device(&mut self, record: DeviceRecord) {
        self.devices.push(record);
    }

    /// Create a user account.
    pub fn create_user(&mut self, user: impl Into<String>, password: impl Into<String>) {
        self.accounts.insert(user.into(), password.into());
    }

    /// Attach a stored resource (e.g. a cloud recording path) to a device.
    pub fn add_resource(&mut self, identifier: &str, resource: impl Into<String>) {
        if let Some(dev) = self.device_by_identifier(identifier) {
            let key = dev.canonical_id().to_string();
            self.resources.entry(key).or_default().push(resource.into());
        }
    }

    /// The device matching any identifier field equal to `value`.
    pub fn device_by_identifier(&self, value: &str) -> Option<&DeviceRecord> {
        self.devices.iter().find(|d| d.has_identifier(value))
    }

    /// All registered devices.
    pub fn devices(&self) -> &[DeviceRecord] {
        &self.devices
    }

    /// Whether `user`/`password` is a valid account.
    pub fn valid_user(&self, user: &str, password: &str) -> bool {
        self.accounts.get(user).is_some_and(|p| p == password)
    }

    /// Bind the device identified by `identifier` to `user`, returning the
    /// bind token. `None` when the device or user is unknown.
    pub fn bind(&mut self, identifier: &str, user: &str) -> Option<String> {
        if !self.accounts.contains_key(user) {
            return None;
        }
        let key = self.cloud_key.clone();
        let dev = self
            .devices
            .iter_mut()
            .find(|d| d.has_identifier(identifier))?;
        dev.bound_user = Some(user.to_string());
        let canonical = dev.canonical_id().to_string();
        Some(derive_bind_token(&key, &canonical, user))
    }

    /// The valid bind token for a bound device, if bound.
    pub fn token_for(&self, identifier: &str) -> Option<String> {
        let dev = self.device_by_identifier(identifier)?;
        let user = dev.bound_user.as_deref()?;
        Some(derive_bind_token(&self.cloud_key, dev.canonical_id(), user))
    }

    /// Verify a bind token presented for a device.
    pub fn valid_token(&self, identifier: &str, token: &str) -> bool {
        self.token_for(identifier).is_some_and(|t| t == token)
    }

    /// Verify a device secret.
    pub fn valid_secret(&self, identifier: &str, secret: &str) -> bool {
        self.device_by_identifier(identifier)
            .is_some_and(|d| d.secret == secret)
    }

    /// Verify a signature derived from the device secret.
    pub fn valid_signature(&self, identifier: &str, signature: &str) -> bool {
        self.device_by_identifier(identifier)
            .is_some_and(|d| derive_signature(&d.secret, d.canonical_id()) == signature)
    }

    /// The expected signature for a device (what the *real* device would
    /// send) — used by tests and the probe harness.
    pub fn signature_for(&self, identifier: &str) -> Option<String> {
        let d = self.device_by_identifier(identifier)?;
        Some(derive_signature(&d.secret, d.canonical_id()))
    }

    /// Stored resources of a device.
    pub fn resources_for(&self, identifier: &str) -> &[String] {
        self.device_by_identifier(identifier)
            .and_then(|d| self.resources.get(d.canonical_id()))
            .map_or(&[], Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> DeviceRecord {
        DeviceRecord {
            identifiers: [
                ("mac".to_string(), "00:11:22:33:44:55".to_string()),
                ("serial".to_string(), "SN42".to_string()),
            ]
            .into_iter()
            .collect(),
            secret: "s3cr3t".into(),
            bound_user: None,
        }
    }

    #[test]
    fn identifier_lookup_by_any_field() {
        let mut st = CloudState::new("ck");
        st.register_device(device());
        assert!(st.device_by_identifier("SN42").is_some());
        assert!(st.device_by_identifier("00:11:22:33:44:55").is_some());
        assert!(st.device_by_identifier("nope").is_none());
    }

    #[test]
    fn binding_and_tokens() {
        let mut st = CloudState::new("ck");
        st.register_device(device());
        st.create_user("alice", "pw");
        assert_eq!(st.bind("SN42", "mallory"), None, "unknown user");
        let token = st.bind("SN42", "alice").unwrap();
        assert!(st.valid_token("SN42", &token));
        assert!(
            st.valid_token("00:11:22:33:44:55", &token),
            "any identifier maps to device"
        );
        assert!(!st.valid_token("SN42", "forged"));
        assert_eq!(st.token_for("SN42"), Some(token));
    }

    #[test]
    fn secrets_and_signatures() {
        let mut st = CloudState::new("ck");
        st.register_device(device());
        assert!(st.valid_secret("SN42", "s3cr3t"));
        assert!(!st.valid_secret("SN42", "wrong"));
        let sig = st.signature_for("SN42").unwrap();
        assert!(st.valid_signature("SN42", &sig));
        assert!(!st.valid_signature("SN42", "bad"));
        assert_eq!(st.signature_for("missing"), None);
    }

    #[test]
    fn users_and_resources() {
        let mut st = CloudState::new("ck");
        st.register_device(device());
        st.create_user("alice", "pw");
        assert!(st.valid_user("alice", "pw"));
        assert!(!st.valid_user("alice", "nope"));
        assert!(!st.valid_user("bob", "pw"));
        st.add_resource("SN42", "/videos/2026-07-01.mp4");
        st.add_resource("00:11:22:33:44:55", "/videos/2026-07-02.mp4");
        assert_eq!(
            st.resources_for("SN42").len(),
            2,
            "same device via either id"
        );
        assert!(st.resources_for("missing").is_empty());
    }
}
