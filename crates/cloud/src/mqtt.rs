//! An MQTT-style broker (paper §II-A).
//!
//! The broker is the core component of an MQTT-based vendor cloud: topics
//! are file-path-like strings (`/sys/properties/report`), devices and
//! services connect with credentials, subscribe with wildcard filters and
//! publish payloads. This model supports the paper's impersonation story
//! end to end: an attacker holding a leaked device certificate (the
//! CVE-2023-2586 outcome) connects to the broker *as the device* and can
//! both publish forged telemetry and subscribe to the device's command
//! topic.

use crate::state::CloudState;
use std::collections::BTreeMap;
use std::fmt;

/// Credentials presented on connect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MqttAuth {
    /// Username/password account.
    UserPass {
        /// Account name.
        user: String,
        /// Account password.
        password: String,
    },
    /// Device certificate (the device secret in this model).
    DeviceCert {
        /// The certificate/secret string.
        cert: String,
    },
    /// Device identifier plus bind token.
    DeviceToken {
        /// Any device identifier.
        identifier: String,
        /// The bind token.
        token: String,
    },
    /// No credentials (anonymous).
    Anonymous,
}

/// Broker errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MqttError {
    /// Credentials rejected.
    NotAuthorized,
    /// Unknown session id.
    NoSuchSession,
    /// Topic or filter is syntactically invalid.
    BadTopic(String),
    /// Session lacks permission for the topic.
    Forbidden,
}

impl fmt::Display for MqttError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MqttError::NotAuthorized => write!(f, "connection not authorized"),
            MqttError::NoSuchSession => write!(f, "no such session"),
            MqttError::BadTopic(t) => write!(f, "bad topic `{t}`"),
            MqttError::Forbidden => write!(f, "not permitted on this topic"),
        }
    }
}

impl std::error::Error for MqttError {}

/// Handle to a connected client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(u64);

/// A delivered message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MqttMessage {
    /// Concrete topic it was published on.
    pub topic: String,
    /// Payload bytes (UTF-8 text in this model).
    pub payload: String,
    /// Client id of the publisher.
    pub publisher: String,
}

#[derive(Debug)]
struct Session {
    client_id: String,
    /// The device this session authenticated *as* (None for user/service
    /// sessions).
    device_identity: Option<String>,
    subscriptions: Vec<String>,
    inbox: Vec<MqttMessage>,
}

/// The broker: sessions, subscriptions, retained messages.
///
/// # Examples
///
/// ```
/// use firmres_cloud::{mqtt::{Broker, MqttAuth}, CloudState, DeviceRecord};
///
/// let mut state = CloudState::new("k");
/// state.register_device(DeviceRecord {
///     identifiers: [("deviceId".to_string(), "D-1".to_string())].into_iter().collect(),
///     secret: "cert-123".into(),
///     bound_user: None,
/// });
/// let mut broker = Broker::new(state);
/// let dev = broker.connect("dev-1", MqttAuth::DeviceCert { cert: "cert-123".into() })?;
/// broker.publish(dev, "/sys/properties/report", "{\"t\":21}")?;
/// # Ok::<(), firmres_cloud::mqtt::MqttError>(())
/// ```
#[derive(Debug)]
pub struct Broker {
    state: CloudState,
    sessions: BTreeMap<SessionId, Session>,
    retained: BTreeMap<String, MqttMessage>,
    next_id: u64,
    /// Log of all publishes, for auditing in tests.
    log: Vec<MqttMessage>,
}

impl Broker {
    /// A broker over the given cloud state (device registry, accounts).
    pub fn new(state: CloudState) -> Self {
        Broker {
            state,
            sessions: BTreeMap::new(),
            retained: BTreeMap::new(),
            next_id: 1,
            log: Vec::new(),
        }
    }

    /// Connect a client.
    ///
    /// # Errors
    ///
    /// [`MqttError::NotAuthorized`] when the credentials do not match a
    /// registered device or account. Anonymous connections are rejected —
    /// the weakness this model studies is *weak* credentials, not absent
    /// ones.
    pub fn connect(
        &mut self,
        client_id: impl Into<String>,
        auth: MqttAuth,
    ) -> Result<SessionId, MqttError> {
        let device_identity = match &auth {
            MqttAuth::UserPass { user, password } => {
                if !self.state.valid_user(user, password) {
                    return Err(MqttError::NotAuthorized);
                }
                None
            }
            MqttAuth::DeviceCert { cert } => {
                let dev = self
                    .state
                    .devices()
                    .iter()
                    .find(|d| &d.secret == cert)
                    .ok_or(MqttError::NotAuthorized)?;
                Some(dev.canonical_id().to_string())
            }
            MqttAuth::DeviceToken { identifier, token } => {
                if !self.state.valid_token(identifier, token) {
                    return Err(MqttError::NotAuthorized);
                }
                let dev = self
                    .state
                    .device_by_identifier(identifier)
                    .ok_or(MqttError::NotAuthorized)?;
                Some(dev.canonical_id().to_string())
            }
            MqttAuth::Anonymous => return Err(MqttError::NotAuthorized),
        };
        let id = SessionId(self.next_id);
        self.next_id += 1;
        self.sessions.insert(
            id,
            Session {
                client_id: client_id.into(),
                device_identity,
                subscriptions: Vec::new(),
                inbox: Vec::new(),
            },
        );
        Ok(id)
    }

    /// The device identity a session authenticated as, if any.
    pub fn session_device(&self, session: SessionId) -> Option<&str> {
        self.sessions.get(&session)?.device_identity.as_deref()
    }

    /// Subscribe with an MQTT filter (`+` single-level, `#` multi-level
    /// tail wildcard). Retained messages matching the filter are delivered
    /// immediately.
    pub fn subscribe(&mut self, session: SessionId, filter: &str) -> Result<(), MqttError> {
        validate_filter(filter)?;
        let retained: Vec<MqttMessage> = self
            .retained
            .values()
            .filter(|m| topic_matches(filter, &m.topic))
            .cloned()
            .collect();
        let s = self
            .sessions
            .get_mut(&session)
            .ok_or(MqttError::NoSuchSession)?;
        s.subscriptions.push(filter.to_string());
        s.inbox.extend(retained);
        Ok(())
    }

    /// Publish to a concrete topic; fan out to matching subscriptions.
    pub fn publish(
        &mut self,
        session: SessionId,
        topic: &str,
        payload: &str,
    ) -> Result<usize, MqttError> {
        self.publish_retained(session, topic, payload, false)
    }

    /// Publish with the retained flag.
    ///
    /// # Errors
    ///
    /// [`MqttError::BadTopic`] for wildcard characters in a publish topic;
    /// [`MqttError::NoSuchSession`] for an unknown session.
    pub fn publish_retained(
        &mut self,
        session: SessionId,
        topic: &str,
        payload: &str,
        retain: bool,
    ) -> Result<usize, MqttError> {
        if topic.contains(['+', '#']) || topic.is_empty() {
            return Err(MqttError::BadTopic(topic.to_string()));
        }
        let publisher = self
            .sessions
            .get(&session)
            .ok_or(MqttError::NoSuchSession)?
            .client_id
            .clone();
        let msg = MqttMessage {
            topic: topic.to_string(),
            payload: payload.to_string(),
            publisher,
        };
        if retain {
            self.retained.insert(topic.to_string(), msg.clone());
        }
        self.log.push(msg.clone());
        let mut delivered = 0;
        for s in self.sessions.values_mut() {
            if s.subscriptions.iter().any(|f| topic_matches(f, topic)) {
                s.inbox.push(msg.clone());
                delivered += 1;
            }
        }
        Ok(delivered)
    }

    /// Drain a session's inbox.
    pub fn poll(&mut self, session: SessionId) -> Result<Vec<MqttMessage>, MqttError> {
        let s = self
            .sessions
            .get_mut(&session)
            .ok_or(MqttError::NoSuchSession)?;
        Ok(std::mem::take(&mut s.inbox))
    }

    /// Every message ever published (test/audit hook).
    pub fn audit_log(&self) -> &[MqttMessage] {
        &self.log
    }
}

fn validate_filter(filter: &str) -> Result<(), MqttError> {
    if filter.is_empty() {
        return Err(MqttError::BadTopic(filter.to_string()));
    }
    let levels: Vec<&str> = filter.split('/').collect();
    for (i, level) in levels.iter().enumerate() {
        if level.contains('#') && (*level != "#" || i != levels.len() - 1) {
            return Err(MqttError::BadTopic(filter.to_string()));
        }
        if level.contains('+') && *level != "+" {
            return Err(MqttError::BadTopic(filter.to_string()));
        }
    }
    Ok(())
}

/// MQTT topic-filter matching: `+` matches one level, a trailing `#`
/// matches any remainder.
pub fn topic_matches(filter: &str, topic: &str) -> bool {
    let f: Vec<&str> = filter.split('/').collect();
    let t: Vec<&str> = topic.split('/').collect();
    let mut i = 0;
    loop {
        match (f.get(i), t.get(i)) {
            (Some(&"#"), _) => return i == f.len() - 1,
            (Some(&"+"), Some(_)) => {}
            (Some(fl), Some(tl)) if fl == tl => {}
            (None, None) => return true,
            _ => return false,
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::DeviceRecord;

    fn broker() -> Broker {
        let mut state = CloudState::new("bk");
        state.register_device(DeviceRecord {
            identifiers: [
                ("deviceId".to_string(), "D-77".to_string()),
                ("mac".to_string(), "00:11:22:33:44:77".to_string()),
            ]
            .into_iter()
            .collect(),
            secret: "cert-abc".into(),
            bound_user: None,
        });
        state.create_user("alice", "pw");
        state.bind("D-77", "alice").unwrap();
        Broker::new(state)
    }

    #[test]
    fn topic_matching_rules() {
        assert!(topic_matches(
            "/sys/properties/report",
            "/sys/properties/report"
        ));
        assert!(topic_matches("/sys/+/report", "/sys/properties/report"));
        assert!(topic_matches("/sys/#", "/sys/properties/report"));
        assert!(topic_matches("#", "/anything/at/all"));
        assert!(!topic_matches("/sys/+", "/sys/properties/report"));
        assert!(!topic_matches("/sys/properties", "/sys/properties/report"));
        assert!(!topic_matches("/other/#", "/sys/x"));
    }

    #[test]
    fn connect_auth_paths() {
        let mut b = broker();
        assert!(b
            .connect(
                "u",
                MqttAuth::UserPass {
                    user: "alice".into(),
                    password: "pw".into()
                }
            )
            .is_ok());
        assert_eq!(
            b.connect(
                "u",
                MqttAuth::UserPass {
                    user: "alice".into(),
                    password: "no".into()
                }
            ),
            Err(MqttError::NotAuthorized)
        );
        let s = b
            .connect(
                "d",
                MqttAuth::DeviceCert {
                    cert: "cert-abc".into(),
                },
            )
            .unwrap();
        assert_eq!(b.session_device(s), Some("D-77"));
        assert_eq!(
            b.connect(
                "d",
                MqttAuth::DeviceCert {
                    cert: "wrong".into()
                }
            ),
            Err(MqttError::NotAuthorized)
        );
        assert_eq!(
            b.connect("a", MqttAuth::Anonymous),
            Err(MqttError::NotAuthorized)
        );
    }

    #[test]
    fn token_auth_maps_to_device() {
        let mut b = broker();
        let token = b.state.token_for("D-77").unwrap();
        let s = b
            .connect(
                "d",
                MqttAuth::DeviceToken {
                    identifier: "00:11:22:33:44:77".into(),
                    token,
                },
            )
            .unwrap();
        assert_eq!(b.session_device(s), Some("D-77"));
    }

    #[test]
    fn pub_sub_round_trip() {
        let mut b = broker();
        let user = b
            .connect(
                "app",
                MqttAuth::UserPass {
                    user: "alice".into(),
                    password: "pw".into(),
                },
            )
            .unwrap();
        b.subscribe(user, "/dev/D-77/#").unwrap();
        let dev = b
            .connect(
                "dev",
                MqttAuth::DeviceCert {
                    cert: "cert-abc".into(),
                },
            )
            .unwrap();
        let delivered = b.publish(dev, "/dev/D-77/telemetry", "{\"t\":20}").unwrap();
        assert_eq!(delivered, 1);
        let msgs = b.poll(user).unwrap();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].topic, "/dev/D-77/telemetry");
        assert_eq!(msgs[0].publisher, "dev");
        assert!(b.poll(user).unwrap().is_empty(), "inbox drained");
    }

    #[test]
    fn retained_messages_replay_on_subscribe() {
        let mut b = broker();
        let dev = b
            .connect(
                "dev",
                MqttAuth::DeviceCert {
                    cert: "cert-abc".into(),
                },
            )
            .unwrap();
        b.publish_retained(dev, "/dev/D-77/status", "online", true)
            .unwrap();
        let user = b
            .connect(
                "app",
                MqttAuth::UserPass {
                    user: "alice".into(),
                    password: "pw".into(),
                },
            )
            .unwrap();
        b.subscribe(user, "/dev/+/status").unwrap();
        let msgs = b.poll(user).unwrap();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].payload, "online");
    }

    #[test]
    fn impersonation_with_leaked_cert() {
        // The CVE-2023-2586 end state: the attacker got the certificate
        // from the registration endpoint and now *is* the device.
        let mut b = broker();
        let user = b
            .connect(
                "victim-app",
                MqttAuth::UserPass {
                    user: "alice".into(),
                    password: "pw".into(),
                },
            )
            .unwrap();
        b.subscribe(user, "/dev/D-77/alarm").unwrap();
        let attacker = b
            .connect(
                "attacker",
                MqttAuth::DeviceCert {
                    cert: "cert-abc".into(),
                },
            )
            .unwrap();
        assert_eq!(
            b.session_device(attacker),
            Some("D-77"),
            "full device identity"
        );
        b.publish(attacker, "/dev/D-77/alarm", "{\"alarm\":\"intrusion\"}")
            .unwrap();
        let msgs = b.poll(user).unwrap();
        assert_eq!(msgs.len(), 1, "victim receives the forged alarm");
        // And the attacker can watch the device's command channel.
        b.subscribe(attacker, "/dev/D-77/cmd/#").unwrap();
        let cloud = b
            .connect(
                "cloud-svc",
                MqttAuth::UserPass {
                    user: "alice".into(),
                    password: "pw".into(),
                },
            )
            .unwrap();
        b.publish(cloud, "/dev/D-77/cmd/reboot", "{}").unwrap();
        assert_eq!(
            b.poll(attacker).unwrap().len(),
            1,
            "attacker sees device commands"
        );
    }

    #[test]
    fn bad_topics_and_filters_rejected() {
        let mut b = broker();
        let dev = b
            .connect(
                "d",
                MqttAuth::DeviceCert {
                    cert: "cert-abc".into(),
                },
            )
            .unwrap();
        assert!(matches!(
            b.publish(dev, "/x/+", "p"),
            Err(MqttError::BadTopic(_))
        ));
        assert!(matches!(
            b.publish(dev, "", "p"),
            Err(MqttError::BadTopic(_))
        ));
        assert!(matches!(
            b.subscribe(dev, "/a/#/b"),
            Err(MqttError::BadTopic(_))
        ));
        assert!(matches!(
            b.subscribe(dev, "/a/b+"),
            Err(MqttError::BadTopic(_))
        ));
        assert!(b.subscribe(dev, "/a/+/b").is_ok());
    }

    #[test]
    fn unknown_sessions_error() {
        let mut b = broker();
        let ghost = SessionId(999);
        assert_eq!(b.poll(ghost), Err(MqttError::NoSuchSession));
        assert!(matches!(
            b.publish(ghost, "/t", "p"),
            Err(MqttError::NoSuchSession)
        ));
    }

    #[test]
    fn audit_log_records_everything() {
        let mut b = broker();
        let dev = b
            .connect(
                "d",
                MqttAuth::DeviceCert {
                    cert: "cert-abc".into(),
                },
            )
            .unwrap();
        b.publish(dev, "/a", "1").unwrap();
        b.publish(dev, "/b", "2").unwrap();
        assert_eq!(b.audit_log().len(), 2);
    }
}
