//! The cloud server: request parsing, check evaluation, responses.

use crate::endpoint::{Check, Endpoint, EndpointKind, ResponseSpec};
use crate::json::Json;
use crate::probe::ResponseStatus;
use crate::state::CloudState;
use parking_lot::Mutex;
use std::collections::BTreeMap;

/// A device-cloud request as received by the cloud.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request path (HTTP) or topic (MQTT publish).
    pub path: String,
    /// Raw body: JSON object, query string, or empty.
    pub body: String,
}

impl HttpRequest {
    /// Build a request.
    pub fn new(path: impl Into<String>, body: impl Into<String>) -> Self {
        HttpRequest {
            path: path.into(),
            body: body.into(),
        }
    }

    /// Parse the parameters from the path query string and the body
    /// (JSON object or `a=1&b=2` form). Body values win on key clashes.
    pub fn params(&self) -> BTreeMap<String, String> {
        let mut params = BTreeMap::new();
        if let Some((_, query)) = self.path.split_once('?') {
            parse_query(query, &mut params);
        }
        let body = self.body.trim();
        if body.starts_with('{') {
            if let Ok(v) = Json::parse(body) {
                params.extend(v.flat_params());
            }
        } else if !body.is_empty() {
            parse_query(body, &mut params);
        }
        params
    }

    /// Whether the body looked structured but failed to parse.
    pub fn body_malformed(&self) -> bool {
        let body = self.body.trim();
        body.starts_with('{') && Json::parse(body).is_err()
    }

    /// Path without the query string.
    pub fn route(&self) -> &str {
        self.path.split('?').next().unwrap_or(&self.path)
    }
}

fn parse_query(query: &str, out: &mut BTreeMap<String, String>) {
    for pair in query.split('&') {
        if let Some((k, v)) = pair.split_once('=') {
            if !k.is_empty() {
                out.insert(k.to_string(), v.to_string());
            }
        }
    }
}

/// A cloud response: classified status plus a JSON body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Classified status (maps to the paper's response phrases).
    pub status: ResponseStatus,
    /// Response body.
    pub body: Json,
}

impl HttpResponse {
    fn simple(status: ResponseStatus) -> Self {
        let mut obj = BTreeMap::new();
        obj.insert("status".to_string(), Json::Str(status.phrase().to_string()));
        HttpResponse {
            status,
            body: Json::Obj(obj),
        }
    }

    /// String values leaked in the body under credential-ish keys.
    pub fn leaked_values(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        if let Json::Obj(m) = &self.body {
            for (k, v) in m {
                if k == "status" {
                    continue;
                }
                match v {
                    Json::Str(s) => out.push((k.clone(), s.clone())),
                    Json::Arr(items) => {
                        for i in items {
                            if let Json::Str(s) = i {
                                out.push((k.clone(), s.clone()));
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        out
    }
}

/// One vendor cloud: endpoints plus shared state.
///
/// The state sits behind a mutex so a cloud can be shared between a
/// binding flow and concurrent probes in tests.
#[derive(Debug)]
pub struct Cloud {
    name: String,
    endpoints: Vec<Endpoint>,
    state: Mutex<CloudState>,
}

impl Cloud {
    /// Create a cloud with the given endpoints and initial state.
    pub fn new(name: impl Into<String>, endpoints: Vec<Endpoint>, state: CloudState) -> Self {
        Cloud {
            name: name.into(),
            endpoints,
            state: Mutex::new(state),
        }
    }

    /// Vendor/cloud name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The hosted endpoints.
    pub fn endpoints(&self) -> &[Endpoint] {
        &self.endpoints
    }

    /// Run `f` against the cloud state.
    pub fn with_state<R>(&self, f: impl FnOnce(&mut CloudState) -> R) -> R {
        f(&mut self.state.lock())
    }

    /// Handle a device request (HTTP request or MQTT publish).
    pub fn handle(&self, req: &HttpRequest) -> HttpResponse {
        let Some(endpoint) = self.match_endpoint(req.route()) else {
            return HttpResponse::simple(ResponseStatus::PathNotExists);
        };
        if req.body_malformed() {
            return HttpResponse::simple(ResponseStatus::BadRequest);
        }
        let params = req.params();
        let state = self.state.lock();
        // Evaluate the policy.
        for check in &endpoint.checks {
            match check {
                Check::FieldPresent(f) => {
                    if !params.contains_key(f.as_str()) {
                        return HttpResponse::simple(ResponseStatus::BadRequest);
                    }
                }
                Check::KnownDevice(f) => {
                    let Some(v) = params.get(f.as_str()) else {
                        return HttpResponse::simple(ResponseStatus::BadRequest);
                    };
                    if state.device_by_identifier(v).is_none() {
                        return HttpResponse::simple(ResponseStatus::AccessDenied);
                    }
                }
                Check::SecretValid(idf, sf) => {
                    let (Some(id), Some(secret)) =
                        (params.get(idf.as_str()), params.get(sf.as_str()))
                    else {
                        return HttpResponse::simple(ResponseStatus::BadRequest);
                    };
                    if !state.valid_secret(id, secret) {
                        return HttpResponse::simple(ResponseStatus::AccessDenied);
                    }
                }
                Check::UserCredValid(uf, pf) => {
                    let (Some(u), Some(p)) = (params.get(uf.as_str()), params.get(pf.as_str()))
                    else {
                        return HttpResponse::simple(ResponseStatus::BadRequest);
                    };
                    if !state.valid_user(u, p) {
                        return HttpResponse::simple(ResponseStatus::NoPermission);
                    }
                }
                Check::TokenValid(idf, tf) => {
                    let (Some(id), Some(t)) = (params.get(idf.as_str()), params.get(tf.as_str()))
                    else {
                        return HttpResponse::simple(ResponseStatus::BadRequest);
                    };
                    if !state.valid_token(id, t) {
                        return HttpResponse::simple(ResponseStatus::NoPermission);
                    }
                }
                Check::SignatureValid(idf, sf) => {
                    let (Some(id), Some(s)) = (params.get(idf.as_str()), params.get(sf.as_str()))
                    else {
                        return HttpResponse::simple(ResponseStatus::BadRequest);
                    };
                    if !state.valid_signature(id, s) {
                        return HttpResponse::simple(ResponseStatus::NoPermission);
                    }
                }
            }
        }
        // Success: render the response.
        let mut obj = BTreeMap::new();
        obj.insert(
            "status".to_string(),
            Json::Str(ResponseStatus::RequestOk.phrase().to_string()),
        );
        let identifier = self.request_identifier(endpoint, &params);
        match &endpoint.response {
            ResponseSpec::Ok => {}
            ResponseSpec::FixedToken(key) => {
                obj.insert(key.clone(), Json::Str("FIXED-TOKEN-0001".to_string()));
            }
            ResponseSpec::BindToken(key) => {
                if let Some(id) = &identifier {
                    if let Some(t) = state.token_for(id) {
                        obj.insert(key.clone(), Json::Str(t));
                    }
                }
            }
            ResponseSpec::DeviceSecret(key) => {
                if let Some(id) = &identifier {
                    if let Some(d) = state.device_by_identifier(id) {
                        obj.insert(key.clone(), Json::Str(d.secret.clone()));
                    }
                }
            }
            ResponseSpec::StorageKeys(key) => {
                if let Some(id) = &identifier {
                    let access = crate::mac::keyed_mac("access", &[id]);
                    let secret = crate::mac::keyed_mac("storage", &[id]);
                    obj.insert(format!("{key}-access"), Json::Str(access));
                    obj.insert(format!("{key}-secret"), Json::Str(secret));
                }
            }
            ResponseSpec::ResourceList(key) => {
                if let Some(id) = &identifier {
                    let items: Vec<Json> = state
                        .resources_for(id)
                        .iter()
                        .map(|r| Json::Str(r.clone()))
                        .collect();
                    obj.insert(key.clone(), Json::Arr(items));
                }
            }
        }
        HttpResponse {
            status: ResponseStatus::RequestOk,
            body: Json::Obj(obj),
        }
    }

    /// The first identifier-ish parameter value named by the checks.
    fn request_identifier(
        &self,
        endpoint: &Endpoint,
        params: &BTreeMap<String, String>,
    ) -> Option<String> {
        for check in &endpoint.checks {
            let field = match check {
                Check::KnownDevice(f) => f,
                Check::SecretValid(f, _)
                | Check::TokenValid(f, _)
                | Check::SignatureValid(f, _) => f,
                _ => continue,
            };
            if let Some(v) = params.get(field.as_str()) {
                return Some(v.clone());
            }
        }
        None
    }

    fn match_endpoint(&self, route: &str) -> Option<&Endpoint> {
        self.endpoints.iter().find(|e| {
            match e.kind {
                EndpointKind::Http => {
                    // Match on the path ignoring its own query part.
                    e.path.split('?').next().unwrap_or(&e.path) == route
                }
                EndpointKind::MqttTopic => e.path == route,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::DeviceRecord;

    fn test_cloud() -> Cloud {
        let mut state = CloudState::new("cloud-key");
        state.register_device(DeviceRecord {
            identifiers: [("serial".to_string(), "SN42".to_string())]
                .into_iter()
                .collect(),
            secret: "devsecret".into(),
            bound_user: None,
        });
        state.create_user("alice", "pw");
        state.bind("SN42", "alice").unwrap();
        state.add_resource("SN42", "/video/1.mp4");
        let endpoints = vec![
            Endpoint {
                path: "/logs/upload".into(),
                kind: EndpointKind::Http,
                functionality: "Uploading crash logs.".into(),
                checks: vec![
                    Check::KnownDevice("serialNo".into()),
                    Check::FieldPresent("log".into()),
                ],
                response: ResponseSpec::Ok,
                consequence: Some("Attackers upload fake crash logs.".into()),
            },
            Endpoint {
                path: "/storage/auth".into(),
                kind: EndpointKind::Http,
                functionality: "Authenticating to storage.".into(),
                checks: vec![
                    Check::KnownDevice("deviceId".into()),
                    Check::TokenValid("deviceId".into(), "token".into()),
                ],
                response: ResponseSpec::StorageKeys("key".into()),
                consequence: None,
            },
            Endpoint {
                path: "/videos/list".into(),
                kind: EndpointKind::Http,
                functionality: "Querying stored videos.".into(),
                checks: vec![Check::KnownDevice("deviceId".into())],
                response: ResponseSpec::ResourceList("videos".into()),
                consequence: Some("Privacy information leakage.".into()),
            },
        ];
        Cloud::new("test-vendor", endpoints, state)
    }

    #[test]
    fn unknown_path_is_path_not_exists() {
        let cloud = test_cloud();
        let r = cloud.handle(&HttpRequest::new("/nope", ""));
        assert_eq!(r.status, ResponseStatus::PathNotExists);
    }

    #[test]
    fn missing_params_is_bad_request() {
        let cloud = test_cloud();
        let r = cloud.handle(&HttpRequest::new("/logs/upload", "serialNo=SN42"));
        assert_eq!(r.status, ResponseStatus::BadRequest, "log param missing");
    }

    #[test]
    fn unknown_device_is_access_denied() {
        let cloud = test_cloud();
        let r = cloud.handle(&HttpRequest::new("/logs/upload", "serialNo=NOPE&log=x"));
        assert_eq!(r.status, ResponseStatus::AccessDenied);
    }

    #[test]
    fn identifier_only_endpoint_accepts_forged_request() {
        let cloud = test_cloud();
        // Attacker knows only the serial number: request succeeds.
        let r = cloud.handle(&HttpRequest::new("/logs/upload", "serialNo=SN42&log=fake"));
        assert_eq!(r.status, ResponseStatus::RequestOk);
    }

    #[test]
    fn token_endpoint_rejects_forged_token_but_accepts_real_one() {
        let cloud = test_cloud();
        let r = cloud.handle(&HttpRequest::new(
            "/storage/auth",
            "deviceId=SN42&token=guess",
        ));
        assert_eq!(r.status, ResponseStatus::NoPermission);
        let token = cloud.with_state(|s| s.token_for("SN42").unwrap());
        let r = cloud.handle(&HttpRequest::new(
            "/storage/auth",
            format!("deviceId=SN42&token={token}"),
        ));
        assert_eq!(r.status, ResponseStatus::RequestOk);
        let leaks = r.leaked_values();
        assert_eq!(leaks.len(), 2, "access + secret storage keys: {leaks:?}");
    }

    #[test]
    fn json_bodies_are_parsed() {
        let cloud = test_cloud();
        let r = cloud.handle(&HttpRequest::new(
            "/logs/upload",
            "{\"serialNo\":\"SN42\",\"log\":\"boom\"}",
        ));
        assert_eq!(r.status, ResponseStatus::RequestOk);
    }

    #[test]
    fn malformed_json_is_bad_request() {
        let cloud = test_cloud();
        let r = cloud.handle(&HttpRequest::new("/logs/upload", "{\"serialNo\":"));
        assert_eq!(r.status, ResponseStatus::BadRequest);
    }

    #[test]
    fn query_string_in_path_counts() {
        let cloud = test_cloud();
        let r = cloud.handle(&HttpRequest::new("/logs/upload?serialNo=SN42&log=x", ""));
        assert_eq!(r.status, ResponseStatus::RequestOk);
    }

    #[test]
    fn resource_list_leaks_video_paths() {
        let cloud = test_cloud();
        let r = cloud.handle(&HttpRequest::new("/videos/list", "deviceId=SN42"));
        assert_eq!(r.status, ResponseStatus::RequestOk);
        let leaked = r.leaked_values();
        assert!(leaked
            .iter()
            .any(|(k, v)| k == "videos" && v == "/video/1.mp4"));
    }

    #[test]
    fn params_merge_path_and_body() {
        let req = HttpRequest::new("/x?a=1&b=2", "b=3&c=4");
        let p = req.params();
        assert_eq!(p["a"], "1");
        assert_eq!(p["b"], "3", "body wins");
        assert_eq!(p["c"], "4");
        assert_eq!(req.route(), "/x");
    }
}
