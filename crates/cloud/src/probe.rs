//! Probe-response classification (paper §V-C).
//!
//! *"The responses such as 'Request OK', 'No Permission' and 'Access
//! Denied' indicate that the reconstructed message is valid. The
//! responses like 'Bad Request', 'Request Not Supported', and 'Path Not
//! Exits' mean the device-cloud messages are invalid."*

use std::fmt;

/// Cloud response status, with the paper's exact phrases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ResponseStatus {
    /// The request was accepted and acted on.
    RequestOk,
    /// Authenticated identity lacks permission.
    NoPermission,
    /// Authentication failed.
    AccessDenied,
    /// The message shape was wrong (missing/garbled parameters).
    BadRequest,
    /// The endpoint exists but the operation is not supported.
    RequestNotSupported,
    /// No such endpoint.
    PathNotExists,
}

impl ResponseStatus {
    /// The response phrase as the paper quotes it.
    pub fn phrase(self) -> &'static str {
        match self {
            ResponseStatus::RequestOk => "Request OK",
            ResponseStatus::NoPermission => "No Permission",
            ResponseStatus::AccessDenied => "Access Denied",
            ResponseStatus::BadRequest => "Bad Request",
            ResponseStatus::RequestNotSupported => "Request Not Supported",
            ResponseStatus::PathNotExists => "Path Not Exists",
        }
    }

    /// Whether this response *validates* the reconstructed message (the
    /// message reached and was understood by a real endpoint).
    pub fn validates_message(self) -> bool {
        matches!(
            self,
            ResponseStatus::RequestOk | ResponseStatus::NoPermission | ResponseStatus::AccessDenied
        )
    }
}

impl fmt::Display for ResponseStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.phrase())
    }
}

/// Classify a raw response phrase back into a status (for responses that
/// cross a serialization boundary).
pub fn classify_response(phrase: &str) -> Option<ResponseStatus> {
    let all = [
        ResponseStatus::RequestOk,
        ResponseStatus::NoPermission,
        ResponseStatus::AccessDenied,
        ResponseStatus::BadRequest,
        ResponseStatus::RequestNotSupported,
        ResponseStatus::PathNotExists,
    ];
    all.into_iter().find(|s| s.phrase() == phrase)
}

/// Outcome of probing one reconstructed message against the cloud.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeOutcome {
    /// The endpoint probed.
    pub path: String,
    /// Response status.
    pub status: ResponseStatus,
    /// Values leaked in the response body (key, value).
    pub leaked: Vec<(String, String)>,
}

impl ProbeOutcome {
    /// Whether the probe validated the reconstruction.
    pub fn message_valid(&self) -> bool {
        self.status.validates_message()
    }

    /// Whether the probe demonstrated unauthorized success: a forged
    /// message fully accepted.
    pub fn forged_accepted(&self) -> bool {
        self.status == ResponseStatus::RequestOk
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validity_classification_matches_paper() {
        assert!(ResponseStatus::RequestOk.validates_message());
        assert!(ResponseStatus::NoPermission.validates_message());
        assert!(ResponseStatus::AccessDenied.validates_message());
        assert!(!ResponseStatus::BadRequest.validates_message());
        assert!(!ResponseStatus::RequestNotSupported.validates_message());
        assert!(!ResponseStatus::PathNotExists.validates_message());
    }

    #[test]
    fn phrases_round_trip() {
        for s in [
            ResponseStatus::RequestOk,
            ResponseStatus::NoPermission,
            ResponseStatus::AccessDenied,
            ResponseStatus::BadRequest,
            ResponseStatus::RequestNotSupported,
            ResponseStatus::PathNotExists,
        ] {
            assert_eq!(classify_response(s.phrase()), Some(s));
        }
        assert_eq!(classify_response("I'm a teapot"), None);
    }

    #[test]
    fn outcome_helpers() {
        let ok = ProbeOutcome {
            path: "/x".into(),
            status: ResponseStatus::RequestOk,
            leaked: vec![("token".into(), "t".into())],
        };
        assert!(ok.message_valid());
        assert!(ok.forged_accepted());
        let denied = ProbeOutcome {
            path: "/x".into(),
            status: ResponseStatus::AccessDenied,
            leaked: vec![],
        };
        assert!(denied.message_valid());
        assert!(!denied.forged_accepted());
        let bad = ProbeOutcome {
            path: "/x".into(),
            status: ResponseStatus::BadRequest,
            leaked: vec![],
        };
        assert!(!bad.message_valid());
    }
}
