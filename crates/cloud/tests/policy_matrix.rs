//! Policy matrix: every check kind against correct, forged and missing
//! parameters, plus endpoint-kind routing.

use firmres_cloud::{
    mac, Check, Cloud, CloudState, DeviceRecord, Endpoint, EndpointKind, HttpRequest, ResponseSpec,
    ResponseStatus,
};

fn state() -> CloudState {
    let mut s = CloudState::new("matrix-key");
    s.register_device(DeviceRecord {
        identifiers: [("deviceId".to_string(), "D-5".to_string())]
            .into_iter()
            .collect(),
        secret: "s3cret".into(),
        bound_user: None,
    });
    s.create_user("owner", "hunter2");
    s.bind("D-5", "owner").unwrap();
    s
}

fn single(check: Check, kind: EndpointKind) -> Cloud {
    Cloud::new(
        "matrix",
        vec![Endpoint {
            path: "/only".into(),
            kind,
            functionality: "Matrix endpoint.".into(),
            checks: vec![check],
            response: ResponseSpec::Ok,
            consequence: None,
        }],
        state(),
    )
}

fn status(cloud: &Cloud, body: &str) -> ResponseStatus {
    cloud.handle(&HttpRequest::new("/only", body)).status
}

#[test]
fn known_device_check_matrix() {
    let cloud = single(Check::KnownDevice("deviceId".into()), EndpointKind::Http);
    assert_eq!(status(&cloud, "deviceId=D-5"), ResponseStatus::RequestOk);
    assert_eq!(
        status(&cloud, "deviceId=D-404"),
        ResponseStatus::AccessDenied
    );
    assert_eq!(status(&cloud, "other=1"), ResponseStatus::BadRequest);
}

#[test]
fn secret_check_matrix() {
    let cloud = single(
        Check::SecretValid("deviceId".into(), "secret".into()),
        EndpointKind::Http,
    );
    assert_eq!(
        status(&cloud, "deviceId=D-5&secret=s3cret"),
        ResponseStatus::RequestOk
    );
    assert_eq!(
        status(&cloud, "deviceId=D-5&secret=nope"),
        ResponseStatus::AccessDenied
    );
    assert_eq!(status(&cloud, "deviceId=D-5"), ResponseStatus::BadRequest);
}

#[test]
fn user_cred_check_matrix() {
    let cloud = single(
        Check::UserCredValid("user".into(), "pass".into()),
        EndpointKind::Http,
    );
    assert_eq!(
        status(&cloud, "user=owner&pass=hunter2"),
        ResponseStatus::RequestOk
    );
    assert_eq!(
        status(&cloud, "user=owner&pass=guess"),
        ResponseStatus::NoPermission
    );
    assert_eq!(status(&cloud, "user=owner"), ResponseStatus::BadRequest);
}

#[test]
fn token_check_matrix() {
    let cloud = single(
        Check::TokenValid("deviceId".into(), "token".into()),
        EndpointKind::Http,
    );
    let token = cloud.with_state(|s| s.token_for("D-5").unwrap());
    assert_eq!(
        status(&cloud, &format!("deviceId=D-5&token={token}")),
        ResponseStatus::RequestOk
    );
    assert_eq!(
        status(&cloud, "deviceId=D-5&token=guess"),
        ResponseStatus::NoPermission
    );
}

#[test]
fn signature_check_matrix() {
    let cloud = single(
        Check::SignatureValid("deviceId".into(), "sign".into()),
        EndpointKind::Http,
    );
    let sig = mac::derive_signature("s3cret", "D-5");
    assert_eq!(
        status(&cloud, &format!("deviceId=D-5&sign={sig}")),
        ResponseStatus::RequestOk
    );
    assert_eq!(
        status(&cloud, "deviceId=D-5&sign=bad"),
        ResponseStatus::NoPermission
    );
}

#[test]
fn field_present_check_matrix() {
    let cloud = single(Check::FieldPresent("payload".into()), EndpointKind::Http);
    assert_eq!(
        status(&cloud, "payload=anything"),
        ResponseStatus::RequestOk
    );
    assert_eq!(status(&cloud, ""), ResponseStatus::BadRequest);
}

#[test]
fn mqtt_topic_endpoints_route_by_full_topic() {
    let cloud = Cloud::new(
        "mq",
        vec![Endpoint {
            path: "/dev/D-5/telemetry".into(),
            kind: EndpointKind::MqttTopic,
            functionality: "Telemetry topic.".into(),
            checks: vec![Check::KnownDevice("deviceId".into())],
            response: ResponseSpec::Ok,
            consequence: None,
        }],
        state(),
    );
    let ok = cloud.handle(&HttpRequest::new("/dev/D-5/telemetry", "deviceId=D-5"));
    assert_eq!(ok.status, ResponseStatus::RequestOk);
    let miss = cloud.handle(&HttpRequest::new("/dev/D-5/other", "deviceId=D-5"));
    assert_eq!(miss.status, ResponseStatus::PathNotExists);
}

#[test]
fn checks_evaluate_in_order_first_failure_wins() {
    let cloud = Cloud::new(
        "ord",
        vec![Endpoint {
            path: "/only".into(),
            kind: EndpointKind::Http,
            functionality: "Ordered checks.".into(),
            checks: vec![
                Check::KnownDevice("deviceId".into()),
                Check::TokenValid("deviceId".into(), "token".into()),
            ],
            response: ResponseSpec::Ok,
            consequence: None,
        }],
        state(),
    );
    // Unknown device fails the first check even though the token is absent
    // too: AccessDenied (identity), not BadRequest (missing token param
    // would only be checked later).
    assert_eq!(
        status(&cloud, "deviceId=D-404&token=x"),
        ResponseStatus::AccessDenied
    );
}

#[test]
fn response_bodies_carry_status_phrase() {
    let cloud = single(Check::FieldPresent("x".into()), EndpointKind::Http);
    let resp = cloud.handle(&HttpRequest::new("/only", "x=1"));
    let body = resp.body.to_string();
    assert!(body.contains("Request OK"), "{body}");
    let denied = cloud.handle(&HttpRequest::new("/only", ""));
    assert!(denied.body.to_string().contains("Bad Request"));
}
