//! Corpus-wide sharded classification cache.
//!
//! Third-party component reuse means the same delivery wrappers render
//! byte-identical slices across many firmware images, so a memo scoped
//! to one image (the PR 5 [`crate::SliceClassifier`]) still re-classifies
//! the same text once per device. [`ClassCache`] lifts that memo to the
//! corpus: a fixed array of `Mutex<HashMap>` shards keyed by FNV-128 of
//! the slice text, resolved by full-text comparison — the same
//! hash-narrows/bytes-confirm discipline as the FRAC store — and safe to
//! share across worker threads, images, and service requests.
//!
//! The cache affects *cost only, never labels*: a stored label is
//! exactly what the model (or the weak labeler) computes for that text,
//! so a hit replays the same answer a miss would have produced, and
//! reports stay byte-identical at any job count and any cache warmth.
//! An entry budget bounds memory: at capacity, new texts are classified
//! but not inserted (a full cache degrades to a pass-through, it never
//! evicts mid-run, so a text's hit/miss pattern is monotone).

use crate::fnv::fnv128;
use crate::label::{weak_label_streamed, KeywordHit};
use crate::model::BatchOutcome;
use crate::{Classifier, Primitive};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of lock shards. Power of two so the shard index is a mask of
/// the key's low bits; 64 keeps contention negligible at the repo's
/// worker counts while costing only 64 mutexes.
const SHARDS: usize = 64;

/// One lock shard: FNV-128 key → (stored text, its label). The text is
/// kept so a lookup can confirm bytes, not just the hash.
type Shard = Mutex<HashMap<u128, (Box<str>, Primitive)>>;

/// Point-in-time counters of a [`ClassCache`] (all monotone except
/// `entries`, which is the current population).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to classification.
    pub misses: u64,
    /// Slice texts that went through batched classification.
    pub batched: u64,
    /// Texts the certified None pre-filter resolved without scoring.
    pub prefilter_skips: u64,
    /// Distinct texts currently stored.
    pub entries: u64,
}

/// A sharded, bounded, corpus-wide slice-classification cache.
///
/// See the module docs for the identity argument. The type is `Sync`;
/// racing workers may classify the same text concurrently, but both
/// compute the identical deterministic label, so either insert wins
/// harmlessly.
#[derive(Debug)]
pub struct ClassCache {
    shards: Vec<Shard>,
    /// Total entry budget across shards; 0 = unbounded.
    capacity: usize,
    entries: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    batched: AtomicU64,
    prefilter_skips: AtomicU64,
}

impl ClassCache {
    /// An empty cache with a total entry budget (`0` = unbounded).
    pub fn new(capacity: usize) -> ClassCache {
        ClassCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            capacity,
            entries: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            batched: AtomicU64::new(0),
            prefilter_skips: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u128) -> &Shard {
        &self.shards[(key as usize) & (SHARDS - 1)]
    }

    /// Classify a batch of slice texts, consulting and filling the
    /// cache. Misses are classified in one [`Classifier::predict_batch`]
    /// call (pre-filter on) with the model, or weak-labeled without one
    /// — exactly the reference answer either way.
    pub fn classify_batch(
        &self,
        classifier: Option<&Classifier>,
        texts: &[&str],
    ) -> Vec<Primitive> {
        self.batched
            .fetch_add(texts.len() as u64, Ordering::Relaxed);
        // The cache exists to dedupe *model inference*. Without a model
        // the per-text work is one streamed keyword scan — cheaper than
        // the hash-and-verify a probe costs, let alone an insert — so
        // the cache degrades to a pass-through: weak labels are computed
        // directly and nothing is stored or counted as hit/miss.
        let Some(model) = classifier else {
            return texts
                .iter()
                .map(|t| {
                    weak_label_streamed(t).map_or(Primitive::None, |h: KeywordHit| h.primitive)
                })
                .collect();
        };
        let mut labels = vec![Primitive::None; texts.len()];
        // (input position, key) of every text the cache could not answer.
        let mut missing: Vec<(usize, u128)> = Vec::new();
        for (i, text) in texts.iter().enumerate() {
            let key = fnv128(text.as_bytes());
            let shard = self.shard(key).lock().expect("class cache shard");
            match shard.get(&key) {
                Some((stored, label)) if **stored == **text => labels[i] = *label,
                // Absent, or a 128-bit collision whose occupant is a
                // different text: classify fresh.
                _ => missing.push((i, key)),
            }
        }
        self.hits
            .fetch_add((texts.len() - missing.len()) as u64, Ordering::Relaxed);
        self.misses
            .fetch_add(missing.len() as u64, Ordering::Relaxed);
        if missing.is_empty() {
            return labels;
        }
        let miss_texts: Vec<&str> = missing.iter().map(|(i, _)| texts[*i]).collect();
        let BatchOutcome {
            labels: fresh,
            prefilter_skips,
        } = model.predict_batch(&miss_texts, true);
        self.prefilter_skips
            .fetch_add(prefilter_skips, Ordering::Relaxed);
        for ((i, key), label) in missing.into_iter().zip(fresh) {
            labels[i] = label;
            if self.capacity != 0 && self.entries.load(Ordering::Relaxed) >= self.capacity as u64 {
                continue;
            }
            let mut shard = self.shard(key).lock().expect("class cache shard");
            if let std::collections::hash_map::Entry::Vacant(slot) = shard.entry(key) {
                slot.insert((Box::from(texts[i]), label));
                self.entries.fetch_add(1, Ordering::Relaxed);
            }
        }
        labels
    }

    /// Current counters.
    pub fn stats(&self) -> ClassCacheStats {
        ClassCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            batched: self.batched.load(Ordering::Relaxed),
            prefilter_skips: self.prefilter_skips.load(Ordering::Relaxed),
            entries: self.entries.load(Ordering::Relaxed),
        }
    }

    /// Distinct texts currently stored.
    pub fn len(&self) -> usize {
        self.entries.load(Ordering::Relaxed) as usize
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{weak_label, TrainConfig};

    fn model() -> Classifier {
        let data: Vec<(String, Primitive)> = (0..10)
            .flat_map(|i| {
                vec![
                    (format!("mac addr device {i}"), Primitive::DevIdentifier),
                    (format!("password login {i}"), Primitive::UserCred),
                    (format!("uptime counter {i}"), Primitive::None),
                ]
            })
            .collect();
        Classifier::train(
            &data,
            &TrainConfig {
                epochs: 10,
                ..TrainConfig::default()
            },
        )
    }

    #[test]
    fn cached_labels_match_the_model_exactly() {
        let model = model();
        let cache = ClassCache::new(0);
        let texts = [
            "mac addr device 42",
            "password login 9",
            "uptime counter 3",
            "nothing at all",
            "",
            "mac addr device 42", // duplicate within the batch
        ];
        let cold = cache.classify_batch(Some(&model), &texts);
        let warm = cache.classify_batch(Some(&model), &texts);
        assert_eq!(cold, warm);
        for (text, got) in texts.iter().zip(&cold) {
            assert_eq!(*got, model.predict(text).0, "on {text:?}");
        }
        let stats = cache.stats();
        assert_eq!(stats.batched, 12);
        // Second pass is all hits; the first pass may already hit on the
        // in-batch duplicate's second occurrence... it cannot: misses in
        // one batch are classified before insertion, so both occurrences
        // miss. 6 misses cold (5 distinct + 1 duplicate), 6 hits warm.
        assert_eq!(stats.hits, 6);
        assert_eq!(stats.misses, 6);
        assert_eq!(stats.entries, 5);
    }

    #[test]
    fn weak_label_fallback_matches_reference() {
        let cache = ClassCache::new(0);
        let texts = [
            "CALL (Fun, get_mac_addr) mac=%s",
            "(Cons, \"device_key\")",
            "(Cons, \"uploadType=%s\")",
            "",
        ];
        let labels = cache.classify_batch(None, &texts);
        for (text, got) in texts.iter().zip(&labels) {
            assert_eq!(*got, weak_label(text), "on {text:?}");
        }
        assert_eq!(cache.stats().prefilter_skips, 0);
    }

    #[test]
    fn capacity_bounds_insertion_but_not_correctness() {
        let model = model();
        let cache = ClassCache::new(2);
        let texts = ["mac addr device 1", "password login 2", "uptime counter 3"];
        let first = cache.classify_batch(Some(&model), &texts);
        assert!(cache.len() <= 2, "budget respected, len {}", cache.len());
        let second = cache.classify_batch(Some(&model), &texts);
        assert_eq!(first, second);
        for (text, got) in texts.iter().zip(&second) {
            assert_eq!(*got, model.predict(text).0, "on {text:?}");
        }
    }

    #[test]
    fn concurrent_batches_agree_with_the_single_threaded_answer() {
        let model = model();
        let cache = ClassCache::new(0);
        let texts: Vec<String> = (0..64)
            .map(|i| match i % 4 {
                0 => format!("mac addr device {}", i / 4),
                1 => format!("password login {}", i / 4),
                2 => format!("uptime counter {}", i / 4),
                _ => format!("misc text {}", i / 4),
            })
            .collect();
        let expected: Vec<Primitive> = texts.iter().map(|t| model.predict(t).0).collect();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
                    let got = cache.classify_batch(Some(&model), &refs);
                    assert_eq!(got, expected);
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.batched, 8 * 64);
        assert_eq!(stats.entries, 64);
        assert_eq!(stats.hits + stats.misses, 8 * 64);
    }
}
