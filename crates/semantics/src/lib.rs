//! # firmres-semantics
//!
//! Field semantic recovery (paper §IV-C): classify enriched code slices
//! into the access-control primitives of §II-B.
//!
//! The paper trains a BERT-TextCNN on 30,941 slices from 147k firmware
//! images on an RTX 4090. This reproduction substitutes a from-scratch
//! **linear classifier over hashed n-gram features** with TextCNN-style
//! window features (n-gram windows of widths 2–5, mirroring the paper's
//! convolution kernel sizes), trained with plain SGD on softmax
//! cross-entropy. The classification *task*, the label set
//! ({Dev-Identifier, Dev-Secret, User-Cred, Bind-Token, Signature,
//! Address, None}), the weak keyword labeling used to bootstrap the
//! dataset, and the 7:2:1 train/validation/test protocol are all the
//! paper's; only the model family changes (documented in DESIGN.md).
//!
//! # Examples
//!
//! ```
//! use firmres_semantics::{Classifier, Primitive, TrainConfig};
//!
//! let data = vec![
//!     ("CALL (Fun, get_mac_addr) ; FIELD (Cons, \"mac=%s\")".to_string(), Primitive::DevIdentifier),
//!     ("CALL (Fun, nvram_get), (Cons, \"password\")".to_string(), Primitive::UserCred),
//!     ("CALL (Fun, sprintf), (Cons, \"ts=%d\")".to_string(), Primitive::None),
//! ];
//! // Tiny corpus: train just to exercise the API.
//! let model = Classifier::train(&data, &TrainConfig { epochs: 50, ..TrainConfig::default() });
//! let (label, probs) = model.predict("CALL (Fun, get_mac_addr)");
//! assert_eq!(probs.len(), Primitive::ALL.len());
//! let _ = label;
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod dataset;
mod fnv;
mod label;
mod memo;
mod model;
mod persist;
mod token;

pub use cache::{ClassCache, ClassCacheStats};
pub use dataset::{split_dataset, DatasetSplit};
pub use label::{weak_label, weak_label_streamed, weak_label_with_report, KeywordHit};
pub use memo::SliceClassifier;
pub use model::{BatchOutcome, Classifier, TrainConfig, TrainReport};
pub use persist::ModelError;
pub use token::{featurize, for_each_token, tokenize, FEATURE_DIM};

use std::fmt;

/// The access-control primitives (paper §II-B) plus `Address` and `None`
/// — the seven output classes of the semantics model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Primitive {
    /// Device identifier (MAC address, serial number, device/product id).
    DevIdentifier,
    /// Device secret (secret key, device key, device certificate).
    DevSecret,
    /// User login credential.
    UserCred,
    /// Binding/access/session token issued by the cloud.
    BindToken,
    /// Signature / temporary key derived from the device secret.
    Signature,
    /// Communication address (cloud host, IP, URL).
    Address,
    /// Not an access-control primitive.
    None,
}

impl Primitive {
    /// All classes in model output order.
    pub const ALL: [Primitive; 7] = [
        Primitive::DevIdentifier,
        Primitive::DevSecret,
        Primitive::UserCred,
        Primitive::BindToken,
        Primitive::Signature,
        Primitive::Address,
        Primitive::None,
    ];

    /// Model output index.
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|p| *p == self).expect("in ALL")
    }

    /// Class from a model output index.
    pub fn from_index(i: usize) -> Option<Primitive> {
        Self::ALL.get(i).copied()
    }

    /// Paper-style display name.
    pub fn label(self) -> &'static str {
        match self {
            Primitive::DevIdentifier => "Dev-Identifier",
            Primitive::DevSecret => "Dev-Secret",
            Primitive::UserCred => "User-Cred",
            Primitive::BindToken => "Bind-Token",
            Primitive::Signature => "Signature",
            Primitive::Address => "Address",
            Primitive::None => "None",
        }
    }

    /// Whether this class is one of the five access-control primitives
    /// (everything except `Address` and `None`).
    pub fn is_access_control(self) -> bool {
        !matches!(self, Primitive::Address | Primitive::None)
    }
}

impl fmt::Display for Primitive {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_round_trip() {
        for p in Primitive::ALL {
            assert_eq!(Primitive::from_index(p.index()), Some(p));
        }
        assert_eq!(Primitive::from_index(7), None);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Primitive::DevIdentifier.to_string(), "Dev-Identifier");
        assert_eq!(Primitive::BindToken.label(), "Bind-Token");
        assert_eq!(Primitive::None.label(), "None");
    }

    #[test]
    fn access_control_classification() {
        assert!(Primitive::DevSecret.is_access_control());
        assert!(Primitive::Signature.is_access_control());
        assert!(!Primitive::Address.is_access_control());
        assert!(!Primitive::None.is_access_control());
    }
}
