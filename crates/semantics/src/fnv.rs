//! A minimal FNV-1a hasher for the crate's internal lookup tables.
//!
//! The semantics crate is deliberately dependency-light, so it carries
//! its own copy of this ~20-line hasher instead of pulling one in. The
//! keys hashed here (tokens, slice texts) come from the firmware image
//! under analysis, not from untrusted network peers, so the cheap
//! non-keyed hash is appropriate — and it is measurably faster than the
//! standard library's SipHash on the short strings the hot classify
//! loop looks up in bulk.

use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a over the written bytes.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }
}

/// `BuildHasher` for [`FnvHasher`], for map type parameters.
pub(crate) type FnvBuildHasher = BuildHasherDefault<FnvHasher>;

/// FNV-1a over 128 bits, for keys where the 64-bit variant's collision
/// probability is no longer comfortable (the corpus-wide class cache
/// keys millions of distinct slice texts). Same discipline as the FRAC
/// store: the wide hash narrows the candidate, full-text comparison
/// confirms it.
pub(crate) fn fnv128(bytes: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u128::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::fnv128;

    #[test]
    fn fnv128_matches_published_vectors() {
        // FNV-1a 128-bit test vectors from the reference
        // implementation's suite.
        assert_eq!(fnv128(b""), 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d);
        assert_eq!(fnv128(b"a"), 0xd228_cb69_6f1a_8caf_7891_2b70_4e4a_8964);
        assert_ne!(fnv128(b"ab"), fnv128(b"ba"));
    }
}
