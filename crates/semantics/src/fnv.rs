//! A minimal FNV-1a hasher for the crate's internal lookup tables.
//!
//! The semantics crate is deliberately dependency-light, so it carries
//! its own copy of this ~20-line hasher instead of pulling one in. The
//! keys hashed here (tokens, slice texts) come from the firmware image
//! under analysis, not from untrusted network peers, so the cheap
//! non-keyed hash is appropriate — and it is measurably faster than the
//! standard library's SipHash on the short strings the hot classify
//! loop looks up in bulk.

use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a over the written bytes.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }
}

/// `BuildHasher` for [`FnvHasher`], for map type parameters.
pub(crate) type FnvBuildHasher = BuildHasherDefault<FnvHasher>;
