//! The multi-class linear classifier and its SGD trainer.

use crate::token::{featurize, tokenize, FEATURE_DIM};
use crate::Primitive;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Epochs over the training set (paper: 100).
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// L2 regularization strength.
    pub l2: f32,
    /// RNG seed for shuffling (runs are deterministic given a seed).
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 100,
            learning_rate: 0.5,
            l2: 1e-6,
            seed: 0xF1A9,
        }
    }
}

/// Summary statistics of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Epochs actually run.
    pub epochs: usize,
    /// Accuracy on the training data after the final epoch.
    pub train_accuracy: f64,
    /// Cross-entropy loss after the final epoch (mean per example).
    pub final_loss: f64,
}

/// A softmax linear classifier over hashed slice features.
#[derive(Debug, Clone)]
pub struct Classifier {
    /// `weights[class][feature]`, plus one bias at index `FEATURE_DIM`.
    weights: Vec<Vec<f32>>,
    report: TrainReport,
}

impl Classifier {
    /// Train on `(slice text, label)` pairs. See [`Classifier::train_with_report`].
    pub fn train(data: &[(String, Primitive)], config: &TrainConfig) -> Classifier {
        Self::train_with_report(data, config)
    }

    /// Train and keep the [`TrainReport`] (accessible via
    /// [`Classifier::report`]).
    pub fn train_with_report(data: &[(String, Primitive)], config: &TrainConfig) -> Classifier {
        let n_classes = Primitive::ALL.len();
        let mut weights = vec![vec![0.0f32; FEATURE_DIM + 1]; n_classes];
        let features: Vec<(Vec<(usize, f32)>, usize)> = data
            .iter()
            .map(|(text, label)| (featurize(&tokenize(text)), label.index()))
            .collect();
        let mut order: Vec<usize> = (0..features.len()).collect();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut final_loss = 0.0f64;
        for epoch in 0..config.epochs {
            order.shuffle(&mut rng);
            let lr = config.learning_rate / (1.0 + 0.02 * epoch as f32);
            let mut loss_sum = 0.0f64;
            for &i in &order {
                let (fv, label) = &features[i];
                let probs = Self::softmax_scores(&weights, fv);
                loss_sum += -f64::from(probs[*label].max(1e-9).ln());
                for (c, w) in weights.iter_mut().enumerate() {
                    let err = probs[c] - if c == *label { 1.0 } else { 0.0 };
                    for (j, x) in fv {
                        w[*j] -= lr * (err * x + config.l2 * w[*j]);
                    }
                    w[FEATURE_DIM] -= lr * err;
                }
            }
            final_loss = if features.is_empty() {
                0.0
            } else {
                loss_sum / features.len() as f64
            };
        }
        let mut model = Classifier {
            weights,
            report: TrainReport {
                epochs: config.epochs,
                train_accuracy: 0.0,
                final_loss,
            },
        };
        let correct = features
            .iter()
            .filter(|(fv, label)| {
                let probs = Self::softmax_scores(&model.weights, fv);
                argmax(&probs) == *label
            })
            .count();
        model.report.train_accuracy = if features.is_empty() {
            0.0
        } else {
            correct as f64 / features.len() as f64
        };
        model
    }

    fn softmax_scores(weights: &[Vec<f32>], fv: &[(usize, f32)]) -> Vec<f32> {
        let mut scores: Vec<f32> = weights
            .iter()
            .map(|w| {
                let mut s = w[FEATURE_DIM];
                for (j, x) in fv {
                    s += w[*j] * x;
                }
                s
            })
            .collect();
        let max = scores.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for s in &mut scores {
            *s = (*s - max).exp();
            sum += *s;
        }
        for s in &mut scores {
            *s /= sum;
        }
        scores
    }

    /// Class probabilities for a slice.
    pub fn probabilities(&self, text: &str) -> Vec<f32> {
        let fv = featurize(&tokenize(text));
        Self::softmax_scores(&self.weights, &fv)
    }

    /// The most probable primitive and the full probability vector.
    pub fn predict(&self, text: &str) -> (Primitive, Vec<f32>) {
        let probs = self.probabilities(text);
        let label = Primitive::from_index(argmax(&probs)).expect("valid index");
        (label, probs)
    }

    /// [`Classifier::predict`] label from an already-built feature
    /// vector, for the memoizing cold path (which featurizes into a
    /// reusable buffer instead of per-call allocations).
    pub(crate) fn predict_features(&self, fv: &[(usize, f32)]) -> Primitive {
        let probs = Self::softmax_scores(&self.weights, fv);
        Primitive::from_index(argmax(&probs)).expect("valid index")
    }

    /// Accuracy on labeled data.
    pub fn accuracy(&self, data: &[(String, Primitive)]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = data
            .iter()
            .filter(|(text, label)| self.predict(text).0 == *label)
            .count();
        correct as f64 / data.len() as f64
    }

    /// The training report.
    pub fn report(&self) -> &TrainReport {
        &self.report
    }

    /// Raw weight matrix (`[class][feature+bias]`), for persistence.
    pub(crate) fn weights(&self) -> &[Vec<f32>] {
        &self.weights
    }

    /// Rebuild a classifier from persisted parts.
    pub(crate) fn from_parts(weights: Vec<Vec<f32>>, report: TrainReport) -> Classifier {
        Classifier { weights, report }
    }
}

fn argmax(xs: &[f32]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map_or(0, |(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_dataset() -> Vec<(String, Primitive)> {
        let mut data = Vec::new();
        let make = |s: &str| s.to_string();
        for i in 0..20 {
            data.push((
                make(&format!("CALL (Fun, get_mac_addr) mac addr {i}")),
                Primitive::DevIdentifier,
            ));
            data.push((
                make(&format!(
                    "CALL (Fun, nvram_get) (Cons, \"serial_{i}\") serial number"
                )),
                Primitive::DevIdentifier,
            ));
            data.push((
                make(&format!("(Cons, \"device_secret\") secret key {i}")),
                Primitive::DevSecret,
            ));
            data.push((
                make(&format!(
                    "(Cons, \"username\") (Cons, \"password\") login {i}"
                )),
                Primitive::UserCred,
            ));
            data.push((
                make(&format!("(Cons, \"access_token={i}\") token session")),
                Primitive::BindToken,
            ));
            data.push((
                make(&format!("CALL (Fun, hmac_sign) signature sig {i}")),
                Primitive::Signature,
            ));
            data.push((
                make(&format!("(Cons, \"cloud.example.com\") host server {i}")),
                Primitive::Address,
            ));
            data.push((
                make(&format!("(Cons, \"uptime={i}\") counter misc")),
                Primitive::None,
            ));
        }
        data
    }

    #[test]
    fn learns_separable_toy_data() {
        let data = toy_dataset();
        let model = Classifier::train(
            &data,
            &TrainConfig {
                epochs: 30,
                ..Default::default()
            },
        );
        assert!(
            model.report().train_accuracy > 0.95,
            "training accuracy {} too low",
            model.report().train_accuracy
        );
        let (label, _) = model.predict("CALL (Fun, get_mac_addr) mac addr 99");
        assert_eq!(label, Primitive::DevIdentifier);
        let (label, _) = model.predict("(Cons, \"password\") login credential");
        assert_eq!(label, Primitive::UserCred);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let data = toy_dataset();
        let model = Classifier::train(
            &data,
            &TrainConfig {
                epochs: 5,
                ..Default::default()
            },
        );
        let probs = model.probabilities("anything at all");
        let sum: f32 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "sum {sum}");
        assert_eq!(probs.len(), 7);
        assert!(probs.iter().all(|p| *p >= 0.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let data = toy_dataset();
        let cfg = TrainConfig {
            epochs: 5,
            ..Default::default()
        };
        let m1 = Classifier::train(&data, &cfg);
        let m2 = Classifier::train(&data, &cfg);
        assert_eq!(m1.probabilities("mac"), m2.probabilities("mac"));
    }

    #[test]
    fn accuracy_on_held_out() {
        let data = toy_dataset();
        let model = Classifier::train(
            &data,
            &TrainConfig {
                epochs: 30,
                ..Default::default()
            },
        );
        let held_out = vec![
            (
                "mac addr get_mac_addr".to_string(),
                Primitive::DevIdentifier,
            ),
            ("secret certificate".to_string(), Primitive::DevSecret),
        ];
        assert!(model.accuracy(&held_out) >= 0.5);
        assert_eq!(model.accuracy(&[]), 0.0);
    }

    #[test]
    fn empty_training_is_safe() {
        let model = Classifier::train(
            &[],
            &TrainConfig {
                epochs: 1,
                ..Default::default()
            },
        );
        let (label, probs) = model.predict("whatever");
        assert_eq!(probs.len(), 7);
        // Untrained model predicts *something* deterministic.
        let _ = label;
    }
}
