//! The multi-class linear classifier and its SGD trainer.
//!
//! Weights live in one contiguous row-major matrix
//! (`classes × (FEATURE_DIM + 1)`, bias in the last column) rather than
//! a `Vec<Vec<f32>>` of per-class rows, so training and persistence
//! walk flat memory. At construction the matrix is additionally
//! *sparsified* for inference: SGD only ever updates weights of
//! features present in some training example, so most of the hashed
//! columns are exactly zero across every class, and an index map lets
//! the dot products touch only live columns.
//!
//! Every inference entry point — [`Classifier::predict`],
//! [`Classifier::predict_batch`], the memo path's feature-vector
//! variant — goes through one shared raw-score kernel over that
//! sparsified form and takes its label as the argmax of the *raw*
//! scores. Softmax is strictly monotone, so this is provably the same
//! label the probability vector yields, computed without any `exp`;
//! sharing the kernel means every path performs the identical sequence
//! of float operations and can never diverge on ties.

use crate::token::{featurize, tokenize, Featurizer, FEATURE_DIM};
use crate::Primitive;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One weight row: all feature columns plus the bias column.
const ROW: usize = FEATURE_DIM + 1;

/// Safety margin for the certified None pre-filter (see
/// [`Classifier::prefilter_certifies_none`]). The gap bound is
/// accumulated in `f64` over exact `f32`-difference terms, but the
/// scores it reasons about are computed by the `f32` kernel, whose
/// rounding can deviate from the real-arithmetic sum. The margin is
/// sized generously above any realistic accumulation error (unit-norm
/// feature vectors, bounded weights, at most a few thousand terms);
/// a too-large margin only costs skip rate, never correctness.
const PREFILTER_SLACK: f64 = 1e-2;

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Epochs over the training set (paper: 100).
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// L2 regularization strength.
    pub l2: f32,
    /// RNG seed for shuffling (runs are deterministic given a seed).
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 100,
            learning_rate: 0.5,
            l2: 1e-6,
            seed: 0xF1A9,
        }
    }
}

/// Summary statistics of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Epochs actually run.
    pub epochs: usize,
    /// Accuracy on the training data after the final epoch.
    pub train_accuracy: f64,
    /// Cross-entropy loss after the final epoch (mean per example).
    pub final_loss: f64,
}

/// Labels for a batch of slice texts (see [`Classifier::predict_batch`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOutcome {
    /// One label per input text, in input order.
    pub labels: Vec<Primitive>,
    /// Texts the certified None pre-filter resolved without scoring.
    pub prefilter_skips: u64,
}

/// A softmax linear classifier over hashed slice features.
#[derive(Debug, Clone)]
pub struct Classifier {
    /// Row-major `n_classes × ROW` weight matrix; the bias sits in
    /// column `FEATURE_DIM` of each row. This is the canonical form:
    /// training updates it and persistence serializes it verbatim.
    flat: Vec<f32>,
    n_classes: usize,
    /// Per-class biases (column `FEATURE_DIM` of each row).
    bias: Vec<f32>,
    /// Feature index → live-column index, `u32::MAX` for columns that
    /// are exactly zero in every class (skipped by the kernel).
    col_of: Vec<u32>,
    /// Feature-major live-column weights: live column `c`'s class
    /// weights occupy `lw[c * n_classes ..][.. n_classes]`, so one
    /// sparse feature updates all class scores from one cache line.
    lw: Vec<f32>,
    /// Per-live-column pre-filter bound:
    /// `max_{c ≠ None}(w[c][j] − w[None][j])`. Deliberately *not*
    /// clamped at zero — `x_j ≥ 0`, so a column every non-None class
    /// scores below None on contributes sound negative evidence.
    gap: Vec<f64>,
    /// `max_{c ≠ None}(bias[c] − bias[None])` (may be negative).
    bias_gap: f64,
    report: TrainReport,
}

impl Classifier {
    /// Train on `(slice text, label)` pairs. See [`Classifier::train_with_report`].
    pub fn train(data: &[(String, Primitive)], config: &TrainConfig) -> Classifier {
        Self::train_with_report(data, config)
    }

    /// Train and keep the [`TrainReport`] (accessible via
    /// [`Classifier::report`]).
    pub fn train_with_report(data: &[(String, Primitive)], config: &TrainConfig) -> Classifier {
        let n_classes = Primitive::ALL.len();
        let mut flat = vec![0.0f32; n_classes * ROW];
        let features: Vec<(Vec<(usize, f32)>, usize)> = data
            .iter()
            .map(|(text, label)| (featurize(&tokenize(text)), label.index()))
            .collect();
        let mut order: Vec<usize> = (0..features.len()).collect();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut final_loss = 0.0f64;
        for epoch in 0..config.epochs {
            order.shuffle(&mut rng);
            let lr = config.learning_rate / (1.0 + 0.02 * epoch as f32);
            let mut loss_sum = 0.0f64;
            for &i in &order {
                let (fv, label) = &features[i];
                let probs = softmax_flat(&flat, n_classes, fv);
                loss_sum += -f64::from(probs[*label].max(1e-9).ln());
                for (c, prob) in probs.iter().enumerate() {
                    let err = prob - if c == *label { 1.0 } else { 0.0 };
                    let w = &mut flat[c * ROW..(c + 1) * ROW];
                    for (j, x) in fv {
                        w[*j] -= lr * (err * x + config.l2 * w[*j]);
                    }
                    w[FEATURE_DIM] -= lr * err;
                }
            }
            final_loss = if features.is_empty() {
                0.0
            } else {
                loss_sum / features.len() as f64
            };
        }
        let correct = features
            .iter()
            .filter(|(fv, label)| {
                let probs = softmax_flat(&flat, n_classes, fv);
                argmax(&probs) == *label
            })
            .count();
        let train_accuracy = if features.is_empty() {
            0.0
        } else {
            correct as f64 / features.len() as f64
        };
        Self::from_flat(
            flat,
            TrainReport {
                epochs: config.epochs,
                train_accuracy,
                final_loss,
            },
        )
    }

    /// Build the sparsified inference form from the canonical matrix.
    fn from_flat(flat: Vec<f32>, report: TrainReport) -> Classifier {
        debug_assert_eq!(flat.len() % ROW, 0);
        let n_classes = flat.len() / ROW;
        debug_assert_eq!(n_classes, Primitive::ALL.len());
        // `None` is last in `Primitive::ALL`; the pre-filter bound is
        // derived against it.
        let none = n_classes - 1;
        debug_assert_eq!(Primitive::from_index(none), Some(Primitive::None));
        let bias: Vec<f32> = (0..n_classes)
            .map(|c| flat[c * ROW + FEATURE_DIM])
            .collect();
        let mut col_of = vec![u32::MAX; FEATURE_DIM];
        let mut lw = Vec::new();
        let mut gap = Vec::new();
        for (j, slot) in col_of.iter_mut().enumerate() {
            if (0..n_classes).all(|c| flat[c * ROW + j] == 0.0) {
                continue;
            }
            *slot = gap.len() as u32;
            let wn = f64::from(flat[none * ROW + j]);
            let mut g = f64::NEG_INFINITY;
            for c in 0..n_classes {
                let w = flat[c * ROW + j];
                lw.push(w);
                if c != none {
                    g = g.max(f64::from(w) - wn);
                }
            }
            gap.push(g);
        }
        let bn = f64::from(bias[none]);
        let bias_gap = bias[..none]
            .iter()
            .map(|b| f64::from(*b) - bn)
            .fold(f64::NEG_INFINITY, f64::max);
        Classifier {
            flat,
            n_classes,
            bias,
            col_of,
            lw,
            gap,
            bias_gap,
            report,
        }
    }

    /// Raw (pre-softmax) class scores for a feature vector. This is the
    /// single scoring kernel shared by every inference entry point, so
    /// the arithmetic — including which zero columns are skipped — is
    /// identical everywhere by construction.
    fn raw_scores(&self, fv: &[(usize, f32)], scores: &mut Vec<f32>) {
        scores.clear();
        scores.extend_from_slice(&self.bias);
        for (j, x) in fv {
            let col = self.col_of[*j];
            if col == u32::MAX {
                continue;
            }
            let ws = &self.lw[col as usize * self.n_classes..][..self.n_classes];
            for (s, w) in scores.iter_mut().zip(ws) {
                *s += w * x;
            }
        }
    }

    /// Whether the certified pre-filter proves the label is `None`.
    ///
    /// Every feature weight is non-negative in the input (`x_j ≥ 0`
    /// after L2 normalization), so for any non-None class `c`:
    ///
    /// ```text
    /// score_c − score_None = (bias_c − bias_None) + Σ_j (w[c][j] − w[None][j]) · x_j
    ///                      ≤ bias_gap + Σ_j gap[j] · x_j
    /// ```
    ///
    /// If that bound is strictly below `−PREFILTER_SLACK`, no non-None
    /// class can reach None's score and the argmax is None without
    /// scoring. Strictness matters: None is the *last* class, so a
    /// first-max-wins argmax would hand an exact tie to the non-None
    /// class — the slack keeps the skip decision safely inside the
    /// region where the full `f32` kernel agrees.
    pub(crate) fn prefilter_certifies_none(&self, fv: &[(usize, f32)]) -> bool {
        let mut bound = self.bias_gap;
        for (j, x) in fv {
            let col = self.col_of[*j];
            if col != u32::MAX {
                bound += self.gap[col as usize] * f64::from(*x);
            }
        }
        bound < -PREFILTER_SLACK
    }

    /// Class probabilities for a slice.
    pub fn probabilities(&self, text: &str) -> Vec<f32> {
        let fv = featurize(&tokenize(text));
        let mut scores = Vec::with_capacity(self.n_classes);
        self.raw_scores(&fv, &mut scores);
        softmax_in_place(&mut scores);
        scores
    }

    /// The most probable primitive and the full probability vector.
    ///
    /// The label comes from the raw-score argmax (softmax is monotone,
    /// so it is the same class), via the same kernel as
    /// [`Classifier::predict_batch`].
    pub fn predict(&self, text: &str) -> (Primitive, Vec<f32>) {
        let fv = featurize(&tokenize(text));
        let mut scores = Vec::with_capacity(self.n_classes);
        self.raw_scores(&fv, &mut scores);
        let label = Primitive::from_index(argmax(&scores)).expect("valid index");
        softmax_in_place(&mut scores);
        (label, scores)
    }

    /// Labels for a whole batch of slice texts in one call: one shared
    /// featurizer scratch, one reused score buffer, no softmax, and —
    /// with `prefilter` — the certified None pre-filter short-circuits
    /// slices provably labeled None. Labels are identical to calling
    /// [`Classifier::predict`] per text.
    pub fn predict_batch(&self, texts: &[&str], prefilter: bool) -> BatchOutcome {
        let mut fz = Featurizer::default();
        let mut scores: Vec<f32> = Vec::with_capacity(self.n_classes);
        let mut labels = Vec::with_capacity(texts.len());
        let mut prefilter_skips = 0u64;
        for text in texts {
            let fv = fz.features(text);
            if prefilter && self.prefilter_certifies_none(&fv) {
                prefilter_skips += 1;
                labels.push(Primitive::None);
                continue;
            }
            self.raw_scores(&fv, &mut scores);
            labels.push(Primitive::from_index(argmax(&scores)).expect("valid index"));
        }
        BatchOutcome {
            labels,
            prefilter_skips,
        }
    }

    /// [`Classifier::predict`] label from an already-built feature
    /// vector, for the memoizing cold path (which featurizes into a
    /// reusable buffer instead of per-call allocations).
    pub(crate) fn predict_features(&self, fv: &[(usize, f32)]) -> Primitive {
        let mut scores = Vec::with_capacity(self.n_classes);
        self.raw_scores(fv, &mut scores);
        Primitive::from_index(argmax(&scores)).expect("valid index")
    }

    /// Accuracy on labeled data.
    pub fn accuracy(&self, data: &[(String, Primitive)]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = data
            .iter()
            .filter(|(text, label)| self.predict(text).0 == *label)
            .count();
        correct as f64 / data.len() as f64
    }

    /// The training report.
    pub fn report(&self) -> &TrainReport {
        &self.report
    }

    /// The canonical row-major weight matrix, for persistence.
    pub(crate) fn flat(&self) -> &[f32] {
        &self.flat
    }

    /// The per-class weight rows `[w_0 … w_{FEATURE_DIM-1}, bias]` as
    /// independent vectors — the historical in-memory layout, rebuilt
    /// on demand for reference and benchmark paths that reproduce the
    /// pre-batching arithmetic (nested-row dot products, full softmax).
    pub fn dense_weights(&self) -> Vec<Vec<f32>> {
        self.flat.chunks(ROW).map(<[f32]>::to_vec).collect()
    }

    /// Number of output classes.
    pub(crate) fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Rebuild a classifier from persisted parts (a row-major matrix of
    /// `ROW`-length rows, as returned by [`Classifier::flat`]).
    pub(crate) fn from_parts(flat: Vec<f32>, report: TrainReport) -> Classifier {
        Self::from_flat(flat, report)
    }
}

/// Training-path scoring over the canonical matrix: raw scores for all
/// classes, softmax-normalized. Walks every feature of `fv` (the
/// sparsified form does not exist mid-training).
fn softmax_flat(flat: &[f32], n_classes: usize, fv: &[(usize, f32)]) -> Vec<f32> {
    let mut scores: Vec<f32> = (0..n_classes)
        .map(|c| {
            let w = &flat[c * ROW..(c + 1) * ROW];
            let mut s = w[FEATURE_DIM];
            for (j, x) in fv {
                s += w[*j] * x;
            }
            s
        })
        .collect();
    softmax_in_place(&mut scores);
    scores
}

fn softmax_in_place(scores: &mut [f32]) {
    let max = scores.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for s in scores.iter_mut() {
        *s = (*s - max).exp();
        sum += *s;
    }
    for s in scores.iter_mut() {
        *s /= sum;
    }
}

/// First-max-wins argmax under the `f32` total order.
///
/// The previous `max_by(partial_cmp(..).unwrap_or(Equal))` reduction
/// resolved ties last-max-wins and made a NaN score win or lose
/// depending on where it sat in the slice. Under `total_cmp` a (positive)
/// NaN compares greater than every number, so its resolution is a fixed
/// rule rather than an artifact of position, and exact ties always go to
/// the earliest class — batch and reference paths can never diverge.
fn argmax(xs: &[f32]) -> usize {
    let mut best = 0;
    for (i, x) in xs.iter().enumerate().skip(1) {
        if x.total_cmp(&xs[best]) == std::cmp::Ordering::Greater {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_dataset() -> Vec<(String, Primitive)> {
        let mut data = Vec::new();
        let make = |s: &str| s.to_string();
        for i in 0..20 {
            data.push((
                make(&format!("CALL (Fun, get_mac_addr) mac addr {i}")),
                Primitive::DevIdentifier,
            ));
            data.push((
                make(&format!(
                    "CALL (Fun, nvram_get) (Cons, \"serial_{i}\") serial number"
                )),
                Primitive::DevIdentifier,
            ));
            data.push((
                make(&format!("(Cons, \"device_secret\") secret key {i}")),
                Primitive::DevSecret,
            ));
            data.push((
                make(&format!(
                    "(Cons, \"username\") (Cons, \"password\") login {i}"
                )),
                Primitive::UserCred,
            ));
            data.push((
                make(&format!("(Cons, \"access_token={i}\") token session")),
                Primitive::BindToken,
            ));
            data.push((
                make(&format!("CALL (Fun, hmac_sign) signature sig {i}")),
                Primitive::Signature,
            ));
            data.push((
                make(&format!("(Cons, \"cloud.example.com\") host server {i}")),
                Primitive::Address,
            ));
            data.push((
                make(&format!("(Cons, \"uptime={i}\") counter misc")),
                Primitive::None,
            ));
        }
        data
    }

    fn toy_model(epochs: usize) -> Classifier {
        Classifier::train(
            &toy_dataset(),
            &TrainConfig {
                epochs,
                ..Default::default()
            },
        )
    }

    #[test]
    fn learns_separable_toy_data() {
        let model = toy_model(30);
        assert!(
            model.report().train_accuracy > 0.95,
            "training accuracy {} too low",
            model.report().train_accuracy
        );
        let (label, _) = model.predict("CALL (Fun, get_mac_addr) mac addr 99");
        assert_eq!(label, Primitive::DevIdentifier);
        let (label, _) = model.predict("(Cons, \"password\") login credential");
        assert_eq!(label, Primitive::UserCred);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let model = toy_model(5);
        let probs = model.probabilities("anything at all");
        let sum: f32 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "sum {sum}");
        assert_eq!(probs.len(), 7);
        assert!(probs.iter().all(|p| *p >= 0.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let data = toy_dataset();
        let cfg = TrainConfig {
            epochs: 5,
            ..Default::default()
        };
        let m1 = Classifier::train(&data, &cfg);
        let m2 = Classifier::train(&data, &cfg);
        assert_eq!(m1.probabilities("mac"), m2.probabilities("mac"));
    }

    #[test]
    fn accuracy_on_held_out() {
        let model = toy_model(30);
        let held_out = vec![
            (
                "mac addr get_mac_addr".to_string(),
                Primitive::DevIdentifier,
            ),
            ("secret certificate".to_string(), Primitive::DevSecret),
        ];
        assert!(model.accuracy(&held_out) >= 0.5);
        assert_eq!(model.accuracy(&[]), 0.0);
    }

    #[test]
    fn empty_training_is_safe() {
        let model = Classifier::train(
            &[],
            &TrainConfig {
                epochs: 1,
                ..Default::default()
            },
        );
        let (label, probs) = model.predict("whatever");
        assert_eq!(probs.len(), 7);
        // Untrained model predicts *something* deterministic.
        let _ = label;
        // With all-zero weights nothing is live and the pre-filter
        // bound is exactly zero — it must not certify a skip.
        let batch = model.predict_batch(&["whatever"], true);
        assert_eq!(batch.labels, vec![label]);
        assert_eq!(batch.prefilter_skips, 0);
    }

    #[test]
    fn argmax_is_first_max_wins_total_order() {
        // Exact ties go to the earliest class.
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[2.0, 2.0, 2.0]), 0);
        // Total order distinguishes the zeros: +0.0 > -0.0.
        assert_eq!(argmax(&[-0.0, 0.0]), 1);
        assert_eq!(argmax(&[0.0, -0.0]), 0);
        // A NaN score always wins (positive NaN is greatest under
        // total_cmp) — a fixed rule, not a position artifact like the
        // old partial_cmp fallback.
        assert_eq!(argmax(&[f32::NAN, 1.0]), 0);
        assert_eq!(argmax(&[1.0, f32::NAN]), 1);
        assert_eq!(argmax(&[]), 0);
    }

    #[test]
    fn batch_labels_match_per_slice_predict() {
        let model = toy_model(10);
        let texts = [
            "CALL (Fun, get_mac_addr) mac addr 99",
            "(Cons, \"password\") login credential",
            "(Cons, \"uptime=77\") counter misc",
            "completely unrelated words here",
            "",
            "CALL (Fun, get_mac_addr) mac addr 99", // duplicate
        ];
        for prefilter in [false, true] {
            let batch = model.predict_batch(&texts, prefilter);
            assert_eq!(batch.labels.len(), texts.len());
            for (text, got) in texts.iter().zip(&batch.labels) {
                assert_eq!(*got, model.predict(text).0, "on {text:?}");
            }
            if !prefilter {
                assert_eq!(batch.prefilter_skips, 0);
            }
        }
    }

    #[test]
    fn prefilter_never_skips_a_non_none_slice() {
        let model = toy_model(30);
        let mut fz = Featurizer::default();
        let mut skipped_some = false;
        for (text, _) in &toy_dataset() {
            let fv = fz.features(text);
            if model.prefilter_certifies_none(&fv) {
                skipped_some = true;
                assert_eq!(
                    model.predict(text).0,
                    Primitive::None,
                    "pre-filter skipped a non-None slice: {text:?}"
                );
            }
        }
        // The None training slices are far from every other class on
        // this separable set, so the filter should actually fire.
        assert!(skipped_some, "pre-filter never fired on the toy set");
    }

    #[test]
    fn sparsification_skips_only_dead_columns() {
        let model = toy_model(5);
        let live = model.col_of.iter().filter(|c| **c != u32::MAX).count();
        assert!(live > 0, "trained model has live columns");
        assert!(
            live < FEATURE_DIM,
            "toy training touches a strict subset of the feature space"
        );
        assert_eq!(model.lw.len(), live * model.n_classes);
        assert_eq!(model.gap.len(), live);
        for (j, col) in model.col_of.iter().enumerate() {
            if *col == u32::MAX {
                for c in 0..model.n_classes {
                    assert_eq!(model.flat[c * ROW + j], 0.0, "dead column {j} is zero");
                }
            }
        }
    }

    /// One trained model shared across proptest cases (training per
    /// case would dominate the run).
    fn cached_model() -> &'static Classifier {
        static MODEL: std::sync::OnceLock<Classifier> = std::sync::OnceLock::new();
        MODEL.get_or_init(|| toy_model(10))
    }

    proptest::proptest! {
        #[test]
        fn batch_matches_predict_on_arbitrary_text(
            texts in proptest::collection::vec("[a-dA-D0-2_=%\", ]{0,40}", 0..8),
            prefilter in proptest::strategy::any::<bool>(),
        ) {
            let model = cached_model();
            let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
            let batch = model.predict_batch(&refs, prefilter);
            for (text, got) in refs.iter().zip(&batch.labels) {
                proptest::prop_assert_eq!(*got, model.predict(text).0, "on {:?}", text);
            }
        }

        #[test]
        fn batch_matches_predict_on_vocabulary_text(
            picks in proptest::collection::vec(0..18usize, 0..10),
        ) {
            const VOCAB: [&str; 18] = [
                "mac", "addr", "get_mac_addr", "password", "login", "username",
                "access_token", "session", "hmac_sign", "signature", "serial",
                "uptime", "counter", "misc", "cloud", "host", "server", "secret",
            ];
            let model = cached_model();
            let words: Vec<&str> = picks.iter().map(|i| VOCAB[*i]).collect();
            let text = words.join(" ");
            let batch = model.predict_batch(&[text.as_str()], true);
            proptest::prop_assert_eq!(batch.labels[0], model.predict(&text).0, "on {:?}", text);
        }
    }
}
