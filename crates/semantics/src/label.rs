//! Weak labeling of slices via per-primitive keyword dictionaries.
//!
//! The paper bootstraps its training set by "searching for
//! manually-defined keywords about field semantics in each line through
//! regular matching", with a dictionary per primitive (e.g.
//! Dev-Identifier's keywords include "MAC", "deviceId", "modelId"), then
//! corrects labels by hand in Doccano. This module is that keyword stage;
//! in the reproduction pipeline the corpus ground truth plays the role of
//! the manual correction.

use crate::{tokenize, Primitive};

/// A keyword match explaining a weak label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeywordHit {
    /// The primitive whose dictionary matched.
    pub primitive: Primitive,
    /// The matching keyword.
    pub keyword: &'static str,
}

/// Per-primitive keyword dictionaries, checked in priority order.
///
/// Order matters: more specific credentials win over generic identifiers
/// (e.g. `device_secret` must not fall into `Dev-Identifier` via
/// `device`).
const DICTIONARIES: &[(Primitive, &[&str])] = &[
    (
        Primitive::Signature,
        &[
            "signature",
            "sign",
            "hmac",
            "digest",
            "md5",
            "sha256",
            "tmpkey",
            "tempkey",
            "sig",
        ],
    ),
    (
        Primitive::DevSecret,
        &[
            "secret",
            "devicekey",
            "device_key",
            "devkey",
            "certificate",
            "cert",
            "privatekey",
            "private_key",
            "psk",
            "secretkey",
        ],
    ),
    (
        Primitive::UserCred,
        &[
            "password",
            "passwd",
            "username",
            "usercred",
            "user_cred",
            "login",
            "account",
            "cloudusername",
            "cloudpassword",
            "userid",
            "user_id",
            "verifycode",
            "verify_code",
        ],
    ),
    (
        Primitive::BindToken,
        &[
            "token",
            "accesstoken",
            "access_token",
            "bindtoken",
            "bind_token",
            "session",
            "sessionkey",
            "accesskey",
            "access_key",
        ],
    ),
    (
        Primitive::DevIdentifier,
        &[
            "mac",
            "macaddress",
            "mac_addr",
            "deviceid",
            "device_id",
            "devid",
            "serial",
            "serialno",
            "serialnumber",
            "serial_no",
            "sn",
            "uid",
            "uuid",
            "imei",
            "modelid",
            "model",
            "productid",
            "product_id",
            "hardwareversion",
            "firmwareversion",
            "fw_version",
        ],
    ),
    (
        Primitive::Address,
        &[
            "host", "hostname", "server", "addr", "address", "url", "domain", "endpoint", "ip",
            "port", "broker",
        ],
    ),
];

/// Weak-label a slice by keyword dictionaries; [`Primitive::None`] when no
/// dictionary matches.
pub fn weak_label(slice_text: &str) -> Primitive {
    weak_label_with_report(slice_text).map_or(Primitive::None, |h| h.primitive)
}

/// Weak-label with the matching keyword, for label auditing.
pub fn weak_label_with_report(slice_text: &str) -> Option<KeywordHit> {
    let tokens = tokenize(slice_text);
    for (primitive, keywords) in DICTIONARIES {
        for kw in *keywords {
            if tokens.iter().any(|t| t == kw) {
                return Some(KeywordHit {
                    primitive: *primitive,
                    keyword: kw,
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identifier_keywords() {
        assert_eq!(
            weak_label("CALL (Fun, get_mac_addr) mac=%s"),
            Primitive::DevIdentifier
        );
        assert_eq!(
            weak_label("(Cons, \"serialNumber\")"),
            Primitive::DevIdentifier
        );
        assert_eq!(weak_label("(Cons, \"uid=%s\")"), Primitive::DevIdentifier);
    }

    #[test]
    fn secret_beats_identifier() {
        // "device_key" contains "device"-ish identifier tokens, but the
        // secret dictionary is checked first.
        assert_eq!(weak_label("(Cons, \"device_key\")"), Primitive::DevSecret);
        assert_eq!(
            weak_label("nvram_get (Cons, \"cert\")"),
            Primitive::DevSecret
        );
    }

    #[test]
    fn credential_and_token_keywords() {
        assert_eq!(weak_label("(Cons, \"cloudpassword\")"), Primitive::UserCred);
        assert_eq!(
            weak_label("(Cons, \"access_token=%s\")"),
            Primitive::BindToken
        );
        assert_eq!(weak_label("accessToken"), Primitive::BindToken);
    }

    #[test]
    fn signature_keywords() {
        assert_eq!(weak_label("CALL (Fun, hmac_sign)"), Primitive::Signature);
        assert_eq!(weak_label("(Cons, \"sig=%s\")"), Primitive::Signature);
    }

    #[test]
    fn address_and_none() {
        assert_eq!(
            weak_label("(Cons, \"Host: www.linksyssmartwifi.com\")"),
            Primitive::Address
        );
        assert_eq!(weak_label("(Cons, \"uploadType=%s\")"), Primitive::None);
        assert_eq!(weak_label(""), Primitive::None);
    }

    #[test]
    fn report_names_keyword() {
        let hit = weak_label_with_report("token=%s").unwrap();
        assert_eq!(hit.primitive, Primitive::BindToken);
        assert_eq!(hit.keyword, "token");
        assert!(weak_label_with_report("plain text with nothing").is_none());
    }

    #[test]
    fn matching_is_token_exact_not_substring() {
        // "snapshot" must not match the identifier keyword "sn".
        assert_eq!(weak_label("(Cons, \"snapshot\")"), Primitive::None);
    }
}
