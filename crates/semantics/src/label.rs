//! Weak labeling of slices via per-primitive keyword dictionaries.
//!
//! The paper bootstraps its training set by "searching for
//! manually-defined keywords about field semantics in each line through
//! regular matching", with a dictionary per primitive (e.g.
//! Dev-Identifier's keywords include "MAC", "deviceId", "modelId"), then
//! corrects labels by hand in Doccano. This module is that keyword stage;
//! in the reproduction pipeline the corpus ground truth plays the role of
//! the manual correction.

use crate::fnv::FnvBuildHasher;
use crate::token::for_each_token;
use crate::{tokenize, Primitive};
use std::collections::HashMap;
use std::sync::OnceLock;

/// A keyword match explaining a weak label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeywordHit {
    /// The primitive whose dictionary matched.
    pub primitive: Primitive,
    /// The matching keyword.
    pub keyword: &'static str,
}

/// Per-primitive keyword dictionaries, checked in priority order.
///
/// Order matters: more specific credentials win over generic identifiers
/// (e.g. `device_secret` must not fall into `Dev-Identifier` via
/// `device`).
const DICTIONARIES: &[(Primitive, &[&str])] = &[
    (
        Primitive::Signature,
        &[
            "signature",
            "sign",
            "hmac",
            "digest",
            "md5",
            "sha256",
            "tmpkey",
            "tempkey",
            "sig",
        ],
    ),
    (
        Primitive::DevSecret,
        &[
            "secret",
            "devicekey",
            "device_key",
            "devkey",
            "certificate",
            "cert",
            "privatekey",
            "private_key",
            "psk",
            "secretkey",
        ],
    ),
    (
        Primitive::UserCred,
        &[
            "password",
            "passwd",
            "username",
            "usercred",
            "user_cred",
            "login",
            "account",
            "cloudusername",
            "cloudpassword",
            "userid",
            "user_id",
            "verifycode",
            "verify_code",
        ],
    ),
    (
        Primitive::BindToken,
        &[
            "token",
            "accesstoken",
            "access_token",
            "bindtoken",
            "bind_token",
            "session",
            "sessionkey",
            "accesskey",
            "access_key",
        ],
    ),
    (
        Primitive::DevIdentifier,
        &[
            "mac",
            "macaddress",
            "mac_addr",
            "deviceid",
            "device_id",
            "devid",
            "serial",
            "serialno",
            "serialnumber",
            "serial_no",
            "sn",
            "uid",
            "uuid",
            "imei",
            "modelid",
            "model",
            "productid",
            "product_id",
            "hardwareversion",
            "firmwareversion",
            "fw_version",
        ],
    ),
    (
        Primitive::Address,
        &[
            "host", "hostname", "server", "addr", "address", "url", "domain", "endpoint", "ip",
            "port", "broker",
        ],
    ),
];

/// Weak-label a slice by keyword dictionaries; [`Primitive::None`] when no
/// dictionary matches.
pub fn weak_label(slice_text: &str) -> Primitive {
    weak_label_with_report(slice_text).map_or(Primitive::None, |h| h.primitive)
}

/// Weak-label with the matching keyword, for label auditing.
///
/// This is the reference implementation — materialize the token list,
/// then scan the dictionaries in priority order. The optimized cold path
/// uses [`weak_label_streamed`], which returns the same hit in one pass.
pub fn weak_label_with_report(slice_text: &str) -> Option<KeywordHit> {
    let tokens = tokenize(slice_text);
    for (primitive, keywords) in DICTIONARIES {
        for kw in *keywords {
            if tokens.iter().any(|t| t == kw) {
                return Some(KeywordHit {
                    primitive: *primitive,
                    keyword: kw,
                });
            }
        }
    }
    None
}

/// The dictionaries flattened into priority ranks: `ranks[kw]` is the
/// position of `kw`'s first occurrence in the `(dictionary, keyword)`
/// scan order of [`weak_label_with_report`], and `flat[rank]` maps back
/// to the primitive and keyword. Built once, on first use.
struct KeywordIndex {
    ranks: HashMap<&'static str, u32, FnvBuildHasher>,
    flat: Vec<(Primitive, &'static str)>,
    /// Per-first-byte bitmask of keyword lengths (bit `min(len, 31)`):
    /// a token whose `(first byte, length)` pair clears its bit cannot
    /// be a keyword, so the map probe — hashing the token — is skipped.
    /// Nearly every token of a real slice (registers, hex ids, glue)
    /// rejects here in two loads.
    len_masks: [u32; 256],
}

impl KeywordIndex {
    fn could_match(&self, token: &str) -> bool {
        match token.as_bytes().first() {
            Some(&b) => self.len_masks[b as usize] & (1u32 << token.len().min(31)) != 0,
            None => false,
        }
    }
}

fn keyword_index() -> &'static KeywordIndex {
    static INDEX: OnceLock<KeywordIndex> = OnceLock::new();
    INDEX.get_or_init(|| {
        let mut ranks: HashMap<&'static str, u32, FnvBuildHasher> = HashMap::default();
        let mut flat = Vec::new();
        let mut len_masks = [0u32; 256];
        for (primitive, keywords) in DICTIONARIES {
            for kw in *keywords {
                // First occurrence wins, like the priority scan.
                ranks.entry(kw).or_insert(flat.len() as u32);
                flat.push((*primitive, *kw));
                len_masks[kw.as_bytes()[0] as usize] |= 1u32 << kw.len().min(31);
            }
        }
        KeywordIndex {
            ranks,
            flat,
            len_masks,
        }
    })
}

/// Single-pass [`weak_label_with_report`]: stream the tokens, look each
/// up in the prebuilt keyword index, and keep the best (lowest) priority
/// rank seen.
///
/// The reference scan returns the first `(dictionary, keyword)` pair —
/// in priority order — matched by *any* token; that is exactly the
/// minimum rank over the matching tokens, so the two implementations
/// agree on every input (the property test below checks it). The cost
/// drops from `O(tokens × keywords)` string comparisons plus a
/// `Vec<String>` per slice to one hash lookup per token.
pub fn weak_label_streamed(slice_text: &str) -> Option<KeywordHit> {
    let index = keyword_index();
    let mut best = u32::MAX;
    for_each_token(slice_text, |t| {
        if index.could_match(t) {
            if let Some(&rank) = index.ranks.get(t) {
                best = best.min(rank);
            }
        }
    });
    index
        .flat
        .get(best as usize)
        .map(|&(primitive, keyword)| KeywordHit { primitive, keyword })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identifier_keywords() {
        assert_eq!(
            weak_label("CALL (Fun, get_mac_addr) mac=%s"),
            Primitive::DevIdentifier
        );
        assert_eq!(
            weak_label("(Cons, \"serialNumber\")"),
            Primitive::DevIdentifier
        );
        assert_eq!(weak_label("(Cons, \"uid=%s\")"), Primitive::DevIdentifier);
    }

    #[test]
    fn secret_beats_identifier() {
        // "device_key" contains "device"-ish identifier tokens, but the
        // secret dictionary is checked first.
        assert_eq!(weak_label("(Cons, \"device_key\")"), Primitive::DevSecret);
        assert_eq!(
            weak_label("nvram_get (Cons, \"cert\")"),
            Primitive::DevSecret
        );
    }

    #[test]
    fn credential_and_token_keywords() {
        assert_eq!(weak_label("(Cons, \"cloudpassword\")"), Primitive::UserCred);
        assert_eq!(
            weak_label("(Cons, \"access_token=%s\")"),
            Primitive::BindToken
        );
        assert_eq!(weak_label("accessToken"), Primitive::BindToken);
    }

    #[test]
    fn signature_keywords() {
        assert_eq!(weak_label("CALL (Fun, hmac_sign)"), Primitive::Signature);
        assert_eq!(weak_label("(Cons, \"sig=%s\")"), Primitive::Signature);
    }

    #[test]
    fn address_and_none() {
        assert_eq!(
            weak_label("(Cons, \"Host: www.linksyssmartwifi.com\")"),
            Primitive::Address
        );
        assert_eq!(weak_label("(Cons, \"uploadType=%s\")"), Primitive::None);
        assert_eq!(weak_label(""), Primitive::None);
    }

    #[test]
    fn report_names_keyword() {
        let hit = weak_label_with_report("token=%s").unwrap();
        assert_eq!(hit.primitive, Primitive::BindToken);
        assert_eq!(hit.keyword, "token");
        assert!(weak_label_with_report("plain text with nothing").is_none());
    }

    #[test]
    fn matching_is_token_exact_not_substring() {
        // "snapshot" must not match the identifier keyword "sn".
        assert_eq!(weak_label("(Cons, \"snapshot\")"), Primitive::None);
    }

    #[test]
    fn streamed_matches_reference_on_priority_conflicts() {
        // Texts where several dictionaries match and only the priority
        // order decides — the streamed minimum-rank lookup must pick the
        // same winner as the reference scan.
        for text in [
            "mac token password sig secret",
            "host mac",
            "device_key deviceid",
            "accessToken serialNumber hmac",
            "uploadType=%s",
            "",
        ] {
            assert_eq!(
                weak_label_streamed(text),
                weak_label_with_report(text),
                "on {text:?}"
            );
        }
    }

    proptest::proptest! {
        #[test]
        fn streamed_always_matches_reference(
            // Indices into a pool of dictionary words, near-miss words
            // and glue tokens.
            picks in proptest::collection::vec(0usize..15, 0..8),
        ) {
            const POOL: [&str; 15] = [
                "mac", "token", "password", "sig", "secret", "host",
                "device_key", "deviceId", "serialNumber", "snapshot",
                "uploadType", "buf", "v_12", "%s", "CALL",
            ];
            let words: Vec<&str> = picks.iter().map(|&i| POOL[i]).collect();
            let text = words.join(" ");
            proptest::prop_assert_eq!(
                weak_label_streamed(&text),
                weak_label_with_report(&text)
            );
        }
    }
}
