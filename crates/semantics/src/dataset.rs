//! Dataset splitting (the paper's 7:2:1 train/validation/test protocol).

use crate::Primitive;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A train/validation/test split.
#[derive(Debug, Clone)]
pub struct DatasetSplit {
    /// Training examples (~70%).
    pub train: Vec<(String, Primitive)>,
    /// Validation examples (~20%).
    pub validation: Vec<(String, Primitive)>,
    /// Test examples (~10%).
    pub test: Vec<(String, Primitive)>,
}

/// Shuffle and split `data` 7:2:1, deterministically for a given `seed`.
///
/// Rounding puts remainders in the training set; every input example
/// appears in exactly one split.
pub fn split_dataset(data: &[(String, Primitive)], seed: u64) -> DatasetSplit {
    let mut shuffled: Vec<(String, Primitive)> = data.to_vec();
    let mut rng = StdRng::seed_from_u64(seed);
    shuffled.shuffle(&mut rng);
    let n = shuffled.len();
    let n_val = n * 2 / 10;
    let n_test = n / 10;
    let n_train = n - n_val - n_test;
    let mut iter = shuffled.into_iter();
    let train: Vec<_> = iter.by_ref().take(n_train).collect();
    let validation: Vec<_> = iter.by_ref().take(n_val).collect();
    let test: Vec<_> = iter.collect();
    DatasetSplit {
        train,
        validation,
        test,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> Vec<(String, Primitive)> {
        (0..n)
            .map(|i| (format!("slice {i}"), Primitive::None))
            .collect()
    }

    #[test]
    fn ratios_are_7_2_1() {
        let split = split_dataset(&data(100), 1);
        assert_eq!(split.train.len(), 70);
        assert_eq!(split.validation.len(), 20);
        assert_eq!(split.test.len(), 10);
    }

    #[test]
    fn partition_is_complete_and_disjoint() {
        let split = split_dataset(&data(57), 2);
        let total = split.train.len() + split.validation.len() + split.test.len();
        assert_eq!(total, 57);
        let mut all: Vec<&str> = split
            .train
            .iter()
            .chain(&split.validation)
            .chain(&split.test)
            .map(|(s, _)| s.as_str())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 57, "no duplicates across splits");
    }

    #[test]
    fn deterministic_per_seed_and_different_across_seeds() {
        let d = data(50);
        let a = split_dataset(&d, 7);
        let b = split_dataset(&d, 7);
        assert_eq!(a.train, b.train);
        let c = split_dataset(&d, 8);
        assert_ne!(a.train, c.train, "different seed shuffles differently");
    }

    #[test]
    fn small_inputs() {
        let split = split_dataset(&data(3), 0);
        assert_eq!(
            split.train.len() + split.validation.len() + split.test.len(),
            3
        );
        let empty = split_dataset(&[], 0);
        assert!(empty.train.is_empty() && empty.validation.is_empty() && empty.test.is_empty());
    }
}
