//! Tokenization and hashed n-gram featurization of enriched code slices.

/// Dimensionality of the hashed feature space.
pub const FEATURE_DIM: usize = 1 << 13; // 8192

/// Split an enriched slice into lowercase tokens.
///
/// Identifier-ish runs (`get_mac_addr`, `serialNumber`) are kept whole
/// *and* additionally split on `_` and camelCase boundaries, so both the
/// full name and its words become features — important because vendor
/// key names compound freely (`cloudusername`, `deviceToken`).
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    for run in text.split(|c: char| !c.is_ascii_alphanumeric() && c != '_') {
        if run.is_empty() {
            continue;
        }
        let lower = run.to_ascii_lowercase();
        tokens.push(lower.clone());
        // Split compound identifiers.
        let mut parts: Vec<String> = Vec::new();
        for chunk in run.split('_') {
            let mut word = String::new();
            let mut prev_lower = false;
            for ch in chunk.chars() {
                if ch.is_ascii_uppercase() && prev_lower {
                    if !word.is_empty() {
                        parts.push(word.to_ascii_lowercase());
                    }
                    word = String::new();
                }
                prev_lower = ch.is_ascii_lowercase() || ch.is_ascii_digit();
                word.push(ch);
            }
            if !word.is_empty() {
                parts.push(word.to_ascii_lowercase());
            }
        }
        if parts.len() > 1 || (parts.len() == 1 && parts[0] != lower) {
            tokens.extend(parts);
        }
    }
    tokens
}

fn hash_feature(parts: &[&str]) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for p in parts {
        for b in p.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0x1f;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h as usize) % FEATURE_DIM
}

/// Hash tokens into a sparse feature vector of `(index, weight)` pairs.
///
/// Features: unigrams plus windowed n-grams of widths 2–5 — the linear
/// analogue of TextCNN's convolution kernels of sizes (2,3,4,5) (paper
/// §IV-C). Duplicate indices are merged; the vector is L2-normalized so
/// slice length does not dominate.
pub fn featurize(tokens: &[String]) -> Vec<(usize, f32)> {
    use std::collections::BTreeMap;
    let mut counts: BTreeMap<usize, f32> = BTreeMap::new();
    for t in tokens {
        *counts.entry(hash_feature(&[t])).or_default() += 1.0;
    }
    for width in 2..=5usize {
        if tokens.len() < width {
            break;
        }
        for w in tokens.windows(width) {
            let parts: Vec<&str> = w.iter().map(String::as_str).collect();
            *counts.entry(hash_feature(&parts)).or_default() += 0.5;
        }
    }
    let norm: f32 = counts.values().map(|v| v * v).sum::<f32>().sqrt();
    if norm > 0.0 {
        for v in counts.values_mut() {
            *v /= norm;
        }
    }
    counts.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_enriched_slices() {
        let toks = tokenize("CALL (Fun, get_mac_addr), (Local, buf, v_1357)");
        assert!(toks.contains(&"call".to_string()));
        assert!(toks.contains(&"get_mac_addr".to_string()));
        assert!(
            toks.contains(&"mac".to_string()),
            "compound split: {toks:?}"
        );
        assert!(toks.contains(&"buf".to_string()));
    }

    #[test]
    fn camel_case_is_split() {
        let toks = tokenize("serialNumber deviceToken");
        assert!(toks.contains(&"serialnumber".to_string()));
        assert!(toks.contains(&"serial".to_string()));
        assert!(toks.contains(&"number".to_string()));
        assert!(toks.contains(&"token".to_string()));
    }

    #[test]
    fn featurize_is_normalized_and_deterministic() {
        let toks = tokenize("CALL (Fun, nvram_get), (Cons, \"password\")");
        let f1 = featurize(&toks);
        let f2 = featurize(&toks);
        assert_eq!(f1, f2);
        let norm: f32 = f1.iter().map(|(_, v)| v * v).sum::<f32>();
        assert!((norm - 1.0).abs() < 1e-4, "unit norm, got {norm}");
        assert!(f1.iter().all(|(i, _)| *i < FEATURE_DIM));
    }

    #[test]
    fn different_texts_differ() {
        let a = featurize(&tokenize("mac=%s"));
        let b = featurize(&tokenize("password=%s"));
        assert_ne!(a, b);
    }

    #[test]
    fn empty_text() {
        assert!(tokenize("").is_empty());
        assert!(featurize(&[]).is_empty());
    }

    #[test]
    fn ngram_windows_add_features() {
        let short = featurize(&tokenize("a"));
        let long = featurize(&tokenize("a b c d e f"));
        assert!(long.len() > short.len());
    }
}
