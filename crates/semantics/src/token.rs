//! Tokenization and hashed n-gram featurization of enriched code slices.

/// Dimensionality of the hashed feature space.
pub const FEATURE_DIM: usize = 1 << 13; // 8192

/// Split an enriched slice into lowercase tokens.
///
/// Identifier-ish runs (`get_mac_addr`, `serialNumber`) are kept whole
/// *and* additionally split on `_` and camelCase boundaries, so both the
/// full name and its words become features — important because vendor
/// key names compound freely (`cloudusername`, `deviceToken`).
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    for_each_token(text, |t| tokens.push(t.to_string()));
    tokens
}

/// Visit every token of `text` in [`tokenize`] order without
/// materializing a `Vec<String>`.
///
/// `tokenize` is implemented on top of this, so the token streams are
/// equivalent by construction; callers that only need to *look at* each
/// token (the keyword labeler, the featurizer) skip the per-token
/// allocations entirely. The `&str` passed to `f` borrows a scratch
/// buffer and is only valid for the duration of the call.
pub fn for_each_token(text: &str, mut f: impl FnMut(&str)) {
    // Runs are pure ASCII (the split keeps only `[A-Za-z0-9_]`), so
    // byte-indexed slicing and per-char lowercasing are safe below.
    let mut lower = String::new();
    // Compound parts of one run, concatenated; `bounds` delimits them.
    let mut parts = String::new();
    let mut bounds: Vec<(usize, usize)> = Vec::new();
    for run in text.split(|c: char| !c.is_ascii_alphanumeric() && c != '_') {
        if run.is_empty() {
            continue;
        }
        lower.clear();
        lower.push_str(run);
        lower.make_ascii_lowercase();
        f(&lower);
        // A run with no `_` and no lower→upper boundary splits into
        // exactly one part equal to `lower`, which the condition below
        // would discard — skip building the parts at all. One cheap
        // byte scan decides; most runs (plain words, hex ids, numbers)
        // take this path.
        let mut compound = false;
        let mut prev_lower = false;
        for &b in run.as_bytes() {
            compound |= b == b'_' || (b.is_ascii_uppercase() && prev_lower);
            prev_lower = b.is_ascii_lowercase() || b.is_ascii_digit();
        }
        if !compound {
            continue;
        }
        // Split compound identifiers on `_` and camelCase boundaries.
        parts.clear();
        bounds.clear();
        for chunk in run.split('_') {
            let mut start = parts.len();
            let mut prev_lower = false;
            for ch in chunk.chars() {
                if ch.is_ascii_uppercase() && prev_lower {
                    if parts.len() > start {
                        bounds.push((start, parts.len()));
                    }
                    start = parts.len();
                }
                prev_lower = ch.is_ascii_lowercase() || ch.is_ascii_digit();
                parts.push(ch.to_ascii_lowercase());
            }
            if parts.len() > start {
                bounds.push((start, parts.len()));
            }
        }
        if bounds.len() > 1 || (bounds.len() == 1 && parts[bounds[0].0..bounds[0].1] != *lower) {
            for &(s, e) in &bounds {
                f(&parts[s..e]);
            }
        }
    }
}

fn hash_feature(parts: &[&str]) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for p in parts {
        for b in p.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0x1f;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h as usize) % FEATURE_DIM
}

/// Hash tokens into a sparse feature vector of `(index, weight)` pairs.
///
/// Features: unigrams plus windowed n-grams of widths 2–5 — the linear
/// analogue of TextCNN's convolution kernels of sizes (2,3,4,5) (paper
/// §IV-C). Duplicate indices are merged; the vector is L2-normalized so
/// slice length does not dominate.
pub fn featurize(tokens: &[String]) -> Vec<(usize, f32)> {
    use std::collections::BTreeMap;
    let mut counts: BTreeMap<usize, f32> = BTreeMap::new();
    for t in tokens {
        *counts.entry(hash_feature(&[t])).or_default() += 1.0;
    }
    for width in 2..=5usize {
        if tokens.len() < width {
            break;
        }
        for w in tokens.windows(width) {
            let parts: Vec<&str> = w.iter().map(String::as_str).collect();
            *counts.entry(hash_feature(&parts)).or_default() += 0.5;
        }
    }
    let norm: f32 = counts.values().map(|v| v * v).sum::<f32>().sqrt();
    if norm > 0.0 {
        for v in counts.values_mut() {
            *v /= norm;
        }
    }
    counts.into_iter().collect()
}

/// Reusable-buffer featurizer: the same output as
/// [`featurize`]`(&`[`tokenize`]`(text))` without allocating a
/// `Vec<String>` per slice.
///
/// Tokens are streamed into a flat character arena delimited by byte
/// ranges, and counts accumulate into a dense [`FEATURE_DIM`]-wide bin
/// array (32 KiB — cache-resident) instead of an ordered map: each bin
/// is touched at most a handful of times, so a first-touch index list
/// plus one sort replaces ~5 map probes per token. Every buffer is
/// reused across calls. Bit-identity with [`featurize`] holds exactly:
/// per-index counts accumulate in the same encounter order, the norm
/// sums squares in ascending index order (the sorted touch list stands
/// in for the map's key order), and the output is emitted ascending —
/// the identical sequence of float operations, so the output is
/// bit-equal, not merely close.
#[derive(Debug, Default)]
pub(crate) struct Featurizer {
    arena: String,
    bounds: Vec<(usize, usize)>,
    /// Dense accumulation bins. Empty until first use, then exactly
    /// [`FEATURE_DIM`] long and zeroed between calls via `touched`.
    bins: Vec<f32>,
    /// Indices whose bin is nonzero, in first-touch order.
    touched: Vec<u32>,
}

impl Featurizer {
    /// Featurize `text`. Equal to `featurize(&tokenize(text))`.
    pub(crate) fn features(&mut self, text: &str) -> Vec<(usize, f32)> {
        self.arena.clear();
        self.bounds.clear();
        let (arena, bounds) = (&mut self.arena, &mut self.bounds);
        for_each_token(text, |t| {
            let start = arena.len();
            arena.push_str(t);
            bounds.push((start, arena.len()));
        });
        if self.bins.is_empty() {
            self.bins = vec![0.0; FEATURE_DIM];
        }
        self.touched.clear();
        let token = |i: usize| &self.arena[self.bounds[i].0..self.bounds[i].1];
        // Counts are sums of +1.0/+0.5, so a zero bin means untouched.
        let mut add = |idx: usize, w: f32| {
            if self.bins[idx] == 0.0 {
                self.touched.push(idx as u32);
            }
            self.bins[idx] += w;
        };
        for i in 0..self.bounds.len() {
            add(hash_feature(&[token(i)]), 1.0);
        }
        for width in 2..=5usize {
            if self.bounds.len() < width {
                break;
            }
            let mut window = [""; 5];
            for start in 0..=self.bounds.len() - width {
                for (k, slot) in window[..width].iter_mut().enumerate() {
                    *slot = token(start + k);
                }
                add(hash_feature(&window[..width]), 0.5);
            }
        }
        self.touched.sort_unstable();
        let norm: f32 = self
            .touched
            .iter()
            .map(|&i| {
                let v = self.bins[i as usize];
                v * v
            })
            .sum::<f32>()
            .sqrt();
        let out = self
            .touched
            .iter()
            .map(|&i| {
                let v = self.bins[i as usize];
                (i as usize, if norm > 0.0 { v / norm } else { v })
            })
            .collect();
        for &i in &self.touched {
            self.bins[i as usize] = 0.0;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_enriched_slices() {
        let toks = tokenize("CALL (Fun, get_mac_addr), (Local, buf, v_1357)");
        assert!(toks.contains(&"call".to_string()));
        assert!(toks.contains(&"get_mac_addr".to_string()));
        assert!(
            toks.contains(&"mac".to_string()),
            "compound split: {toks:?}"
        );
        assert!(toks.contains(&"buf".to_string()));
    }

    #[test]
    fn camel_case_is_split() {
        let toks = tokenize("serialNumber deviceToken");
        assert!(toks.contains(&"serialnumber".to_string()));
        assert!(toks.contains(&"serial".to_string()));
        assert!(toks.contains(&"number".to_string()));
        assert!(toks.contains(&"token".to_string()));
    }

    #[test]
    fn featurize_is_normalized_and_deterministic() {
        let toks = tokenize("CALL (Fun, nvram_get), (Cons, \"password\")");
        let f1 = featurize(&toks);
        let f2 = featurize(&toks);
        assert_eq!(f1, f2);
        let norm: f32 = f1.iter().map(|(_, v)| v * v).sum::<f32>();
        assert!((norm - 1.0).abs() < 1e-4, "unit norm, got {norm}");
        assert!(f1.iter().all(|(i, _)| *i < FEATURE_DIM));
    }

    #[test]
    fn different_texts_differ() {
        let a = featurize(&tokenize("mac=%s"));
        let b = featurize(&tokenize("password=%s"));
        assert_ne!(a, b);
    }

    #[test]
    fn empty_text() {
        assert!(tokenize("").is_empty());
        assert!(featurize(&[]).is_empty());
    }

    #[test]
    fn ngram_windows_add_features() {
        let short = featurize(&tokenize("a"));
        let long = featurize(&tokenize("a b c d e f"));
        assert!(long.len() > short.len());
    }

    /// The pre-optimization tokenizer, kept verbatim as the oracle the
    /// streaming implementation is compared against.
    fn tokenize_reference(text: &str) -> Vec<String> {
        let mut tokens = Vec::new();
        for run in text.split(|c: char| !c.is_ascii_alphanumeric() && c != '_') {
            if run.is_empty() {
                continue;
            }
            let lower = run.to_ascii_lowercase();
            tokens.push(lower.clone());
            let mut parts: Vec<String> = Vec::new();
            for chunk in run.split('_') {
                let mut word = String::new();
                let mut prev_lower = false;
                for ch in chunk.chars() {
                    if ch.is_ascii_uppercase() && prev_lower {
                        if !word.is_empty() {
                            parts.push(word.to_ascii_lowercase());
                        }
                        word = String::new();
                    }
                    prev_lower = ch.is_ascii_lowercase() || ch.is_ascii_digit();
                    word.push(ch);
                }
                if !word.is_empty() {
                    parts.push(word.to_ascii_lowercase());
                }
            }
            if parts.len() > 1 || (parts.len() == 1 && parts[0] != lower) {
                tokens.extend(parts);
            }
        }
        tokens
    }

    #[test]
    fn streaming_matches_reference_on_tricky_shapes() {
        for text in [
            "",
            "CALL (Fun, get_mac_addr), (Local, buf, v_1357)",
            "serialNumber deviceToken XMLHttpRequest __init__ _a_ A",
            "snake_case_name camelCase MixedUP mac=%s {\"mac\":\"%s\"}",
            "___ ABC abc123DEF x9Y 日本語 ü a_B_c",
        ] {
            assert_eq!(tokenize(text), tokenize_reference(text), "on {text:?}");
        }
    }

    #[test]
    fn featurizer_buffer_reuse_is_bit_identical() {
        let mut f = Featurizer::default();
        for text in [
            "CALL (Fun, nvram_get), (Cons, \"password\")",
            "a b c d e f",
            "",
            "serialNumber=%s&deviceToken=%s",
        ] {
            assert_eq!(f.features(text), featurize(&tokenize(text)), "on {text:?}");
        }
    }

    proptest::proptest! {
        #[test]
        fn streaming_tokenizer_matches_reference(
            text in "[a-dA-D0-2_=%\", ]{0,60}",
        ) {
            proptest::prop_assert_eq!(tokenize(&text), tokenize_reference(&text));
        }

        #[test]
        fn featurizer_matches_allocating_path(
            text in "[a-dA-D0-2_=%\", ]{0,60}",
        ) {
            let mut f = Featurizer::default();
            proptest::prop_assert_eq!(f.features(&text), featurize(&tokenize(&text)));
        }
    }
}
