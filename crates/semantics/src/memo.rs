//! Memoized slice classification for the optimized cold path.
//!
//! Duplicate slice texts are common enough across an image's messages
//! (shared delivery wrappers render identical paths) that classifying
//! each distinct text once and replaying the answer is free accuracy-
//! preserving work. Beyond the memo, the miss path avoids the per-slice
//! allocations of the reference path: the weak labeler streams tokens
//! through a prebuilt keyword index and the model path featurizes into
//! a reusable buffer.

use crate::fnv::FnvBuildHasher;
use crate::label::{weak_label_streamed, KeywordHit};
use crate::token::Featurizer;
use crate::{Classifier, Primitive};
use std::collections::HashMap;
use std::sync::Mutex;

/// A memoizing classification front end over one image's slices.
///
/// Predictions are memoized by slice text (hashed with FNV-1a, resolved
/// by full-text equality, so distinct texts can never conflate). The
/// result for any text is exactly what the reference path produces —
/// `classifier.predict(text).0` with a model, `weak_label(text)` without
/// — the memo and the buffer reuse change only the cost.
///
/// The type is `Sync`: the memo and the featurizer scratch live behind
/// mutexes, taken briefly around lookup/insert and featurization. Racing
/// workers may classify the same text twice; both compute the identical
/// deterministic value, so either insert is correct.
pub struct SliceClassifier<'a> {
    classifier: Option<&'a Classifier>,
    memo: Mutex<HashMap<String, Primitive, FnvBuildHasher>>,
    scratch: Mutex<Featurizer>,
}

impl<'a> SliceClassifier<'a> {
    /// A fresh (empty-memo) front end; `classifier` as in
    /// [`crate::weak_label`] fallback semantics — `None` weak-labels.
    pub fn new(classifier: Option<&'a Classifier>) -> Self {
        SliceClassifier {
            classifier,
            memo: Mutex::new(HashMap::default()),
            scratch: Mutex::new(Featurizer::default()),
        }
    }

    /// Classify `text`, consulting and filling the memo.
    pub fn classify(&self, text: &str) -> Primitive {
        if let Some(&label) = self.memo.lock().expect("memo lock").get(text) {
            return label;
        }
        let label = match self.classifier {
            Some(model) => {
                let fv = self.scratch.lock().expect("scratch lock").features(text);
                model.predict_features(&fv)
            }
            None => weak_label_streamed(text).map_or(Primitive::None, |h: KeywordHit| h.primitive),
        };
        self.memo
            .lock()
            .expect("memo lock")
            .insert(text.to_string(), label);
        label
    }

    /// Number of distinct slice texts classified so far.
    pub fn distinct(&self) -> usize {
        self.memo.lock().expect("memo lock").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{weak_label, TrainConfig};

    #[test]
    fn memoized_weak_labeling_matches_reference() {
        let sc = SliceClassifier::new(None);
        for text in [
            "CALL (Fun, get_mac_addr) mac=%s",
            "(Cons, \"device_key\")",
            "(Cons, \"uploadType=%s\")",
            "CALL (Fun, get_mac_addr) mac=%s", // repeat: memo hit
            "",
        ] {
            assert_eq!(sc.classify(text), weak_label(text), "on {text:?}");
        }
        assert_eq!(sc.distinct(), 4);
    }

    #[test]
    fn memoized_model_path_matches_predict() {
        let data: Vec<(String, Primitive)> = (0..10)
            .flat_map(|i| {
                vec![
                    (format!("mac addr device {i}"), Primitive::DevIdentifier),
                    (format!("password login {i}"), Primitive::UserCred),
                ]
            })
            .collect();
        let model = Classifier::train(
            &data,
            &TrainConfig {
                epochs: 10,
                ..TrainConfig::default()
            },
        );
        let sc = SliceClassifier::new(Some(&model));
        for text in ["mac addr device 42", "password login 9", "nothing at all"] {
            assert_eq!(sc.classify(text), model.predict(text).0, "on {text:?}");
            // Second query exercises the memo-hit path.
            assert_eq!(sc.classify(text), model.predict(text).0, "on {text:?}");
        }
    }
}
