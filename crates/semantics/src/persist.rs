//! Classifier persistence: train once, ship the model with the tool.
//!
//! The wire format is a small checksummed container (`FSM1`): feature
//! dimensionality, class count, then dense `f32` weight rows.

use crate::model::TrainReport;
use crate::token::FEATURE_DIM;
use crate::{Classifier, Primitive};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

const MAGIC: &[u8; 4] = b"FSM1";

/// Errors from loading a serialized model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// Wrong magic bytes.
    BadMagic,
    /// The stored dimensions do not match this build's feature space.
    DimensionMismatch {
        /// Stored feature dimension.
        features: usize,
        /// Stored class count.
        classes: usize,
    },
    /// The payload ended early or the checksum failed.
    Corrupt,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::BadMagic => write!(f, "not a serialized semantics model"),
            ModelError::DimensionMismatch { features, classes } => write!(
                f,
                "model built for {features} features / {classes} classes; this build expects {} / {}",
                FEATURE_DIM,
                Primitive::ALL.len()
            ),
            ModelError::Corrupt => write!(f, "corrupt model payload"),
        }
    }
}

impl std::error::Error for ModelError {}

fn fnv32(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

impl Classifier {
    /// Serialize the trained model.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le((FEATURE_DIM + 1) as u32);
        buf.put_u32_le(self.n_classes() as u32);
        // The canonical matrix is row-major, so dumping it in order
        // reproduces the historical per-row byte layout exactly.
        for w in self.flat() {
            buf.put_f32_le(*w);
        }
        let report = self.report();
        buf.put_u32_le(report.epochs as u32);
        buf.put_f64_le(report.train_accuracy);
        buf.put_f64_le(report.final_loss);
        let csum = fnv32(&buf);
        buf.put_u32_le(csum);
        buf.freeze()
    }

    /// Load a model serialized by [`Classifier::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`ModelError`] on bad magic, dimension mismatch (the feature space
    /// is a compile-time constant), truncation or checksum failure.
    pub fn from_bytes(image: &[u8]) -> Result<Classifier, ModelError> {
        if image.len() < 16 {
            return Err(ModelError::Corrupt);
        }
        if &image[..4] != MAGIC {
            return Err(ModelError::BadMagic);
        }
        let (payload, csum) = image.split_at(image.len() - 4);
        let stored = u32::from_le_bytes(csum.try_into().expect("4 bytes"));
        if stored != fnv32(payload) {
            return Err(ModelError::Corrupt);
        }
        let mut buf = Bytes::copy_from_slice(&payload[4..]);
        let row_len = buf.get_u32_le() as usize;
        let n_classes = buf.get_u32_le() as usize;
        if row_len != FEATURE_DIM + 1 || n_classes != Primitive::ALL.len() {
            return Err(ModelError::DimensionMismatch {
                features: row_len.saturating_sub(1),
                classes: n_classes,
            });
        }
        if buf.remaining() < row_len * n_classes * 4 + 4 + 16 {
            return Err(ModelError::Corrupt);
        }
        let mut flat = Vec::with_capacity(n_classes * row_len);
        for _ in 0..n_classes * row_len {
            flat.push(buf.get_f32_le());
        }
        let report = TrainReport {
            epochs: buf.get_u32_le() as usize,
            train_accuracy: buf.get_f64_le(),
            final_loss: buf.get_f64_le(),
        };
        Ok(Classifier::from_parts(flat, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TrainConfig;

    fn trained() -> Classifier {
        let data = vec![
            (
                "mac address get_mac_addr".to_string(),
                Primitive::DevIdentifier,
            ),
            ("password cloud login".to_string(), Primitive::UserCred),
            ("access token session".to_string(), Primitive::BindToken),
            ("ts uptime counter".to_string(), Primitive::None),
        ];
        Classifier::train(
            &data,
            &TrainConfig {
                epochs: 20,
                ..Default::default()
            },
        )
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let model = trained();
        let bytes = model.to_bytes();
        let back = Classifier::from_bytes(&bytes).unwrap();
        for text in [
            "mac address",
            "password",
            "token",
            "uptime",
            "unrelated words",
        ] {
            assert_eq!(model.predict(text).0, back.predict(text).0, "{text}");
            let (a, b) = (model.probabilities(text), back.probabilities(text));
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-6);
            }
        }
        assert_eq!(back.report(), model.report());
    }

    #[test]
    fn corruption_is_detected() {
        let bytes = trained().to_bytes();
        let mut bad = bytes.to_vec();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x55;
        assert!(matches!(
            Classifier::from_bytes(&bad),
            Err(ModelError::Corrupt)
        ));
    }

    #[test]
    fn bad_magic_and_truncation() {
        let bytes = trained().to_bytes();
        let mut nomagic = bytes.to_vec();
        nomagic[0] = b'X';
        assert!(matches!(
            Classifier::from_bytes(&nomagic),
            Err(ModelError::BadMagic)
        ));
        assert!(Classifier::from_bytes(&bytes[..8]).is_err());
        assert!(Classifier::from_bytes(&[]).is_err());
    }

    #[test]
    fn error_display() {
        let e = ModelError::DimensionMismatch {
            features: 10,
            classes: 3,
        };
        assert!(e.to_string().contains("10"));
        assert!(ModelError::BadMagic.to_string().contains("model"));
    }
}
