//! Instruction-level semantics of the MR32 emulator: every ALU op,
//! memory widths, shifts, and the remaining builtins.

use firmres_isa::{Assembler, EmuError, Emulator, Mem};

fn null_host() -> impl FnMut(&str, [u32; 6], &mut Mem) -> u32 {
    |_, _, _| 0
}

/// Assemble a `main` body and return `rv` after running it.
fn run(body: &str) -> u32 {
    let src = format!(".func main\n{body}\n halt\n.endfunc\n");
    let exe = Assembler::new().assemble(&src).unwrap();
    let mut emu = Emulator::new(&exe, null_host());
    emu.run().unwrap();
    emu.reg(firmres_isa::Reg::RV)
}

#[test]
fn alu_three_register_ops() {
    assert_eq!(run(" li t0, 21\n li t1, 2\n mul rv, t0, t1"), 42);
    assert_eq!(run(" li t0, 45\n li t1, 3\n sub rv, t0, t1"), 42);
    assert_eq!(run(" li t0, 84\n li t1, 2\n div rv, t0, t1"), 42);
    assert_eq!(run(" li t0, 85\n li t1, 43\n rem rv, t0, t1"), 42);
    assert_eq!(run(" li t0, 0xff\n li t1, 0x2a\n and rv, t0, t1"), 0x2a);
    assert_eq!(run(" li t0, 0x28\n li t1, 0x02\n or rv, t0, t1"), 0x2a);
    assert_eq!(run(" li t0, 0x6b\n li t1, 0x41\n xor rv, t0, t1"), 0x2a);
}

#[test]
fn division_by_zero_yields_zero() {
    assert_eq!(run(" li t0, 7\n li t1, 0\n div rv, t0, t1"), 0);
    assert_eq!(run(" li t0, 7\n li t1, 0\n rem rv, t0, t1"), 0);
}

#[test]
fn shifts_logical_and_arithmetic() {
    assert_eq!(run(" li t0, 0x15\n li t1, 1\n sll rv, t0, t1"), 0x2a);
    assert_eq!(run(" li t0, 0x54\n li t1, 1\n srl rv, t0, t1"), 0x2a);
    // Arithmetic shift of a negative value keeps the sign.
    assert_eq!(run(" li t0, -8\n li t1, 1\n sra rv, t0, t1") as i32, -4);
    assert_eq!(run(" li t0, -8\n li t1, 1\n srl rv, t0, t1"), 0x7FFF_FFFC);
    assert_eq!(run(" li t0, 0x15\n slli rv, t0, 1"), 0x2a);
    assert_eq!(run(" li t0, 0x54\n srli rv, t0, 1"), 0x2a);
}

#[test]
fn comparisons_signed() {
    assert_eq!(run(" li t0, -1\n li t1, 1\n slt rv, t0, t1"), 1);
    assert_eq!(run(" li t0, 1\n li t1, -1\n slt rv, t0, t1"), 0);
    assert_eq!(run(" li t0, 5\n li t1, 5\n seq rv, t0, t1"), 1);
    assert_eq!(run(" li t0, 5\n li t1, 6\n seq rv, t0, t1"), 0);
}

#[test]
fn byte_memory_round_trip() {
    let body = r#"
.local buf 8
    li  t0, 0xAB
    sb  t0, buf(sp)
    lb  rv, buf(sp)
"#;
    let src = format!(".func main\n{body}\n halt\n.endfunc\n");
    let exe = Assembler::new().assemble(&src).unwrap();
    let mut emu = Emulator::new(&exe, null_host());
    emu.run().unwrap();
    assert_eq!(emu.reg(firmres_isa::Reg::RV), 0xAB);
}

#[test]
fn branch_taken_and_not_taken() {
    assert_eq!(
        run(" li t0, 1\n li t1, 2\n blt t0, t1, yes\n li rv, 0\n b out\nyes:\n li rv, 1\nout:"),
        1
    );
    assert_eq!(
        run(" li t0, 3\n li t1, 2\n bge t0, t1, yes\n li rv, 0\n b out\nyes:\n li rv, 1\nout:"),
        1
    );
}

#[test]
fn memset_memcpy_atoi_builtins() {
    let src = r#"
.func main
.local a 16
.local b 16
    lea a0, a
    li  a1, 65
    li  a2, 3
    callx memset
    lea a0, b
    lea a1, a
    li  a2, 4
    callx memcpy
    lea a0, b
    callx strlen
    halt
.endfunc
"#;
    let exe = Assembler::new().assemble(src).unwrap();
    let mut emu = Emulator::new(&exe, null_host());
    emu.run().unwrap();
    assert_eq!(emu.reg(firmres_isa::Reg::RV), 3, "AAA\\0 copied");

    let src = ".func main\n la a0, n\n callx atoi\n halt\n.endfunc\n.data\nn: .asciz \"  1234 \"\n";
    let exe = Assembler::new().assemble(src).unwrap();
    let mut emu = Emulator::new(&exe, null_host());
    emu.run().unwrap();
    assert_eq!(emu.reg(firmres_isa::Reg::RV), 1234);
}

#[test]
fn snprintf_and_itoa_builtins() {
    let src = r#"
.func main
.local buf 64
    lea a0, buf
    li  a1, 64
    la  a2, fmt
    li  a3, 7
    callx snprintf
    halt
.endfunc
.data
fmt: .asciz "v=%d"
"#;
    let exe = Assembler::new().assemble(src).unwrap();
    let mut emu = Emulator::new(&exe, null_host());
    emu.run().unwrap();
    assert_eq!(emu.reg(firmres_isa::Reg::RV), 3, "length of v=7");

    let src = r#"
.func main
.local txt 16
    li  a0, 90210
    lea a1, txt
    callx itoa
    lea a0, txt
    callx strlen
    halt
.endfunc
"#;
    let exe = Assembler::new().assemble(src).unwrap();
    let mut emu = Emulator::new(&exe, null_host());
    emu.run().unwrap();
    assert_eq!(emu.reg(firmres_isa::Reg::RV), 5);
}

#[test]
fn pc_fault_on_wild_jump() {
    let src = ".func main\n li t0, 0x40\n jalr rv, t0\n halt\n.endfunc\n";
    let exe = Assembler::new().assemble(src).unwrap();
    let mut emu = Emulator::new(&exe, null_host());
    assert!(matches!(emu.run(), Err(EmuError::PcFault { .. })));
}

#[test]
fn host_events_record_arguments() {
    let src = ".func main\n li a0, 11\n li a1, 22\n callx custom_fn\n halt\n.endfunc\n";
    let exe = Assembler::new().assemble(src).unwrap();
    let mut emu = Emulator::new(&exe, |_: &str, _: [u32; 6], _: &mut Mem| 99);
    emu.run().unwrap();
    assert_eq!(emu.reg(firmres_isa::Reg::RV), 99, "host return lands in rv");
    assert_eq!(emu.events().len(), 1);
    assert_eq!(emu.events()[0].name, "custom_fn");
    assert_eq!(emu.events()[0].args[0], 11);
    assert_eq!(emu.events()[0].args[1], 22);
}
