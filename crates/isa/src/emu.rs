//! A concrete MR32 interpreter.
//!
//! FIRMRES itself is purely static, but the reproduction uses this emulator
//! for *differential testing*: run a device-cloud executable with stubbed
//! host functions, capture the buffers it actually hands to `SSL_write` /
//! `mosquitto_publish` / `http_post`, and compare them against the messages
//! the static pipeline reconstructed.
//!
//! String/memory library calls (`sprintf`, `strcpy`, …) are implemented as
//! builtins; every other import is routed to a caller-supplied [`HostCall`]
//! and recorded as a [`HostEvent`].

use crate::exe::{Executable, DATA_BASE};
use crate::{decode, Inst, Reg};
use std::fmt;

/// Base of the emulated stack region (grows down).
const STACK_TOP: u32 = 0x0200_0000;
/// Size of the emulated stack region.
const STACK_SIZE: u32 = 1 << 20;
/// Base of the host scratch heap (for host-returned strings).
const HEAP_BASE: u32 = 0x0300_0000;
/// Size of the host scratch heap.
const HEAP_SIZE: u32 = 1 << 20;
/// `ra` sentinel: returning here ends execution.
const RETURN_SENTINEL: u32 = 0xDEAD_BEE0;

/// Errors raised during emulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmuError {
    /// A memory access outside the mapped regions.
    MemFault {
        /// The faulting address.
        addr: u32,
    },
    /// The step budget was exhausted (runaway loop).
    StepLimit,
    /// The program counter left the code image.
    PcFault {
        /// The faulting program counter.
        pc: u32,
    },
    /// A code word failed to decode.
    Decode {
        /// Address of the bad word.
        addr: u32,
    },
    /// A `callx` index beyond the import table.
    BadImport {
        /// The bad index.
        index: u16,
    },
    /// The named function was not found.
    NoSuchFunction(String),
    /// Host heap exhausted.
    HeapExhausted,
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::MemFault { addr } => write!(f, "memory fault at {addr:#x}"),
            EmuError::StepLimit => write!(f, "step limit exhausted"),
            EmuError::PcFault { pc } => write!(f, "pc left code image: {pc:#x}"),
            EmuError::Decode { addr } => write!(f, "undecodable instruction at {addr:#x}"),
            EmuError::BadImport { index } => write!(f, "bad import index {index}"),
            EmuError::NoSuchFunction(name) => write!(f, "no such function `{name}`"),
            EmuError::HeapExhausted => write!(f, "host heap exhausted"),
        }
    }
}

impl std::error::Error for EmuError {}

/// Emulated memory: data, stack and host-heap regions.
#[derive(Debug, Clone)]
pub struct Mem {
    data: Vec<u8>,
    stack: Vec<u8>,
    heap: Vec<u8>,
    heap_used: u32,
}

impl Mem {
    fn new(data_image: &[u8]) -> Self {
        let mut data = data_image.to_vec();
        data.resize(data.len() + 4096, 0); // slack for in-place growth
        Mem {
            data,
            stack: vec![0; STACK_SIZE as usize],
            heap: vec![0; HEAP_SIZE as usize],
            heap_used: 0,
        }
    }

    fn slot(&mut self, addr: u32) -> Result<&mut u8, EmuError> {
        let fault = EmuError::MemFault { addr };
        if addr >= DATA_BASE && (addr - DATA_BASE) < self.data.len() as u32 {
            Ok(&mut self.data[(addr - DATA_BASE) as usize])
        } else if (STACK_TOP - STACK_SIZE..STACK_TOP).contains(&addr) {
            Ok(&mut self.stack[(addr - (STACK_TOP - STACK_SIZE)) as usize])
        } else if (HEAP_BASE..HEAP_BASE + HEAP_SIZE).contains(&addr) {
            Ok(&mut self.heap[(addr - HEAP_BASE) as usize])
        } else {
            Err(fault)
        }
    }

    /// Read one byte.
    pub fn read8(&mut self, addr: u32) -> Result<u8, EmuError> {
        self.slot(addr).map(|b| *b)
    }

    /// Write one byte.
    pub fn write8(&mut self, addr: u32, value: u8) -> Result<(), EmuError> {
        *self.slot(addr)? = value;
        Ok(())
    }

    /// Read a little-endian 32-bit word.
    pub fn read32(&mut self, addr: u32) -> Result<u32, EmuError> {
        let mut v = [0u8; 4];
        for (i, b) in v.iter_mut().enumerate() {
            *b = self.read8(addr + i as u32)?;
        }
        Ok(u32::from_le_bytes(v))
    }

    /// Write a little-endian 32-bit word.
    pub fn write32(&mut self, addr: u32, value: u32) -> Result<(), EmuError> {
        for (i, b) in value.to_le_bytes().iter().enumerate() {
            self.write8(addr + i as u32, *b)?;
        }
        Ok(())
    }

    /// Read the NUL-terminated string at `addr` (lossy UTF-8).
    pub fn read_cstr(&mut self, addr: u32) -> Result<String, EmuError> {
        let mut out = Vec::new();
        let mut a = addr;
        loop {
            let b = self.read8(a)?;
            if b == 0 {
                break;
            }
            out.push(b);
            a += 1;
            if out.len() > 1 << 16 {
                return Err(EmuError::MemFault { addr: a });
            }
        }
        Ok(String::from_utf8_lossy(&out).into_owned())
    }

    /// Write `s` plus a NUL terminator at `addr`.
    pub fn write_cstr(&mut self, addr: u32, s: &str) -> Result<(), EmuError> {
        for (i, b) in s.as_bytes().iter().enumerate() {
            self.write8(addr + i as u32, *b)?;
        }
        self.write8(addr + s.len() as u32, 0)
    }

    /// Allocate `n` bytes in the host scratch heap, returning the address.
    ///
    /// # Errors
    ///
    /// Returns [`EmuError::HeapExhausted`] when the 1 MiB scratch region is
    /// full.
    pub fn alloc(&mut self, n: u32) -> Result<u32, EmuError> {
        let aligned = (n + 7) & !7;
        if self.heap_used + aligned > HEAP_SIZE {
            return Err(EmuError::HeapExhausted);
        }
        let addr = HEAP_BASE + self.heap_used;
        self.heap_used += aligned;
        Ok(addr)
    }

    /// Allocate and fill a NUL-terminated string, returning its address.
    pub fn alloc_cstr(&mut self, s: &str) -> Result<u32, EmuError> {
        let addr = self.alloc(s.len() as u32 + 1)?;
        self.write_cstr(addr, s)?;
        Ok(addr)
    }
}

/// Handler for imports the emulator has no builtin for.
pub trait HostCall {
    /// Handle the import `name` with the six argument registers; returns
    /// the value placed in `rv`.
    fn call(&mut self, name: &str, args: [u32; 6], mem: &mut Mem) -> u32;
}

impl<F: FnMut(&str, [u32; 6], &mut Mem) -> u32> HostCall for F {
    fn call(&mut self, name: &str, args: [u32; 6], mem: &mut Mem) -> u32 {
        self(name, args, mem)
    }
}

/// A recorded call to a host (non-builtin) import.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostEvent {
    /// Import name.
    pub name: String,
    /// The six argument registers at the time of the call.
    pub args: [u32; 6],
}

/// The MR32 interpreter.
pub struct Emulator<'a, H> {
    exe: &'a Executable,
    host: H,
    regs: [u32; 16],
    pc: u32,
    /// Emulated memory, public so tests can inspect buffers after a run.
    pub mem: Mem,
    events: Vec<HostEvent>,
    step_limit: u64,
}

impl<'a, H: HostCall> Emulator<'a, H> {
    /// Create an emulator over `exe` with the given host-call handler.
    pub fn new(exe: &'a Executable, host: H) -> Self {
        let mut regs = [0u32; 16];
        regs[Reg::SP.num() as usize] = STACK_TOP - 64;
        regs[Reg::RA.num() as usize] = RETURN_SENTINEL;
        Emulator {
            exe,
            host,
            regs,
            pc: exe.entry,
            mem: Mem::new(&exe.data),
            events: Vec::new(),
            step_limit: 1_000_000,
        }
    }

    /// Replace the default 1M step budget.
    pub fn set_step_limit(&mut self, limit: u64) {
        self.step_limit = limit;
    }

    /// Host events recorded so far, in call order.
    pub fn events(&self) -> &[HostEvent] {
        &self.events
    }

    /// Current value of a register.
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.num() as usize]
    }

    fn set_reg(&mut self, r: Reg, v: u32) {
        if r != Reg::ZERO {
            self.regs[r.num() as usize] = v;
        }
    }

    /// Run from the executable entry point until return/halt.
    ///
    /// # Errors
    ///
    /// Propagates any [`EmuError`] (memory fault, step limit, …).
    pub fn run(&mut self) -> Result<(), EmuError> {
        self.pc = self.exe.entry;
        self.run_from_pc()
    }

    /// Run the named function with up to six arguments.
    ///
    /// # Errors
    ///
    /// [`EmuError::NoSuchFunction`] when `name` is not a symbol, plus any
    /// runtime error.
    pub fn run_function(&mut self, name: &str, args: &[u32]) -> Result<u32, EmuError> {
        let f = self
            .exe
            .func_by_name(name)
            .ok_or_else(|| EmuError::NoSuchFunction(name.to_string()))?;
        for (i, a) in args.iter().take(6).enumerate() {
            self.set_reg(Reg::arg(i as u8).expect("<=6"), *a);
        }
        self.set_reg(Reg::RA, RETURN_SENTINEL);
        self.pc = f.addr;
        self.run_from_pc()?;
        Ok(self.reg(Reg::RV))
    }

    fn run_from_pc(&mut self) -> Result<(), EmuError> {
        let mut steps = 0u64;
        loop {
            if self.pc == RETURN_SENTINEL {
                return Ok(());
            }
            steps += 1;
            if steps > self.step_limit {
                return Err(EmuError::StepLimit);
            }
            let word = self
                .exe
                .word_at(self.pc)
                .ok_or(EmuError::PcFault { pc: self.pc })?;
            let inst = decode(word).map_err(|_| EmuError::Decode { addr: self.pc })?;
            if self.step(inst)? {
                return Ok(());
            }
        }
    }

    /// Execute one instruction; returns `true` on halt.
    fn step(&mut self, inst: Inst) -> Result<bool, EmuError> {
        use Inst::*;
        let mut next = self.pc.wrapping_add(4);
        match inst {
            Add(d, a, b) => self.set_reg(d, self.reg(a).wrapping_add(self.reg(b))),
            Sub(d, a, b) => self.set_reg(d, self.reg(a).wrapping_sub(self.reg(b))),
            Mul(d, a, b) => self.set_reg(d, self.reg(a).wrapping_mul(self.reg(b))),
            Div(d, a, b) => {
                let rb = self.reg(b);
                self.set_reg(d, self.reg(a).checked_div(rb).unwrap_or(0));
            }
            Rem(d, a, b) => {
                let rb = self.reg(b);
                self.set_reg(d, if rb == 0 { 0 } else { self.reg(a) % rb });
            }
            And(d, a, b) => self.set_reg(d, self.reg(a) & self.reg(b)),
            Or(d, a, b) => self.set_reg(d, self.reg(a) | self.reg(b)),
            Xor(d, a, b) => self.set_reg(d, self.reg(a) ^ self.reg(b)),
            Sll(d, a, b) => self.set_reg(d, self.reg(a) << (self.reg(b) & 31)),
            Srl(d, a, b) => self.set_reg(d, self.reg(a) >> (self.reg(b) & 31)),
            Sra(d, a, b) => self.set_reg(d, ((self.reg(a) as i32) >> (self.reg(b) & 31)) as u32),
            Slt(d, a, b) => self.set_reg(d, ((self.reg(a) as i32) < (self.reg(b) as i32)) as u32),
            Seq(d, a, b) => self.set_reg(d, (self.reg(a) == self.reg(b)) as u32),
            Addi(d, a, i) => self.set_reg(d, self.reg(a).wrapping_add(i as i32 as u32)),
            Andi(d, a, i) => self.set_reg(d, self.reg(a) & (i as i32 as u32)),
            Ori(d, a, i) => self.set_reg(d, self.reg(a) | (i as u32 & 0x3FFF)),
            Xori(d, a, i) => self.set_reg(d, self.reg(a) ^ (i as i32 as u32)),
            Slli(d, a, i) => self.set_reg(d, self.reg(a) << (i as u32 & 31)),
            Srli(d, a, i) => self.set_reg(d, self.reg(a) >> (i as u32 & 31)),
            Lui(d, imm) => self.set_reg(d, imm << 14),
            Lw(d, b, i) => {
                let addr = self.reg(b).wrapping_add(i as i32 as u32);
                let v = self.mem.read32(addr)?;
                self.set_reg(d, v);
            }
            Lb(d, b, i) => {
                let addr = self.reg(b).wrapping_add(i as i32 as u32);
                let v = self.mem.read8(addr)?;
                self.set_reg(d, v as u32);
            }
            Sw(s, b, i) => {
                let addr = self.reg(b).wrapping_add(i as i32 as u32);
                self.mem.write32(addr, self.reg(s))?;
            }
            Sb(s, b, i) => {
                let addr = self.reg(b).wrapping_add(i as i32 as u32);
                self.mem.write8(addr, self.reg(s) as u8)?;
            }
            Beq(a, b, o) => {
                if self.reg(a) == self.reg(b) {
                    next = self.pc.wrapping_add((o as i32 * 4) as u32);
                }
            }
            Bne(a, b, o) => {
                if self.reg(a) != self.reg(b) {
                    next = self.pc.wrapping_add((o as i32 * 4) as u32);
                }
            }
            Blt(a, b, o) => {
                if (self.reg(a) as i32) < (self.reg(b) as i32) {
                    next = self.pc.wrapping_add((o as i32 * 4) as u32);
                }
            }
            Bge(a, b, o) => {
                if (self.reg(a) as i32) >= (self.reg(b) as i32) {
                    next = self.pc.wrapping_add((o as i32 * 4) as u32);
                }
            }
            Jal(o) => {
                self.set_reg(Reg::RA, next);
                next = self.pc.wrapping_add((o * 4) as u32);
            }
            Jalr(d, s) => {
                let target = self.reg(s);
                self.set_reg(d, next);
                next = target;
            }
            Callx(index) => {
                let name = self
                    .exe
                    .imports
                    .get(index as usize)
                    .ok_or(EmuError::BadImport { index })?
                    .clone();
                let args = [
                    self.reg(Reg::A0),
                    self.reg(Reg::A1),
                    self.reg(Reg::A2),
                    self.reg(Reg::A3),
                    self.reg(Reg::A4),
                    self.reg(Reg::A5),
                ];
                let rv = match self.builtin(&name, args)? {
                    Some(v) => v,
                    None => {
                        self.events.push(HostEvent {
                            name: name.clone(),
                            args,
                        });
                        self.host.call(&name, args, &mut self.mem)
                    }
                };
                self.set_reg(Reg::RV, rv);
            }
            Halt => return Ok(true),
        }
        self.pc = next;
        Ok(false)
    }

    /// Builtin library calls; `Ok(None)` defers to the host.
    fn builtin(&mut self, name: &str, args: [u32; 6]) -> Result<Option<u32>, EmuError> {
        let m = &mut self.mem;
        let v = match name {
            "strlen" => Some(m.read_cstr(args[0])?.len() as u32),
            "strcpy" => {
                let s = m.read_cstr(args[1])?;
                m.write_cstr(args[0], &s)?;
                Some(args[0])
            }
            "strcat" => {
                let dst = m.read_cstr(args[0])?;
                let src = m.read_cstr(args[1])?;
                m.write_cstr(args[0] + dst.len() as u32, &src)?;
                Some(args[0])
            }
            "memcpy" => {
                for i in 0..args[2] {
                    let b = m.read8(args[1] + i)?;
                    m.write8(args[0] + i, b)?;
                }
                Some(args[0])
            }
            "memset" => {
                for i in 0..args[2] {
                    m.write8(args[0] + i, args[1] as u8)?;
                }
                Some(args[0])
            }
            "atoi" => {
                let s = m.read_cstr(args[0])?;
                Some(s.trim().parse::<i32>().unwrap_or(0) as u32)
            }
            "puts" => Some(0),
            "itoa" => {
                let s = args[0].to_string();
                m.write_cstr(args[1], &s)?;
                Some(args[1])
            }
            "sprintf" => Some(self.sprintf(args[0], args[1], &args[2..])? as u32),
            "snprintf" => {
                // dst, size, fmt, ... — size is ignored (buffers are sized
                // generously in the corpus).
                Some(self.sprintf(args[0], args[2], &args[3..])? as u32)
            }
            _ => None,
        };
        Ok(v)
    }

    /// Minimal printf-style formatting: `%s %d %u %x %c %%`.
    fn sprintf(&mut self, dst: u32, fmt_addr: u32, varargs: &[u32]) -> Result<usize, EmuError> {
        let fmt = self.mem.read_cstr(fmt_addr)?;
        let mut out = String::new();
        let mut args = varargs.iter();
        let mut chars = fmt.chars().peekable();
        while let Some(c) = chars.next() {
            if c != '%' {
                out.push(c);
                continue;
            }
            match chars.next() {
                Some('s') => {
                    let a = *args.next().unwrap_or(&0);
                    out.push_str(&self.mem.read_cstr(a)?);
                }
                Some('d') => {
                    let a = *args.next().unwrap_or(&0);
                    out.push_str(&(a as i32).to_string());
                }
                Some('u') => {
                    let a = *args.next().unwrap_or(&0);
                    out.push_str(&a.to_string());
                }
                Some('x') => {
                    let a = *args.next().unwrap_or(&0);
                    out.push_str(&format!("{a:x}"));
                }
                Some('c') => {
                    let a = *args.next().unwrap_or(&0);
                    out.push((a as u8) as char);
                }
                Some('%') => out.push('%'),
                other => {
                    out.push('%');
                    if let Some(o) = other {
                        out.push(o);
                    }
                }
            }
        }
        self.mem.write_cstr(dst, &out)?;
        Ok(out.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Assembler;

    fn null_host() -> impl FnMut(&str, [u32; 6], &mut Mem) -> u32 {
        |_, _, _| 0
    }

    #[test]
    fn arithmetic_and_loops() {
        let src = r#"
.func main
    li  t0, 0
    li  t1, 5
loop:
    add t0, t0, t1
    addi t1, t1, -1
    bne t1, zero, loop
    mov rv, t0
    halt
.endfunc
"#;
        let exe = Assembler::new().assemble(src).unwrap();
        let mut emu = Emulator::new(&exe, null_host());
        emu.run().unwrap();
        assert_eq!(emu.reg(Reg::RV), 5 + 4 + 3 + 2 + 1);
    }

    #[test]
    fn sprintf_builtin_formats_message() {
        let src = r#"
.func main
.local buf 64
    lea a0, buf
    la  a1, fmt
    la  a2, mac
    li  a3, 7
    callx sprintf
    lea a0, buf
    callx SSL_write
    halt
.endfunc
.data
fmt: .asciz "{\"mac\":\"%s\",\"n\":%d}"
mac: .asciz "AA:BB:CC"
"#;
        let exe = Assembler::new().assemble(src).unwrap();
        let mut sent = Vec::new();
        {
            let mut emu = Emulator::new(&exe, |name: &str, args: [u32; 6], mem: &mut Mem| {
                if name == "SSL_write" {
                    sent.push(mem.read_cstr(args[0]).unwrap());
                }
                0
            });
            emu.run().unwrap();
            assert_eq!(emu.events().len(), 1);
            assert_eq!(emu.events()[0].name, "SSL_write");
        }
        assert_eq!(sent, vec!["{\"mac\":\"AA:BB:CC\",\"n\":7}".to_string()]);
    }

    #[test]
    fn function_calls_and_stack() {
        let src = r#"
.func double x
    add rv, a0, a0
    ret
.endfunc
.func main
.local saved 4
    li  a0, 21
    call double
    sw  rv, saved(sp)
    lw  rv, saved(sp)
    halt
.endfunc
"#;
        let exe = Assembler::new().assemble(src).unwrap();
        let mut emu = Emulator::new(&exe, null_host());
        emu.run().unwrap();
        assert_eq!(emu.reg(Reg::RV), 42);
    }

    #[test]
    fn run_named_function_with_args() {
        let src = ".func add3 a b c\n add rv, a0, a1\n add rv, rv, a2\n ret\n.endfunc\n";
        let exe = Assembler::new().assemble(src).unwrap();
        let mut emu = Emulator::new(&exe, null_host());
        assert_eq!(emu.run_function("add3", &[1, 2, 3]).unwrap(), 6);
        assert!(matches!(
            emu.run_function("nope", &[]),
            Err(EmuError::NoSuchFunction(_))
        ));
    }

    #[test]
    fn strcpy_strcat_strlen() {
        let src = r#"
.func main
.local buf 64
    lea a0, buf
    la  a1, hello
    callx strcpy
    lea a0, buf
    la  a1, world
    callx strcat
    lea a0, buf
    callx strlen
    halt
.endfunc
.data
hello: .asciz "hello "
world: .asciz "world"
"#;
        let exe = Assembler::new().assemble(src).unwrap();
        let mut emu = Emulator::new(&exe, null_host());
        emu.run().unwrap();
        assert_eq!(emu.reg(Reg::RV), 11);
        assert!(
            emu.events().is_empty(),
            "string builtins are not host calls"
        );
    }

    #[test]
    fn host_alloc_cstr_round_trip() {
        let src = r#"
.func main
    callx nvram_get
    mov a0, rv
    callx strlen
    halt
.endfunc
"#;
        let exe = Assembler::new().assemble(src).unwrap();
        let mut emu = Emulator::new(&exe, |name: &str, _args: [u32; 6], mem: &mut Mem| {
            assert_eq!(name, "nvram_get");
            mem.alloc_cstr("192.168.1.1").unwrap()
        });
        emu.run().unwrap();
        assert_eq!(emu.reg(Reg::RV), 11);
    }

    #[test]
    fn step_limit_stops_runaway_loops() {
        let src = ".func main\nspin: b spin\n ret\n.endfunc\n";
        let exe = Assembler::new().assemble(src).unwrap();
        let mut emu = Emulator::new(&exe, null_host());
        emu.set_step_limit(1000);
        assert_eq!(emu.run(), Err(EmuError::StepLimit));
    }

    #[test]
    fn memory_faults_reported() {
        let src = ".func main\n li t0, 0x10\n lw rv, 0(t0)\n halt\n.endfunc\n";
        let exe = Assembler::new().assemble(src).unwrap();
        let mut emu = Emulator::new(&exe, null_host());
        assert!(matches!(emu.run(), Err(EmuError::MemFault { .. })));
    }
}
