//! Binary encoding and decoding of MR32 instructions.
//!
//! Layout (bit 31 is the MSB):
//!
//! ```text
//! R-type:   [31:26] op  [25:22] rd  [21:18] rs1  [17:14] rs2
//! I-type:   [31:26] op  [25:22] rd  [21:18] rs1  [13:0]  imm14 (signed)
//! Lui:      [31:26] op  [25:22] rd  [17:0]  imm18
//! Branch:   [31:26] op  [25:22] rs1 [21:18] rs2  [13:0]  off14 (signed)
//! Jal:      [31:26] op  [25:0]  off26 (signed)
//! Jalr:     [31:26] op  [25:22] rd  [21:18] rs1
//! Callx:    [31:26] op  [15:0]  import index
//! Halt:     [31:26] op
//! ```

use crate::{Inst, Reg};
use std::fmt;

/// Error produced when a 32-bit word is not a valid MR32 instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The undecodable word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid MR32 instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

// Opcode numbers. Keep in sync with `decode`.
const OP_ADD: u32 = 0;
const OP_SUB: u32 = 1;
const OP_MUL: u32 = 2;
const OP_DIV: u32 = 3;
const OP_REM: u32 = 4;
const OP_AND: u32 = 5;
const OP_OR: u32 = 6;
const OP_XOR: u32 = 7;
const OP_SLL: u32 = 8;
const OP_SRL: u32 = 9;
const OP_SRA: u32 = 10;
const OP_SLT: u32 = 11;
const OP_SEQ: u32 = 12;
const OP_ADDI: u32 = 13;
const OP_ANDI: u32 = 14;
const OP_ORI: u32 = 15;
const OP_XORI: u32 = 16;
const OP_SLLI: u32 = 17;
const OP_SRLI: u32 = 18;
const OP_LUI: u32 = 19;
const OP_LW: u32 = 20;
const OP_LB: u32 = 21;
const OP_SW: u32 = 22;
const OP_SB: u32 = 23;
const OP_BEQ: u32 = 24;
const OP_BNE: u32 = 25;
const OP_BLT: u32 = 26;
const OP_BGE: u32 = 27;
const OP_JAL: u32 = 28;
const OP_JALR: u32 = 29;
const OP_CALLX: u32 = 30;
const OP_HALT: u32 = 31;

fn imm14(i: i16) -> u32 {
    debug_assert!(
        (-(1 << 13)..(1 << 13)).contains(&(i as i32)),
        "imm14 overflow: {i}"
    );
    (i as u32) & 0x3FFF
}

fn r(op: u32, d: Reg, a: Reg, b: Reg) -> u32 {
    (op << 26) | ((d.num() as u32) << 22) | ((a.num() as u32) << 18) | ((b.num() as u32) << 14)
}

fn i_type(op: u32, d: Reg, a: Reg, imm: i16) -> u32 {
    (op << 26) | ((d.num() as u32) << 22) | ((a.num() as u32) << 18) | imm14(imm)
}

/// Encode an instruction into its 32-bit word.
///
/// # Panics
///
/// Debug builds panic if an immediate is out of range for its field; the
/// assembler validates ranges before calling this.
pub fn encode(inst: Inst) -> u32 {
    use Inst::*;
    match inst {
        Add(d, a, b) => r(OP_ADD, d, a, b),
        Sub(d, a, b) => r(OP_SUB, d, a, b),
        Mul(d, a, b) => r(OP_MUL, d, a, b),
        Div(d, a, b) => r(OP_DIV, d, a, b),
        Rem(d, a, b) => r(OP_REM, d, a, b),
        And(d, a, b) => r(OP_AND, d, a, b),
        Or(d, a, b) => r(OP_OR, d, a, b),
        Xor(d, a, b) => r(OP_XOR, d, a, b),
        Sll(d, a, b) => r(OP_SLL, d, a, b),
        Srl(d, a, b) => r(OP_SRL, d, a, b),
        Sra(d, a, b) => r(OP_SRA, d, a, b),
        Slt(d, a, b) => r(OP_SLT, d, a, b),
        Seq(d, a, b) => r(OP_SEQ, d, a, b),
        Addi(d, a, i) => i_type(OP_ADDI, d, a, i),
        Andi(d, a, i) => i_type(OP_ANDI, d, a, i),
        // `ori` zero-extends its immediate (it pairs with `lui` to
        // materialize 32-bit constants, so the full 14-bit range must be
        // expressible).
        Ori(d, a, i) => {
            debug_assert!(
                (0..(1 << 14)).contains(&(i as i32)),
                "ori imm14 overflow: {i}"
            );
            (OP_ORI << 26)
                | ((d.num() as u32) << 22)
                | ((a.num() as u32) << 18)
                | ((i as u32) & 0x3FFF)
        }
        Xori(d, a, i) => i_type(OP_XORI, d, a, i),
        Slli(d, a, i) => i_type(OP_SLLI, d, a, i),
        Srli(d, a, i) => i_type(OP_SRLI, d, a, i),
        Lui(d, imm) => {
            debug_assert!(imm < (1 << 18), "imm18 overflow: {imm}");
            (OP_LUI << 26) | ((d.num() as u32) << 22) | (imm & 0x3FFFF)
        }
        Lw(d, b, i) => i_type(OP_LW, d, b, i),
        Lb(d, b, i) => i_type(OP_LB, d, b, i),
        Sw(s, b, i) => i_type(OP_SW, s, b, i),
        Sb(s, b, i) => i_type(OP_SB, s, b, i),
        Beq(a, b, o) => i_type(OP_BEQ, a, b, o),
        Bne(a, b, o) => i_type(OP_BNE, a, b, o),
        Blt(a, b, o) => i_type(OP_BLT, a, b, o),
        Bge(a, b, o) => i_type(OP_BGE, a, b, o),
        Jal(o) => {
            debug_assert!((-(1 << 25)..(1 << 25)).contains(&o), "off26 overflow: {o}");
            (OP_JAL << 26) | ((o as u32) & 0x03FF_FFFF)
        }
        Jalr(d, s) => (OP_JALR << 26) | ((d.num() as u32) << 22) | ((s.num() as u32) << 18),
        Callx(idx) => (OP_CALLX << 26) | idx as u32,
        Halt => OP_HALT << 26,
    }
}

fn sext14(w: u32) -> i16 {
    let v = (w & 0x3FFF) as i32;
    (if v >= 1 << 13 { v - (1 << 14) } else { v }) as i16
}

fn sext26(w: u32) -> i32 {
    let v = (w & 0x03FF_FFFF) as i32;
    if v >= 1 << 25 {
        v - (1 << 26)
    } else {
        v
    }
}

fn reg_at(w: u32, lsb: u32) -> Reg {
    Reg::new(((w >> lsb) & 0xF) as u8).expect("4-bit field is always a valid register")
}

/// Decode a 32-bit word into an instruction.
///
/// # Errors
///
/// Returns [`DecodeError`] when the opcode field does not name an MR32
/// instruction (only possible for corrupted images: all 6-bit opcodes 0–31
/// are assigned, so words with opcode ≥ 32 are unreachable — the field is
/// 6 bits wide but opcodes 32–63 are reserved).
pub fn decode(word: u32) -> Result<Inst, DecodeError> {
    use Inst::*;
    let op = word >> 26;
    let d = reg_at(word, 22);
    let a = reg_at(word, 18);
    let b = reg_at(word, 14);
    let inst = match op {
        OP_ADD => Add(d, a, b),
        OP_SUB => Sub(d, a, b),
        OP_MUL => Mul(d, a, b),
        OP_DIV => Div(d, a, b),
        OP_REM => Rem(d, a, b),
        OP_AND => And(d, a, b),
        OP_OR => Or(d, a, b),
        OP_XOR => Xor(d, a, b),
        OP_SLL => Sll(d, a, b),
        OP_SRL => Srl(d, a, b),
        OP_SRA => Sra(d, a, b),
        OP_SLT => Slt(d, a, b),
        OP_SEQ => Seq(d, a, b),
        OP_ADDI => Addi(d, a, sext14(word)),
        OP_ANDI => Andi(d, a, sext14(word)),
        OP_ORI => Ori(d, a, (word & 0x3FFF) as i16), // zero-extended
        OP_XORI => Xori(d, a, sext14(word)),
        OP_SLLI => Slli(d, a, sext14(word)),
        OP_SRLI => Srli(d, a, sext14(word)),
        OP_LUI => Lui(d, word & 0x3FFFF),
        OP_LW => Lw(d, a, sext14(word)),
        OP_LB => Lb(d, a, sext14(word)),
        OP_SW => Sw(d, a, sext14(word)),
        OP_SB => Sb(d, a, sext14(word)),
        OP_BEQ => Beq(d, a, sext14(word)),
        OP_BNE => Bne(d, a, sext14(word)),
        OP_BLT => Blt(d, a, sext14(word)),
        OP_BGE => Bge(d, a, sext14(word)),
        OP_JAL => Jal(sext26(word)),
        OP_JALR => Jalr(d, a),
        OP_CALLX => Callx((word & 0xFFFF) as u16),
        OP_HALT => Halt,
        _ => return Err(DecodeError { word }),
    };
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_representative_instructions() {
        let cases = [
            Inst::Add(Reg::RV, Reg::A0, Reg::A1),
            Inst::Sub(Reg::T0, Reg::T1, Reg::T2),
            Inst::Addi(Reg::SP, Reg::SP, -32),
            Inst::Ori(Reg::A0, Reg::A0, 0x3FF),
            Inst::Lui(Reg::A0, 0x3FFFF),
            Inst::Lw(Reg::T0, Reg::SP, -4),
            Inst::Sw(Reg::A0, Reg::SP, 8),
            Inst::Sb(Reg::A1, Reg::T0, 0),
            Inst::Beq(Reg::A0, Reg::ZERO, -100),
            Inst::Bge(Reg::T3, Reg::A2, 8191),
            Inst::Jal(-12345),
            Inst::Jalr(Reg::ZERO, Reg::RA),
            Inst::Callx(65535),
            Inst::Halt,
            Inst::Seq(Reg::T0, Reg::A0, Reg::A1),
        ];
        for inst in cases {
            let w = encode(inst);
            assert_eq!(decode(w), Ok(inst), "round trip of {inst}");
        }
    }

    #[test]
    fn imm14_extremes_round_trip() {
        for i in [-8192i16, -1, 0, 1, 8191] {
            let inst = Inst::Addi(Reg::A0, Reg::ZERO, i);
            assert_eq!(decode(encode(inst)), Ok(inst), "imm {i}");
        }
    }

    #[test]
    fn off26_extremes_round_trip() {
        for o in [-(1 << 25), -1, 0, 1, (1 << 25) - 1] {
            let inst = Inst::Jal(o);
            assert_eq!(decode(encode(inst)), Ok(inst), "off {o}");
        }
    }

    #[test]
    fn reserved_opcodes_fail() {
        for op in 32u32..64 {
            let w = op << 26;
            assert_eq!(decode(w), Err(DecodeError { word: w }));
        }
    }

    #[test]
    fn decode_error_displays_word() {
        let e = DecodeError { word: 0xFFFF_FFFF };
        assert!(e.to_string().contains("0xffffffff"));
    }
}
