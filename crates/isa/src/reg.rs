//! The MR32 register file.

use std::fmt;

/// One of the 16 MR32 general-purpose registers.
///
/// ABI conventions (used by the assembler, the lifter and the emulator):
///
/// | register | alias | role |
/// |---|---|---|
/// | `r0` | `zero` | hard-wired zero |
/// | `r1` | `ra` | return address |
/// | `r2` | `sp` | stack pointer |
/// | `r3` | `rv` | return value |
/// | `r4`–`r9` | `a0`–`a5` | arguments |
/// | `r10`–`r15` | `t0`–`t5` | caller-saved temporaries |
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Hard-wired zero register.
    pub const ZERO: Reg = Reg(0);
    /// Return address.
    pub const RA: Reg = Reg(1);
    /// Stack pointer.
    pub const SP: Reg = Reg(2);
    /// Return value.
    pub const RV: Reg = Reg(3);
    /// First argument register.
    pub const A0: Reg = Reg(4);
    /// Second argument register.
    pub const A1: Reg = Reg(5);
    /// Third argument register.
    pub const A2: Reg = Reg(6);
    /// Fourth argument register.
    pub const A3: Reg = Reg(7);
    /// Fifth argument register.
    pub const A4: Reg = Reg(8);
    /// Sixth argument register.
    pub const A5: Reg = Reg(9);
    /// First temporary.
    pub const T0: Reg = Reg(10);
    /// Second temporary.
    pub const T1: Reg = Reg(11);
    /// Third temporary.
    pub const T2: Reg = Reg(12);
    /// Fourth temporary.
    pub const T3: Reg = Reg(13);
    /// Fifth temporary.
    pub const T4: Reg = Reg(14);
    /// Sixth temporary.
    pub const T5: Reg = Reg(15);

    /// The `n`-th register. Returns `None` for `n >= 16`.
    pub fn new(n: u8) -> Option<Reg> {
        (n < 16).then_some(Reg(n))
    }

    /// The `n`-th argument register (`a0` is 0). Returns `None` past `a5`.
    pub fn arg(n: u8) -> Option<Reg> {
        (n < 6).then(|| Reg(4 + n))
    }

    /// Register number, 0–15.
    pub fn num(self) -> u8 {
        self.0
    }

    /// Parse a register name: `r0`–`r15` or an ABI alias.
    pub fn parse(s: &str) -> Option<Reg> {
        let alias = match s {
            "zero" => Some(0),
            "ra" => Some(1),
            "sp" => Some(2),
            "rv" => Some(3),
            _ => None,
        };
        if let Some(n) = alias {
            return Some(Reg(n));
        }
        if let Some(rest) = s.strip_prefix('a') {
            let n: u8 = rest.parse().ok()?;
            return Reg::arg(n);
        }
        if let Some(rest) = s.strip_prefix('t') {
            let n: u8 = rest.parse().ok()?;
            return (n < 6).then(|| Reg(10 + n));
        }
        if let Some(rest) = s.strip_prefix('r') {
            let n: u8 = rest.parse().ok()?;
            return Reg::new(n);
        }
        None
    }

    /// ABI alias name.
    pub fn name(self) -> &'static str {
        const NAMES: [&str; 16] = [
            "zero", "ra", "sp", "rv", "a0", "a1", "a2", "a3", "a4", "a5", "t0", "t1", "t2", "t3",
            "t4", "t5",
        ];
        NAMES[self.0 as usize]
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_aliases_and_numbers() {
        assert_eq!(Reg::parse("zero"), Some(Reg::ZERO));
        assert_eq!(Reg::parse("sp"), Some(Reg::SP));
        assert_eq!(Reg::parse("a0"), Some(Reg::A0));
        assert_eq!(Reg::parse("a5"), Some(Reg::A5));
        assert_eq!(Reg::parse("t3"), Some(Reg::T3));
        assert_eq!(Reg::parse("r15"), Some(Reg::T5));
        assert_eq!(Reg::parse("a6"), None);
        assert_eq!(Reg::parse("t6"), None);
        assert_eq!(Reg::parse("r16"), None);
        assert_eq!(Reg::parse("x1"), None);
    }

    #[test]
    fn name_round_trip() {
        for n in 0..16u8 {
            let r = Reg::new(n).unwrap();
            assert_eq!(Reg::parse(r.name()), Some(r), "{}", r.name());
        }
    }

    #[test]
    fn arg_registers() {
        assert_eq!(Reg::arg(0), Some(Reg::A0));
        assert_eq!(Reg::arg(5), Some(Reg::A5));
        assert_eq!(Reg::arg(6), None);
    }

    #[test]
    fn display_uses_alias() {
        assert_eq!(Reg::SP.to_string(), "sp");
        assert_eq!(Reg::new(12).unwrap().to_string(), "t2");
    }
}
