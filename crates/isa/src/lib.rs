//! # firmres-isa
//!
//! The MR32 instruction set architecture: a 32-bit fixed-width RISC ISA
//! that plays the role real device CPUs (MIPS/ARM) play in the FIRMRES
//! paper. Firmware executables in the synthetic corpus are MR32 machine
//! code packed in the MRE container format; this crate provides everything
//! needed to produce and consume them:
//!
//! * [`Inst`] / [`Reg`] — the instruction set and register file.
//! * [`encode`]/[`decode`] — binary encoding (round-trip tested).
//! * [`Assembler`] — a two-pass assembler from textual MR32 assembly to an
//!   [`Executable`], with functions, named locals/params, data directives
//!   and an import table.
//! * [`Executable`] — the MRE object format with (de)serialization.
//! * [`lift`] — disassemble + lift an [`Executable`] into a
//!   [`firmres_ir::Program`], the representation all FIRMRES analyses
//!   consume (the stand-in for Ghidra's decompiler output).
//! * [`Emulator`] — a concrete interpreter used for differential testing:
//!   messages reconstructed statically can be checked against what the
//!   executable actually sends when run.
//!
//! # Examples
//!
//! ```
//! use firmres_isa::{Assembler, lift};
//!
//! let src = r#"
//! .func main 0
//!     la   a0, msg
//!     callx puts
//!     ret
//! .endfunc
//! .data
//! msg: .asciz "hello"
//! "#;
//! let exe = Assembler::new().assemble(src)?;
//! let prog = lift(&exe, "demo")?;
//! assert_eq!(prog.function_count(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod asm;
mod emu;
mod encode;
mod exe;
mod inst;
mod lift;
mod reg;

pub use asm::{AsmError, Assembler};
pub use emu::{EmuError, Emulator, HostCall, HostEvent, Mem};
pub use encode::{decode, encode, DecodeError};
pub use exe::{ExeError, Executable, FuncSymbol, LocalSymbol, CODE_BASE, DATA_BASE};
pub use inst::Inst;
pub use lift::{lift, LiftError};
pub use reg::Reg;
