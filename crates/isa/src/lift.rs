//! Disassemble an [`Executable`] and lift it into a [`firmres_ir::Program`].
//!
//! This is the stand-in for Ghidra's decompiler in the FIRMRES pipeline:
//! machine code bytes go in, a P-Code CFG with recovered symbols comes
//! out. The lifter:
//!
//! * splits each function into basic blocks at branch targets,
//! * maps the MR32 ABI onto IR varnodes (registers, `sp`-relative stack
//!   slots become [`firmres_ir::AddressSpace::Stack`] varnodes),
//! * fuses `lui`+`ori` constant materialization into a single `COPY` of the
//!   full 32-bit constant (what a decompiler's constant propagation shows),
//! * attaches function, parameter, local and data-pointer names from the
//!   MRE symbol table, and
//! * models calls with the callee's declared arity (imports use a
//!   signature table; unknown imports conservatively take all six argument
//!   registers — the "over-taint" strategy the paper adopts).

use crate::exe::{Executable, FuncSymbol};
use crate::{decode, DecodeError, Inst, Reg};
use firmres_ir::{import_address, BlockId, FunctionBuilder, Opcode, Program, Varnode};
use std::collections::BTreeMap;
use std::fmt;

/// Errors produced while lifting an executable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiftError {
    /// A code word failed to decode.
    Decode {
        /// Address of the bad word.
        addr: u32,
        /// The underlying decode error.
        err: DecodeError,
    },
    /// The executable has no function symbols.
    NoFunctions,
    /// A branch jumps outside its function.
    BranchOutOfRange {
        /// Address of the branch.
        addr: u32,
        /// Computed (invalid) target.
        target: i64,
    },
    /// A `jal` targets an address with no function symbol.
    CallTargetUnknown {
        /// Address of the call.
        addr: u32,
        /// The target address.
        target: u32,
    },
    /// A `callx` index is outside the import table.
    BadImportIndex {
        /// Address of the call.
        addr: u32,
        /// The out-of-range index.
        index: u16,
    },
}

impl fmt::Display for LiftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiftError::Decode { addr, err } => write!(f, "at {addr:#x}: {err}"),
            LiftError::NoFunctions => write!(f, "executable has no function symbols"),
            LiftError::BranchOutOfRange { addr, target } => {
                write!(
                    f,
                    "branch at {addr:#x} targets {target:#x} outside its function"
                )
            }
            LiftError::CallTargetUnknown { addr, target } => {
                write!(
                    f,
                    "call at {addr:#x} targets {target:#x} which is not a function"
                )
            }
            LiftError::BadImportIndex { addr, index } => {
                write!(
                    f,
                    "callx at {addr:#x} references import #{index} beyond the table"
                )
            }
        }
    }
}

impl std::error::Error for LiftError {}

/// Declared argument count for well-known library imports.
///
/// Unknown imports return 6 (all argument registers) — deliberate
/// over-approximation, matching the paper's over-taint strategy.
pub(crate) fn import_arity(name: &str) -> usize {
    match name {
        "puts" | "strlen" | "atoi" | "curl_easy_perform" | "free" | "getenv" | "nvram_get"
        | "cfg_get" | "cJSON_Print" | "cJSON_Delete" | "malloc" | "time" | "get_mac_addr"
        | "get_serial" | "get_dev_model" | "get_fw_version" | "get_uid" | "rand" => 1,
        "strcpy"
        | "strcat"
        | "strchr"
        | "strstr"
        | "fopen"
        | "cJSON_GetObjectItem"
        | "config_read"
        | "hmac_sign"
        | "itoa" => 2,
        "SSL_write"
        | "CyaSSL_write"
        | "write"
        | "read"
        | "memcpy"
        | "strncpy"
        | "memset"
        | "http_get"
        | "cJSON_AddStringToObject"
        | "cJSON_AddNumberToObject"
        | "md5_hex"
        | "sha256_hex" => 3,
        "send" | "recv" | "mosquitto_publish" | "mqtt_publish" | "http_post" | "fread"
        | "fwrite" | "ssl_connect" => 4,
        "sendto" | "recvfrom" => 6,
        // Variadic formatted output: take every argument register.
        "sprintf" | "snprintf" | "printf" | "fprintf" => 6,
        _ => 6,
    }
}

/// Lift `exe` into an IR [`Program`] named `name`.
///
/// # Errors
///
/// Returns a [`LiftError`] for undecodable words, branches or calls that
/// leave their function, or import references beyond the import table.
pub fn lift(exe: &Executable, name: &str) -> Result<Program, LiftError> {
    if exe.funcs.is_empty() {
        return Err(LiftError::NoFunctions);
    }
    let mut program = Program::new(name);
    program.set_data_segment(crate::DATA_BASE as u64, exe.data.clone());
    for imp in &exe.imports {
        program.add_import(import_address(imp), imp.clone());
    }
    let data_names: BTreeMap<u32, &str> = exe
        .data_syms
        .iter()
        .map(|(n, a)| (*a, n.as_str()))
        .collect();

    let mut funcs: Vec<&FuncSymbol> = exe.funcs.iter().collect();
    funcs.sort_by_key(|f| f.addr);
    for (i, fs) in funcs.iter().enumerate() {
        let end = funcs.get(i + 1).map_or(exe.code_end(), |n| n.addr);
        let func = lift_function(exe, fs, end, &data_names)?;
        program.add_function(func);
    }
    Ok(program)
}

fn lift_function(
    exe: &Executable,
    fs: &FuncSymbol,
    end: u32,
    data_names: &BTreeMap<u32, &str>,
) -> Result<firmres_ir::Function, LiftError> {
    // Decode the function body.
    let mut insts: Vec<(u32, Inst)> = Vec::new();
    let mut addr = fs.addr;
    while addr < end {
        let word = exe.word_at(addr).expect("address within code image");
        let inst = decode(word).map_err(|err| LiftError::Decode { addr, err })?;
        insts.push((addr, inst));
        addr += 4;
    }

    // Compute leaders.
    let mut leaders = std::collections::BTreeSet::new();
    leaders.insert(fs.addr);
    for &(addr, inst) in &insts {
        if let Some(off) = inst.branch_offset() {
            let target = addr as i64 + off as i64 * 4;
            if target < fs.addr as i64 || target >= end as i64 {
                return Err(LiftError::BranchOutOfRange { addr, target });
            }
            leaders.insert(target as u32);
            if addr + 4 < end {
                leaders.insert(addr + 4);
            }
        } else if inst.is_terminator() && addr + 4 < end {
            leaders.insert(addr + 4);
        }
    }

    let mut fb = FunctionBuilder::new(&fs.name, fs.addr as u64);
    for p in &fs.params {
        fb.param(p, 4);
    }
    // Name recovered stack locals from the symbol table.
    let func_index = exe
        .funcs
        .iter()
        .position(|f| f.addr == fs.addr)
        .expect("function exists") as u32;
    for l in exe.locals.iter().filter(|l| l.func_index == func_index) {
        fb.name_local(&Varnode::stack(l.offset as i64, 4), &l.name);
    }

    // Allocate blocks in address order; block 0 already exists.
    let leader_list: Vec<u32> = leaders.iter().copied().collect();
    let mut block_of: BTreeMap<u32, BlockId> = BTreeMap::new();
    for (i, &leader) in leader_list.iter().enumerate() {
        let bid = if i == 0 { BlockId(0) } else { fb.new_block() };
        block_of.insert(leader, bid);
    }

    let mut ctx = LiftCtx {
        fb,
        exe,
        data_names,
    };
    let mut idx = 0usize;
    while idx < insts.len() {
        let (addr, inst) = insts[idx];
        if let Some(bid) = block_of.get(&addr) {
            // Starting a new block: if the previous one fell through without
            // a terminator, add an explicit jump.
            if idx > 0 {
                let (_, prev) = insts[idx - 1];
                if !prev.is_terminator() {
                    ctx.fb.jump(*bid);
                }
            }
            ctx.fb.switch_to(*bid);
        }
        // lui+ori constant fusion (never split across blocks: the assembler
        // emits the pair adjacently and nothing branches between them).
        if let (Inst::Lui(rd, hi), Some(&(next_addr, Inst::Ori(rd2, rs2, lo)))) =
            (inst, insts.get(idx + 1))
        {
            let next_is_leader = block_of.contains_key(&next_addr);
            if rd == rd2 && rd == rs2 && !next_is_leader {
                let value = (hi << 14) | (lo as u32 & 0x3FFF);
                ctx.emit_const(rd, value);
                idx += 2;
                continue;
            }
        }
        ctx.translate(addr, inst, &insts, idx, &block_of)?;
        idx += 1;
    }
    Ok(ctx.fb.finish())
}

struct LiftCtx<'a> {
    fb: FunctionBuilder,
    exe: &'a Executable,
    data_names: &'a BTreeMap<u32, &'a str>,
}

impl LiftCtx<'_> {
    fn read(&self, r: Reg) -> Varnode {
        if r == Reg::ZERO {
            Varnode::constant(0, 4)
        } else {
            Varnode::register(r.num() as u64, 4)
        }
    }

    fn write(&mut self, r: Reg) -> Option<Varnode> {
        if r == Reg::ZERO {
            None
        } else {
            Some(Varnode::register(r.num() as u64, 4))
        }
    }

    fn emit_const(&mut self, rd: Reg, value: u32) {
        let k = Varnode::constant(value as u64, 4);
        if let Some(name) = self.data_names.get(&value) {
            self.fb.name_data_ptr(&k, *name);
        }
        if let Some(out) = self.write(rd) {
            self.fb.emit(Opcode::Copy, Some(out), vec![k]);
        }
    }

    fn binary(&mut self, opcode: Opcode, d: Reg, a: Varnode, b: Varnode) {
        if let Some(out) = self.write(d) {
            self.fb.emit(opcode, Some(out), vec![a, b]);
        }
    }

    fn call_args(&self, arity: usize) -> Vec<Varnode> {
        (0..arity.min(6))
            .map(|i| Varnode::register(Reg::arg(i as u8).expect("<=6").num() as u64, 4))
            .collect()
    }

    fn rv(&self) -> Varnode {
        Varnode::register(Reg::RV.num() as u64, 4)
    }

    #[allow(clippy::too_many_lines)]
    fn translate(
        &mut self,
        addr: u32,
        inst: Inst,
        insts: &[(u32, Inst)],
        idx: usize,
        block_of: &BTreeMap<u32, BlockId>,
    ) -> Result<(), LiftError> {
        use Inst::*;
        match inst {
            Add(d, a, b) => {
                let (va, vb) = (self.read(a), self.read(b));
                self.binary(Opcode::IntAdd, d, va, vb);
            }
            Sub(d, a, b) => {
                let (va, vb) = (self.read(a), self.read(b));
                self.binary(Opcode::IntSub, d, va, vb);
            }
            Mul(d, a, b) => {
                let (va, vb) = (self.read(a), self.read(b));
                self.binary(Opcode::IntMult, d, va, vb);
            }
            Div(d, a, b) => {
                let (va, vb) = (self.read(a), self.read(b));
                self.binary(Opcode::IntDiv, d, va, vb);
            }
            Rem(d, a, b) => {
                let (va, vb) = (self.read(a), self.read(b));
                self.binary(Opcode::IntRem, d, va, vb);
            }
            And(d, a, b) => {
                let (va, vb) = (self.read(a), self.read(b));
                self.binary(Opcode::IntAnd, d, va, vb);
            }
            Or(d, a, b) => {
                let (va, vb) = (self.read(a), self.read(b));
                self.binary(Opcode::IntOr, d, va, vb);
            }
            Xor(d, a, b) => {
                let (va, vb) = (self.read(a), self.read(b));
                self.binary(Opcode::IntXor, d, va, vb);
            }
            Sll(d, a, b) => {
                let (va, vb) = (self.read(a), self.read(b));
                self.binary(Opcode::IntLeft, d, va, vb);
            }
            Srl(d, a, b) => {
                let (va, vb) = (self.read(a), self.read(b));
                self.binary(Opcode::IntRight, d, va, vb);
            }
            Sra(d, a, b) => {
                let (va, vb) = (self.read(a), self.read(b));
                self.binary(Opcode::IntSRight, d, va, vb);
            }
            Slt(d, a, b) => {
                let (va, vb) = (self.read(a), self.read(b));
                self.binary(Opcode::IntSLess, d, va, vb);
            }
            Seq(d, a, b) => {
                let (va, vb) = (self.read(a), self.read(b));
                self.binary(Opcode::IntEqual, d, va, vb);
            }
            Addi(d, a, i) => {
                if d == Reg::ZERO {
                    return Ok(()); // canonical nop
                }
                if d == Reg::SP && a == Reg::SP {
                    // Frame setup/teardown: a decompiler normalizes the
                    // frame away, keeping `sp` constant across the body so
                    // stack slots and `lea`-derived pointers agree.
                    return Ok(());
                }
                // `addi rd, sp, off` is the address of a stack local.
                let va = self.read(a);
                self.binary(Opcode::IntAdd, d, va, Varnode::constant(i as i64 as u64, 4));
            }
            Andi(d, a, i) => {
                let va = self.read(a);
                self.binary(Opcode::IntAnd, d, va, Varnode::constant(i as i64 as u64, 4));
            }
            Ori(d, a, i) => {
                // Zero-extended immediate (see the encoder).
                let va = self.read(a);
                self.binary(
                    Opcode::IntOr,
                    d,
                    va,
                    Varnode::constant(i as u64 & 0x3FFF, 4),
                );
            }
            Xori(d, a, i) => {
                let va = self.read(a);
                self.binary(Opcode::IntXor, d, va, Varnode::constant(i as i64 as u64, 4));
            }
            Slli(d, a, i) => {
                let va = self.read(a);
                self.binary(Opcode::IntLeft, d, va, Varnode::constant(i as u64, 4));
            }
            Srli(d, a, i) => {
                let va = self.read(a);
                self.binary(Opcode::IntRight, d, va, Varnode::constant(i as u64, 4));
            }
            Lui(d, imm) => self.emit_const(d, imm << 14),
            Lw(d, base, off) | Lb(d, base, off) => {
                if base == Reg::SP {
                    // Decompiled view: stack slots are named variables.
                    let slot = Varnode::stack(off as i64, 4);
                    if let Some(out) = self.write(d) {
                        self.fb.emit(Opcode::Copy, Some(out), vec![slot]);
                    }
                } else {
                    let vb = self.read(base);
                    let a = self.fb.add(vb, Varnode::constant(off as i64 as u64, 4));
                    if let Some(out) = self.write(d) {
                        self.fb.emit(Opcode::Load, Some(out), vec![a]);
                    }
                }
            }
            Sw(s, base, off) | Sb(s, base, off) => {
                let vs = self.read(s);
                if base == Reg::SP {
                    let slot = Varnode::stack(off as i64, 4);
                    self.fb.emit(Opcode::Copy, Some(slot), vec![vs]);
                } else {
                    let vb = self.read(base);
                    let a = self.fb.add(vb, Varnode::constant(off as i64 as u64, 4));
                    self.fb.emit(Opcode::Store, None, vec![a, vs]);
                }
            }
            Beq(a, b, off) | Bne(a, b, off) | Blt(a, b, off) | Bge(a, b, off) => {
                let target = (addr as i64 + off as i64 * 4) as u32;
                let then_block = block_of[&target];
                if inst.is_unconditional_branch() {
                    self.fb.jump(then_block);
                    return Ok(());
                }
                let (va, vb) = (self.read(a), self.read(b));
                let cond = match inst {
                    Beq(..) => self.fb.binop(Opcode::IntEqual, va, vb),
                    Bne(..) => self.fb.binop(Opcode::IntNotEqual, va, vb),
                    Blt(..) => self.fb.binop(Opcode::IntSLess, va, vb),
                    Bge(..) => {
                        let lt = self.fb.binop(Opcode::IntSLess, va, vb);
                        let out = self.fb.temp(1);
                        self.fb
                            .emit(Opcode::BoolNegate, Some(out.clone()), vec![lt]);
                        out
                    }
                    _ => unreachable!("matched conditional branch"),
                };
                let fallthrough = insts
                    .get(idx + 1)
                    .map(|(a, _)| *a)
                    .and_then(|a| block_of.get(&a).copied());
                match fallthrough {
                    Some(else_block) => self.fb.cbranch(cond, then_block, else_block),
                    // Branch in the function's final slot: no fallthrough.
                    None => self.fb.cbranch(cond, then_block, then_block),
                }
            }
            Jal(off) => {
                let target = (addr as i64 + off as i64 * 4) as u32;
                let callee = self
                    .exe
                    .funcs
                    .iter()
                    .find(|f| f.addr == target)
                    .ok_or(LiftError::CallTargetUnknown { addr, target })?;
                let args = self.call_args(callee.params.len());
                let mut inputs = vec![Varnode::constant(target as u64, 8)];
                inputs.extend(args);
                let rv = self.rv();
                self.fb.emit(Opcode::Call, Some(rv), inputs);
            }
            Jalr(rd, rs) => {
                if inst.is_ret() {
                    let rv = self.rv();
                    self.fb.emit(Opcode::Return, None, vec![rv]);
                } else {
                    let target = self.read(rs);
                    let mut inputs = vec![target];
                    inputs.extend(self.call_args(6));
                    let out = self.write(rd);
                    self.fb.emit(Opcode::CallInd, out, inputs);
                }
            }
            Callx(index) => {
                let name = self
                    .exe
                    .imports
                    .get(index as usize)
                    .ok_or(LiftError::BadImportIndex { addr, index })?;
                let target = import_address(name);
                let args = self.call_args(import_arity(name));
                let mut inputs = vec![Varnode::constant(target, 8)];
                inputs.extend(args);
                let rv = self.rv();
                self.fb.emit(Opcode::Call, Some(rv), inputs);
            }
            Halt => {
                self.fb.emit(Opcode::Return, None, vec![]);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Assembler;

    fn lift_src(src: &str) -> Program {
        let exe = Assembler::new().assemble(src).unwrap();
        lift(&exe, "test").unwrap()
    }

    #[test]
    fn lifts_straight_line_with_imports() {
        let p = lift_src(
            r#"
.func main
.local buf 32
    lea a0, buf
    la  a1, fmt
    callx sprintf
    lea a0, buf
    callx SSL_write
    ret
.endfunc
.data
fmt: .asciz "{\"mac\":\"%s\"}"
"#,
        );
        let f = p.function_by_name("main").unwrap();
        assert_eq!(f.blocks().len(), 1);
        assert_eq!(f.callsites().count(), 2);
        // The la expands to a fused COPY of the data address.
        let copies: Vec<_> = f
            .ops()
            .filter(|o| o.opcode == Opcode::Copy && o.inputs[0].is_const())
            .collect();
        assert!(
            copies
                .iter()
                .any(|o| p.string_for(&o.inputs[0]) == Some("{\"mac\":\"%s\"}")),
            "fused constant points at the format string"
        );
        // Imports resolved by name.
        let names: Vec<_> = f
            .callsites()
            .filter_map(|c| c.call_target())
            .filter_map(|t| p.callee_name(t))
            .collect();
        assert_eq!(names, vec!["sprintf", "SSL_write"]);
        // sprintf is variadic: all 6 argument registers are call args.
        let sp = f.callsites().next().unwrap();
        assert_eq!(sp.call_args().len(), 6);
        // SSL_write has a 3-argument signature.
        let ssl = f.callsites().nth(1).unwrap();
        assert_eq!(ssl.call_args().len(), 3);
    }

    #[test]
    fn lifts_branches_into_cfg() {
        let p = lift_src(
            r#"
.func main
    li  t0, 3
loop:
    addi t0, t0, -1
    bne  t0, zero, loop
    ret
.endfunc
"#,
        );
        let f = p.function_by_name("main").unwrap();
        assert_eq!(f.blocks().len(), 3, "entry, loop body, exit");
        // The loop block branches back to itself and forward to the exit.
        let loop_block = &f.blocks()[1];
        assert_eq!(loop_block.successors.len(), 2);
        assert!(loop_block.successors.contains(&BlockId(1)));
        assert!(loop_block.successors.contains(&BlockId(2)));
        assert_eq!(f.predicate_count(), 1);
    }

    #[test]
    fn stack_slots_become_named_locals() {
        let p = lift_src(
            r#"
.func f x
.local count 4
    sw  a0, count(sp)
    lw  rv, count(sp)
    ret
.endfunc
"#,
        );
        let f = p.function_by_name("f").unwrap();
        // sw/lw on sp lift to COPYs of the stack varnode, not LOAD/STORE.
        assert!(f
            .ops()
            .all(|o| o.opcode != Opcode::Load && o.opcode != Opcode::Store));
        let slot = Varnode::stack(0, 4);
        assert_eq!(f.symbols().lookup(&slot).unwrap().name, "count");
        assert_eq!(f.params().len(), 1);
        assert_eq!(
            f.symbols().lookup(&f.params()[0]).unwrap().name,
            "x",
            "parameter name from the MRE symbol table"
        );
    }

    #[test]
    fn intra_program_calls_use_callee_arity() {
        let p = lift_src(
            r#"
.func helper a b
    add rv, a0, a1
    ret
.endfunc
.func main
    li a0, 1
    li a1, 2
    call helper
    halt
.endfunc
"#,
        );
        let main = p.function_by_name("main").unwrap();
        let call = main.callsites().next().unwrap();
        assert_eq!(call.call_args().len(), 2, "helper takes 2 params");
        let helper = p.function_by_name("helper").unwrap();
        assert_eq!(call.call_target(), Some(helper.entry()));
    }

    #[test]
    fn non_sp_memory_accesses_stay_loads_and_stores() {
        let p = lift_src(
            r#"
.func f p
    lw t0, 4(a0)
    sw t0, 8(a0)
    ret
.endfunc
"#,
        );
        let f = p.function_by_name("f").unwrap();
        assert_eq!(f.ops().filter(|o| o.opcode == Opcode::Load).count(), 1);
        assert_eq!(f.ops().filter(|o| o.opcode == Opcode::Store).count(), 1);
    }

    #[test]
    fn data_pointer_constants_get_symbol_names() {
        let p =
            lift_src(".func main\n la a0, path\n ret\n.endfunc\n.data\npath: .asciz \"/api/v1\"\n");
        let f = p.function_by_name("main").unwrap();
        let copy = f.ops().find(|o| o.opcode == Opcode::Copy).unwrap();
        let sym = f.symbols().lookup(&copy.inputs[0]).unwrap();
        assert_eq!(sym.name, "path");
        assert_eq!(sym.data_type, firmres_ir::DataType::DataPtr);
    }

    #[test]
    fn bad_import_index_reported() {
        // Hand-craft an executable with a callx beyond the import table.
        let mut exe = Assembler::new()
            .assemble(".func main\n callx puts\n ret\n.endfunc\n")
            .unwrap();
        exe.imports.clear();
        match lift(&exe, "t") {
            Err(LiftError::BadImportIndex { index: 0, .. }) => {}
            other => panic!("expected BadImportIndex, got {other:?}"),
        }
    }

    #[test]
    fn no_functions_rejected() {
        let exe = Executable::default();
        assert_eq!(lift(&exe, "t").unwrap_err(), LiftError::NoFunctions);
    }
}
