//! The MR32 instruction set.

use crate::Reg;
use std::fmt;

/// One MR32 machine instruction.
///
/// MR32 is a 32-bit fixed-width load/store RISC. Immediates are 14-bit
/// signed except `Lui` (18-bit upper immediate) and `Jal` (26-bit signed
/// word offset). Branch and jump offsets are in *instructions*, relative to
/// the branch's own address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// `rd = rs1 + rs2`
    Add(Reg, Reg, Reg),
    /// `rd = rs1 - rs2`
    Sub(Reg, Reg, Reg),
    /// `rd = rs1 * rs2`
    Mul(Reg, Reg, Reg),
    /// `rd = rs1 / rs2` (unsigned; division by zero yields 0)
    Div(Reg, Reg, Reg),
    /// `rd = rs1 % rs2` (unsigned; modulo zero yields 0)
    Rem(Reg, Reg, Reg),
    /// `rd = rs1 & rs2`
    And(Reg, Reg, Reg),
    /// `rd = rs1 | rs2`
    Or(Reg, Reg, Reg),
    /// `rd = rs1 ^ rs2`
    Xor(Reg, Reg, Reg),
    /// `rd = rs1 << (rs2 & 31)`
    Sll(Reg, Reg, Reg),
    /// `rd = rs1 >> (rs2 & 31)` (logical)
    Srl(Reg, Reg, Reg),
    /// `rd = (rs1 as i32) >> (rs2 & 31)` (arithmetic)
    Sra(Reg, Reg, Reg),
    /// `rd = (rs1 as i32) < (rs2 as i32)`
    Slt(Reg, Reg, Reg),
    /// `rd = rs1 == rs2`
    Seq(Reg, Reg, Reg),
    /// `rd = rs1 + imm`
    Addi(Reg, Reg, i16),
    /// `rd = rs1 & imm`
    Andi(Reg, Reg, i16),
    /// `rd = rs1 | imm`
    Ori(Reg, Reg, i16),
    /// `rd = rs1 ^ imm`
    Xori(Reg, Reg, i16),
    /// `rd = rs1 << imm`
    Slli(Reg, Reg, i16),
    /// `rd = rs1 >> imm` (logical)
    Srli(Reg, Reg, i16),
    /// `rd = imm18 << 14` (load upper immediate)
    Lui(Reg, u32),
    /// `rd = *(u32*)(rs1 + imm)`
    Lw(Reg, Reg, i16),
    /// `rd = *(u8*)(rs1 + imm)` (zero-extended)
    Lb(Reg, Reg, i16),
    /// `*(u32*)(rs1 + imm) = rd`
    Sw(Reg, Reg, i16),
    /// `*(u8*)(rs1 + imm) = rd as u8`
    Sb(Reg, Reg, i16),
    /// branch if `rs1 == rs2` to `pc + off` (instruction units)
    Beq(Reg, Reg, i16),
    /// branch if `rs1 != rs2`
    Bne(Reg, Reg, i16),
    /// branch if `(rs1 as i32) < (rs2 as i32)`
    Blt(Reg, Reg, i16),
    /// branch if `(rs1 as i32) >= (rs2 as i32)`
    Bge(Reg, Reg, i16),
    /// call: `ra = pc + 4; pc += off26 * 4`
    Jal(i32),
    /// indirect jump: `rd = pc + 4; pc = rs1`. `jalr zero, ra` is `ret`.
    Jalr(Reg, Reg),
    /// call an imported library function by import-table index
    Callx(u16),
    /// stop execution (only meaningful to the emulator)
    Halt,
}

impl Inst {
    /// Whether the instruction ends a basic block.
    pub fn is_terminator(self) -> bool {
        matches!(
            self,
            Inst::Beq(..)
                | Inst::Bne(..)
                | Inst::Blt(..)
                | Inst::Bge(..)
                | Inst::Jalr(..)
                | Inst::Halt
        )
    }

    /// The branch offset in instructions, for conditional branches.
    pub fn branch_offset(self) -> Option<i32> {
        match self {
            Inst::Beq(_, _, o) | Inst::Bne(_, _, o) | Inst::Blt(_, _, o) | Inst::Bge(_, _, o) => {
                Some(o as i32)
            }
            _ => None,
        }
    }

    /// Whether this is an unconditional branch (`beq zero, zero, off`).
    pub fn is_unconditional_branch(self) -> bool {
        matches!(self, Inst::Beq(a, b, _) if a == Reg::ZERO && b == Reg::ZERO)
    }

    /// Whether this is the `ret` idiom (`jalr zero, ra`).
    pub fn is_ret(self) -> bool {
        matches!(self, Inst::Jalr(rd, rs) if rd == Reg::ZERO && rs == Reg::RA)
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Inst::*;
        match *self {
            Add(d, a, b) => write!(f, "add {d}, {a}, {b}"),
            Sub(d, a, b) => write!(f, "sub {d}, {a}, {b}"),
            Mul(d, a, b) => write!(f, "mul {d}, {a}, {b}"),
            Div(d, a, b) => write!(f, "div {d}, {a}, {b}"),
            Rem(d, a, b) => write!(f, "rem {d}, {a}, {b}"),
            And(d, a, b) => write!(f, "and {d}, {a}, {b}"),
            Or(d, a, b) => write!(f, "or {d}, {a}, {b}"),
            Xor(d, a, b) => write!(f, "xor {d}, {a}, {b}"),
            Sll(d, a, b) => write!(f, "sll {d}, {a}, {b}"),
            Srl(d, a, b) => write!(f, "srl {d}, {a}, {b}"),
            Sra(d, a, b) => write!(f, "sra {d}, {a}, {b}"),
            Slt(d, a, b) => write!(f, "slt {d}, {a}, {b}"),
            Seq(d, a, b) => write!(f, "seq {d}, {a}, {b}"),
            Addi(d, a, i) => write!(f, "addi {d}, {a}, {i}"),
            Andi(d, a, i) => write!(f, "andi {d}, {a}, {i}"),
            Ori(d, a, i) => write!(f, "ori {d}, {a}, {i}"),
            Xori(d, a, i) => write!(f, "xori {d}, {a}, {i}"),
            Slli(d, a, i) => write!(f, "slli {d}, {a}, {i}"),
            Srli(d, a, i) => write!(f, "srli {d}, {a}, {i}"),
            Lui(d, i) => write!(f, "lui {d}, {i:#x}"),
            Lw(d, b, i) => write!(f, "lw {d}, {i}({b})"),
            Lb(d, b, i) => write!(f, "lb {d}, {i}({b})"),
            Sw(s, b, i) => write!(f, "sw {s}, {i}({b})"),
            Sb(s, b, i) => write!(f, "sb {s}, {i}({b})"),
            Beq(a, b, o) => write!(f, "beq {a}, {b}, {o}"),
            Bne(a, b, o) => write!(f, "bne {a}, {b}, {o}"),
            Blt(a, b, o) => write!(f, "blt {a}, {b}, {o}"),
            Bge(a, b, o) => write!(f, "bge {a}, {b}, {o}"),
            Jal(o) => write!(f, "jal {o}"),
            Jalr(d, s) => {
                if self.is_ret() {
                    write!(f, "ret")
                } else {
                    write!(f, "jalr {d}, {s}")
                }
            }
            Callx(i) => write!(f, "callx #{i}"),
            Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminators() {
        assert!(Inst::Beq(Reg::A0, Reg::ZERO, 2).is_terminator());
        assert!(Inst::Jalr(Reg::ZERO, Reg::RA).is_terminator());
        assert!(Inst::Halt.is_terminator());
        assert!(!Inst::Jal(4).is_terminator(), "calls do not end blocks");
        assert!(!Inst::Add(Reg::A0, Reg::A1, Reg::A2).is_terminator());
    }

    #[test]
    fn branch_offset_extraction() {
        assert_eq!(Inst::Bne(Reg::A0, Reg::ZERO, -3).branch_offset(), Some(-3));
        assert_eq!(Inst::Add(Reg::A0, Reg::A0, Reg::A0).branch_offset(), None);
    }

    #[test]
    fn ret_and_unconditional_idioms() {
        assert!(Inst::Jalr(Reg::ZERO, Reg::RA).is_ret());
        assert!(!Inst::Jalr(Reg::RA, Reg::A0).is_ret());
        assert!(Inst::Beq(Reg::ZERO, Reg::ZERO, 5).is_unconditional_branch());
        assert!(!Inst::Beq(Reg::A0, Reg::ZERO, 5).is_unconditional_branch());
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            Inst::Add(Reg::RV, Reg::A0, Reg::A1).to_string(),
            "add rv, a0, a1"
        );
        assert_eq!(Inst::Lw(Reg::T0, Reg::SP, -8).to_string(), "lw t0, -8(sp)");
        assert_eq!(Inst::Jalr(Reg::ZERO, Reg::RA).to_string(), "ret");
        assert_eq!(Inst::Callx(3).to_string(), "callx #3");
    }
}
