//! A two-pass assembler from textual MR32 assembly to an [`Executable`].
//!
//! # Source format
//!
//! ```text
//! ; comments start with ';' or '#'
//! .func send_ident mac sn      ; function with two named parameters
//! .local buf 64                ; named frame local, 64 bytes
//!     lea  a0, buf
//!     la   a1, fmt             ; absolute data address
//!     mov  a2, mac             ; no: registers only — 'mac' is a0 already
//!     callx sprintf
//!     lea  a0, buf
//!     callx SSL_write
//!     ret
//! .endfunc
//!
//! .data
//! fmt: .asciz "{\"mac\":\"%s\"}"
//! tbl: .word 1, 2, 3
//! pad: .space 16
//! ```
//!
//! The assembler auto-inserts a stack prologue (`addi sp, sp, -frame`) when
//! a function has locals, and the matching epilogue before each `ret`.
//!
//! # Pseudo-instructions
//!
//! | pseudo | expansion |
//! |---|---|
//! | `li rd, imm` | `addi` or `lui`+`ori` |
//! | `la rd, label` | `lui`+`ori` (absolute data address) |
//! | `lea rd, local` | `addi rd, sp, offset` |
//! | `mov rd, rs` | `add rd, rs, zero` |
//! | `b label` | `beq zero, zero, off` |
//! | `call fname` | `jal off` |
//! | `callx import` | `callx #index` (auto-registers the import) |
//! | `ret` | epilogue + `jalr zero, ra` |
//! | `nop` | `addi zero, zero, 0` |

use crate::exe::{Executable, FuncSymbol, LocalSymbol, CODE_BASE, DATA_BASE};
use crate::{encode, Inst, Reg};
use std::collections::BTreeMap;
use std::fmt;

/// An assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

/// The MR32 assembler.
///
/// Stateless between [`Assembler::assemble`] calls; constructing one is
/// free.
#[derive(Debug, Clone, Default)]
pub struct Assembler {
    _private: (),
}

#[derive(Debug, Clone, PartialEq)]
enum Arg {
    R(Reg),
    Imm(i64),
    /// `disp(base)` memory operand; disp may be a named local.
    Mem(MemOff, Reg),
    /// A bare symbol: code label, function, data label or local name.
    Sym(String),
}

#[derive(Debug, Clone, PartialEq)]
enum MemOff {
    Imm(i64),
    Local(String),
}

#[derive(Debug)]
struct PendingInst {
    line: usize,
    mnemonic: String,
    args: Vec<Arg>,
    /// Number of words this instruction expands to.
    size: usize,
}

#[derive(Debug)]
struct PendingFunc {
    name: String,
    params: Vec<String>,
    addr_index: usize,
    frame: i64,
    locals: BTreeMap<String, (i16, i64)>, // name -> (offset, size)
    code_labels: BTreeMap<String, usize>, // label -> word index
    insts: Vec<PendingInst>,
    saw_inst: bool,
    has_prologue: bool,
}

#[derive(Debug, Default)]
struct DataBuilder {
    bytes: Vec<u8>,
    labels: BTreeMap<String, u32>,
}

impl Assembler {
    /// Create an assembler.
    pub fn new() -> Self {
        Assembler::default()
    }

    /// Assemble `source` into a linked [`Executable`].
    ///
    /// The entry point is the function named `main` when present, otherwise
    /// the first function.
    ///
    /// # Errors
    ///
    /// Returns an [`AsmError`] naming the offending source line for syntax
    /// errors, unknown mnemonics/registers, out-of-range immediates,
    /// undefined labels, or structural problems (e.g. `.local` after code).
    pub fn assemble(&self, source: &str) -> Result<Executable, AsmError> {
        let mut funcs: Vec<PendingFunc> = Vec::new();
        let mut data = DataBuilder::default();
        let mut imports: Vec<String> = Vec::new();
        let mut in_data = false;
        let mut word_index = 0usize;

        let err = |line: usize, msg: String| AsmError { line, msg };

        for (lineno, raw) in source.lines().enumerate() {
            let line = lineno + 1;
            let text = strip_comment(raw).trim().to_string();
            if text.is_empty() {
                continue;
            }
            if let Some(rest) = text.strip_prefix(".func") {
                if in_data {
                    return Err(err(line, ".func inside .data section".into()));
                }
                let mut parts = rest.split_whitespace();
                let name = parts
                    .next()
                    .ok_or_else(|| err(line, ".func requires a name".into()))?
                    .to_string();
                if funcs.iter().any(|f| f.name == name) {
                    return Err(err(line, format!("duplicate function `{name}`")));
                }
                let params: Vec<String> = parts.map(|s| s.to_string()).collect();
                if params.len() > 6 {
                    return Err(err(line, "at most 6 parameters (a0-a5)".into()));
                }
                funcs.push(PendingFunc {
                    name,
                    params,
                    addr_index: word_index,
                    frame: 0,
                    locals: BTreeMap::new(),
                    code_labels: BTreeMap::new(),
                    insts: Vec::new(),
                    saw_inst: false,
                    has_prologue: false,
                });
                continue;
            }
            if text == ".endfunc" {
                if funcs.is_empty() {
                    return Err(err(line, ".endfunc without .func".into()));
                }
                continue;
            }
            if text == ".data" {
                in_data = true;
                continue;
            }
            if in_data {
                parse_data_line(&text, line, &mut data)?;
                continue;
            }
            if let Some(rest) = text.strip_prefix(".local") {
                let f = funcs
                    .last_mut()
                    .ok_or_else(|| err(line, ".local outside a function".into()))?;
                if f.saw_inst {
                    return Err(err(line, ".local must precede the function body".into()));
                }
                let mut parts = rest.split_whitespace();
                let name = parts
                    .next()
                    .ok_or_else(|| err(line, ".local requires a name".into()))?
                    .to_string();
                let size: i64 = parts
                    .next()
                    .ok_or_else(|| err(line, ".local requires a size".into()))?
                    .parse()
                    .map_err(|_| err(line, "bad .local size".into()))?;
                if size <= 0 || size > 4096 {
                    return Err(err(line, "local size must be 1..=4096".into()));
                }
                let aligned = (size + 3) & !3;
                // Locals are laid out upward from the post-prologue sp, so
                // `offset(sp)` operands and `lea` resolve to non-negative
                // displacements once the frame has been set up.
                let offset = f.frame as i16;
                f.frame += aligned;
                if f.locals.insert(name.clone(), (offset, size)).is_some() {
                    return Err(err(line, format!("duplicate local `{name}`")));
                }
                continue;
            }
            if text.starts_with('.') {
                return Err(err(line, format!("unknown directive `{text}`")));
            }
            // Label or instruction in the code section.
            let mut body = text.as_str();
            if let Some(colon) = label_prefix(body) {
                let f = funcs
                    .last_mut()
                    .ok_or_else(|| err(line, "label outside a function".into()))?;
                let label = body[..colon].to_string();
                if f.code_labels.contains_key(&label) {
                    return Err(err(line, format!("duplicate label `{label}`")));
                }
                // Label binds to the next emitted word.
                let at = word_index + pending_prologue_words(f);
                f.code_labels.insert(label, at);
                body = body[colon + 1..].trim();
                if body.is_empty() {
                    continue;
                }
            }
            let f = funcs
                .last_mut()
                .ok_or_else(|| err(line, "instruction outside a function".into()))?;
            // Insert the prologue lazily before the first instruction.
            if !f.saw_inst {
                f.saw_inst = true;
                if f.frame > 0 {
                    f.has_prologue = true;
                    word_index += 1;
                }
            }
            let (mnemonic, args) = parse_inst(body, line)?;
            // Register imports for callx in first pass so indices are stable.
            if mnemonic == "callx" {
                if let Some(Arg::Sym(name)) = args.first() {
                    if !imports.contains(name) {
                        imports.push(name.clone());
                    }
                }
            }
            let size = expansion_size(&mnemonic, &args, f.frame).map_err(|m| err(line, m))?;
            f.insts.push(PendingInst {
                line,
                mnemonic,
                args,
                size,
            });
            word_index += size;
        }

        if funcs.is_empty() {
            return Err(err(0, "no functions defined".into()));
        }
        for f in &funcs {
            if f.insts.is_empty() {
                return Err(err(0, format!("function `{}` has no body", f.name)));
            }
        }

        // Pass 2: emit.
        let func_addrs: BTreeMap<String, usize> = funcs
            .iter()
            .map(|f| (f.name.clone(), f.addr_index))
            .collect();
        let mut code: Vec<u32> = Vec::with_capacity(word_index);
        let mut out_funcs = Vec::new();
        let mut out_locals = Vec::new();
        for (fi, f) in funcs.iter().enumerate() {
            debug_assert_eq!(code.len(), f.addr_index, "layout drift in `{}`", f.name);
            out_funcs.push(FuncSymbol {
                name: f.name.clone(),
                addr: CODE_BASE + (f.addr_index as u32) * 4,
                params: f.params.clone(),
            });
            for (name, (offset, _)) in &f.locals {
                out_locals.push(LocalSymbol {
                    func_index: fi as u32,
                    name: name.clone(),
                    offset: *offset,
                });
            }
            if f.has_prologue {
                code.push(encode(Inst::Addi(Reg::SP, Reg::SP, (-f.frame) as i16)));
            }
            for p in &f.insts {
                let before = code.len();
                emit_inst(p, f, &func_addrs, &imports, &data, &mut code)?;
                debug_assert_eq!(code.len() - before, p.size, "size drift at line {}", p.line);
            }
        }

        let entry_index = func_addrs
            .get("main")
            .copied()
            .unwrap_or(funcs[0].addr_index);
        Ok(Executable {
            entry: CODE_BASE + (entry_index as u32) * 4,
            code,
            data: data.bytes,
            imports,
            funcs: out_funcs,
            locals: out_locals,
            data_syms: data.labels.into_iter().collect(),
        })
    }
}

fn pending_prologue_words(f: &PendingFunc) -> usize {
    usize::from(!f.saw_inst && f.frame > 0)
}

/// Strip `;`/`#` comments, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            ';' | '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// If the line starts with `label:`, the byte index of the colon.
fn label_prefix(s: &str) -> Option<usize> {
    let colon = s.find(':')?;
    let name = &s[..colon];
    (!name.is_empty()
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && !name.chars().next().unwrap().is_ascii_digit())
    .then_some(colon)
}

fn parse_int(s: &str) -> Option<i64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        return i64::from_str_radix(hex, 16).ok();
    }
    if let Some(hex) = s.strip_prefix("-0x") {
        return i64::from_str_radix(hex, 16).ok().map(|v| -v);
    }
    s.parse().ok()
}

fn parse_arg(s: &str, line: usize) -> Result<Arg, AsmError> {
    let s = s.trim();
    if s.is_empty() {
        return Err(AsmError {
            line,
            msg: "empty operand".into(),
        });
    }
    // Memory operand disp(base)
    if let Some(open) = s.find('(') {
        if let Some(close) = s.rfind(')') {
            let disp_s = &s[..open];
            let base_s = &s[open + 1..close];
            let base = Reg::parse(base_s.trim()).ok_or_else(|| AsmError {
                line,
                msg: format!("bad base register `{base_s}`"),
            })?;
            let disp = if disp_s.trim().is_empty() {
                MemOff::Imm(0)
            } else if let Some(v) = parse_int(disp_s) {
                MemOff::Imm(v)
            } else {
                MemOff::Local(disp_s.trim().to_string())
            };
            return Ok(Arg::Mem(disp, base));
        }
    }
    if let Some(r) = Reg::parse(s) {
        return Ok(Arg::R(r));
    }
    if let Some(v) = parse_int(s) {
        return Ok(Arg::Imm(v));
    }
    if s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return Ok(Arg::Sym(s.to_string()));
    }
    Err(AsmError {
        line,
        msg: format!("cannot parse operand `{s}`"),
    })
}

fn parse_inst(body: &str, line: usize) -> Result<(String, Vec<Arg>), AsmError> {
    let (mnemonic, rest) = match body.find(char::is_whitespace) {
        Some(i) => (&body[..i], body[i..].trim()),
        None => (body, ""),
    };
    let mut args = Vec::new();
    if !rest.is_empty() {
        for part in rest.split(',') {
            args.push(parse_arg(part, line)?);
        }
    }
    Ok((mnemonic.to_ascii_lowercase(), args))
}

fn fits14(v: i64) -> bool {
    (-(1 << 13)..(1 << 13)).contains(&v)
}

/// Number of code words an instruction expands to. Must not depend on
/// label addresses (sizes are fixed in pass 1).
fn expansion_size(mnemonic: &str, args: &[Arg], frame: i64) -> Result<usize, String> {
    Ok(match mnemonic {
        "li" => match args.get(1) {
            Some(Arg::Imm(v)) if fits14(*v) => 1,
            Some(Arg::Imm(_)) => 2,
            _ => return Err("li requires `li rd, imm`".into()),
        },
        "la" | "laf" => 2,
        "ret" if frame > 0 => 2,
        "ret" => 1,
        _ => 1,
    })
}

fn reg_arg(args: &[Arg], i: usize, line: usize, mn: &str) -> Result<Reg, AsmError> {
    match args.get(i) {
        Some(Arg::R(r)) => Ok(*r),
        _ => Err(AsmError {
            line,
            msg: format!("`{mn}` operand {i} must be a register"),
        }),
    }
}

fn imm_arg(args: &[Arg], i: usize, line: usize, mn: &str) -> Result<i64, AsmError> {
    match args.get(i) {
        Some(Arg::Imm(v)) => Ok(*v),
        _ => Err(AsmError {
            line,
            msg: format!("`{mn}` operand {i} must be an immediate"),
        }),
    }
}

fn imm14_checked(v: i64, line: usize, what: &str) -> Result<i16, AsmError> {
    if fits14(v) {
        Ok(v as i16)
    } else {
        Err(AsmError {
            line,
            msg: format!("{what} {v} does not fit in 14 bits"),
        })
    }
}

#[allow(clippy::too_many_lines)]
fn emit_inst(
    p: &PendingInst,
    f: &PendingFunc,
    func_addrs: &BTreeMap<String, usize>,
    imports: &[String],
    data: &DataBuilder,
    code: &mut Vec<u32>,
) -> Result<(), AsmError> {
    let line = p.line;
    let mn = p.mnemonic.as_str();
    let args = &p.args;
    let e = |msg: String| AsmError { line, msg };

    let resolve_mem = |off: &MemOff| -> Result<i16, AsmError> {
        match off {
            MemOff::Imm(v) => imm14_checked(*v, line, "displacement"),
            MemOff::Local(name) => f
                .locals
                .get(name)
                .map(|(o, _)| *o)
                .ok_or_else(|| e(format!("unknown local `{name}`"))),
        }
    };
    let branch_off = |target: &str, at: usize| -> Result<i16, AsmError> {
        let t = f
            .code_labels
            .get(target)
            .ok_or_else(|| e(format!("unknown label `{target}`")))?;
        let delta = *t as i64 - at as i64;
        imm14_checked(delta, line, "branch offset")
    };

    let rrr = |ctor: fn(Reg, Reg, Reg) -> Inst, args: &[Arg]| -> Result<Inst, AsmError> {
        Ok(ctor(
            reg_arg(args, 0, line, mn)?,
            reg_arg(args, 1, line, mn)?,
            reg_arg(args, 2, line, mn)?,
        ))
    };
    let rri = |ctor: fn(Reg, Reg, i16) -> Inst, args: &[Arg]| -> Result<Inst, AsmError> {
        let v = imm_arg(args, 2, line, mn)?;
        Ok(ctor(
            reg_arg(args, 0, line, mn)?,
            reg_arg(args, 1, line, mn)?,
            imm14_checked(v, line, "immediate")?,
        ))
    };
    let mem = |ctor: fn(Reg, Reg, i16) -> Inst, args: &[Arg]| -> Result<Inst, AsmError> {
        let r = reg_arg(args, 0, line, mn)?;
        match args.get(1) {
            Some(Arg::Mem(off, base)) => Ok(ctor(r, *base, resolve_mem(off)?)),
            _ => Err(e(format!("`{mn}` operand 1 must be disp(base)"))),
        }
    };
    let cond = |ctor: fn(Reg, Reg, i16) -> Inst, args: &[Arg]| -> Result<Inst, AsmError> {
        let a = reg_arg(args, 0, line, mn)?;
        let b = reg_arg(args, 1, line, mn)?;
        match args.get(2) {
            Some(Arg::Sym(target)) => Ok(ctor(a, b, branch_off(target, code.len())?)),
            Some(Arg::Imm(v)) => Ok(ctor(a, b, imm14_checked(*v, line, "branch offset")?)),
            _ => Err(e(format!("`{mn}` needs a target label"))),
        }
    };

    match mn {
        "add" => code.push(encode(rrr(Inst::Add, args)?)),
        "sub" => code.push(encode(rrr(Inst::Sub, args)?)),
        "mul" => code.push(encode(rrr(Inst::Mul, args)?)),
        "div" => code.push(encode(rrr(Inst::Div, args)?)),
        "rem" => code.push(encode(rrr(Inst::Rem, args)?)),
        "and" => code.push(encode(rrr(Inst::And, args)?)),
        "or" => code.push(encode(rrr(Inst::Or, args)?)),
        "xor" => code.push(encode(rrr(Inst::Xor, args)?)),
        "sll" => code.push(encode(rrr(Inst::Sll, args)?)),
        "srl" => code.push(encode(rrr(Inst::Srl, args)?)),
        "sra" => code.push(encode(rrr(Inst::Sra, args)?)),
        "slt" => code.push(encode(rrr(Inst::Slt, args)?)),
        "seq" => code.push(encode(rrr(Inst::Seq, args)?)),
        "addi" => code.push(encode(rri(Inst::Addi, args)?)),
        "andi" => code.push(encode(rri(Inst::Andi, args)?)),
        "ori" => code.push(encode(rri(Inst::Ori, args)?)),
        "xori" => code.push(encode(rri(Inst::Xori, args)?)),
        "slli" => code.push(encode(rri(Inst::Slli, args)?)),
        "srli" => code.push(encode(rri(Inst::Srli, args)?)),
        "lw" => code.push(encode(mem(Inst::Lw, args)?)),
        "lb" => code.push(encode(mem(Inst::Lb, args)?)),
        "sw" => code.push(encode(mem(Inst::Sw, args)?)),
        "sb" => code.push(encode(mem(Inst::Sb, args)?)),
        "beq" => code.push(encode(cond(Inst::Beq, args)?)),
        "bne" => code.push(encode(cond(Inst::Bne, args)?)),
        "blt" => code.push(encode(cond(Inst::Blt, args)?)),
        "bge" => code.push(encode(cond(Inst::Bge, args)?)),
        "b" => match args.first() {
            Some(Arg::Sym(target)) => {
                let off = branch_off(target, code.len())?;
                code.push(encode(Inst::Beq(Reg::ZERO, Reg::ZERO, off)));
            }
            _ => return Err(e("`b` needs a target label".into())),
        },
        "mov" => {
            let d = reg_arg(args, 0, line, mn)?;
            let s = reg_arg(args, 1, line, mn)?;
            code.push(encode(Inst::Add(d, s, Reg::ZERO)));
        }
        "li" => {
            let d = reg_arg(args, 0, line, mn)?;
            let v = imm_arg(args, 1, line, mn)?;
            if !(0..=u32::MAX as i64).contains(&v) && !fits14(v) {
                return Err(e(format!("li immediate {v} out of 32-bit range")));
            }
            emit_li(code, d, v);
        }
        "la" => {
            let d = reg_arg(args, 0, line, mn)?;
            match args.get(1) {
                Some(Arg::Sym(label)) => {
                    let addr = data
                        .labels
                        .get(label)
                        .copied()
                        .ok_or_else(|| e(format!("unknown data label `{label}`")))?;
                    emit_abs32(code, d, addr);
                }
                _ => return Err(e("`la` needs a data label".into())),
            }
        }
        "lea" => {
            let d = reg_arg(args, 0, line, mn)?;
            match args.get(1) {
                Some(Arg::Sym(local)) => {
                    let (off, _) = f
                        .locals
                        .get(local)
                        .ok_or_else(|| e(format!("unknown local `{local}`")))?;
                    code.push(encode(Inst::Addi(d, Reg::SP, *off)));
                }
                _ => return Err(e("`lea` needs a local name".into())),
            }
        }
        "laf" => {
            let d = reg_arg(args, 0, line, mn)?;
            match args.get(1) {
                Some(Arg::Sym(name)) => {
                    let target = func_addrs
                        .get(name)
                        .copied()
                        .ok_or_else(|| e(format!("unknown function `{name}`")))?;
                    emit_abs32(code, d, CODE_BASE + (target as u32) * 4);
                }
                _ => return Err(e("`laf` needs a function name".into())),
            }
        }
        "call" => match args.first() {
            Some(Arg::Sym(name)) => {
                let target = func_addrs
                    .get(name)
                    .copied()
                    .ok_or_else(|| e(format!("unknown function `{name}`")))?;
                let off = target as i64 - code.len() as i64;
                code.push(encode(Inst::Jal(off as i32)));
            }
            _ => return Err(e("`call` needs a function name".into())),
        },
        "callx" => match args.first() {
            Some(Arg::Sym(name)) => {
                let idx = imports
                    .iter()
                    .position(|i| i == name)
                    .expect("import registered in pass 1");
                code.push(encode(Inst::Callx(idx as u16)));
            }
            _ => return Err(e("`callx` needs an import name".into())),
        },
        "ret" => {
            if f.frame > 0 {
                code.push(encode(Inst::Addi(Reg::SP, Reg::SP, f.frame as i16)));
            }
            code.push(encode(Inst::Jalr(Reg::ZERO, Reg::RA)));
        }
        "jalr" => {
            let d = reg_arg(args, 0, line, mn)?;
            let s = reg_arg(args, 1, line, mn)?;
            code.push(encode(Inst::Jalr(d, s)));
        }
        "nop" => code.push(encode(Inst::Addi(Reg::ZERO, Reg::ZERO, 0))),
        "halt" => code.push(encode(Inst::Halt)),
        other => return Err(e(format!("unknown mnemonic `{other}`"))),
    }
    Ok(())
}

fn emit_li(code: &mut Vec<u32>, d: Reg, v: i64) {
    if fits14(v) {
        code.push(encode(Inst::Addi(d, Reg::ZERO, v as i16)));
    } else {
        emit_abs32(code, d, v as u32);
    }
}

fn emit_abs32(code: &mut Vec<u32>, d: Reg, value: u32) {
    let hi = value >> 14;
    let lo = value & 0x3FFF;
    code.push(encode(Inst::Lui(d, hi)));
    code.push(encode(Inst::Ori(d, d, lo as i16)));
}

fn parse_data_line(text: &str, line: usize, data: &mut DataBuilder) -> Result<(), AsmError> {
    let e = |msg: String| AsmError { line, msg };
    let mut body = text;
    if let Some(colon) = label_prefix(body) {
        let label = body[..colon].to_string();
        let addr = DATA_BASE + data.bytes.len() as u32;
        if data.labels.insert(label.clone(), addr).is_some() {
            return Err(e(format!("duplicate data label `{label}`")));
        }
        body = body[colon + 1..].trim();
        if body.is_empty() {
            return Ok(());
        }
    }
    if let Some(rest) = body.strip_prefix(".asciz") {
        let s = parse_string_literal(rest.trim(), line)?;
        data.bytes.extend_from_slice(s.as_bytes());
        data.bytes.push(0);
        return Ok(());
    }
    if let Some(rest) = body.strip_prefix(".word") {
        for part in rest.split(',') {
            let v = parse_int(part).ok_or_else(|| e(format!("bad .word value `{part}`")))?;
            data.bytes.extend_from_slice(&(v as u32).to_le_bytes());
        }
        return Ok(());
    }
    if let Some(rest) = body.strip_prefix(".byte") {
        for part in rest.split(',') {
            let v = parse_int(part).ok_or_else(|| e(format!("bad .byte value `{part}`")))?;
            data.bytes.push(v as u8);
        }
        return Ok(());
    }
    if let Some(rest) = body.strip_prefix(".space") {
        let n: usize = rest
            .trim()
            .parse()
            .map_err(|_| e(format!("bad .space size `{}`", rest.trim())))?;
        data.bytes.resize(data.bytes.len() + n, 0);
        return Ok(());
    }
    Err(e(format!("unknown data directive `{body}`")))
}

fn parse_string_literal(s: &str, line: usize) -> Result<String, AsmError> {
    let e = |msg: &str| AsmError {
        line,
        msg: msg.to_string(),
    };
    let inner = s
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .ok_or_else(|| e("string literal must be double-quoted"))?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('0') => out.push('\0'),
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            other => return Err(e(&format!("bad escape `\\{}`", other.unwrap_or(' ')))),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode;

    const HELLO: &str = r#"
.func main
    la   a0, msg
    callx puts
    ret
.endfunc
.data
msg: .asciz "hello"
"#;

    #[test]
    fn assembles_hello() {
        let exe = Assembler::new().assemble(HELLO).unwrap();
        assert_eq!(exe.entry, CODE_BASE);
        assert_eq!(exe.imports, vec!["puts".to_string()]);
        assert_eq!(exe.funcs.len(), 1);
        assert_eq!(exe.data, b"hello\0");
        assert_eq!(exe.data_syms, vec![("msg".to_string(), DATA_BASE)]);
        // la expands to lui+ori, then callx, then ret (no frame -> 1 word).
        assert_eq!(exe.code.len(), 4);
        assert_eq!(decode(exe.code[2]).unwrap(), Inst::Callx(0));
        assert!(decode(exe.code[3]).unwrap().is_ret());
    }

    #[test]
    fn locals_get_frame_and_prologue() {
        let src = r#"
.func f x
.local buf 64
.local n 4
    lea a0, buf
    sw  a0, n(sp)
    ret
.endfunc
"#;
        let exe = Assembler::new().assemble(src).unwrap();
        // prologue + lea + sw + (epilogue+jalr)
        assert_eq!(exe.code.len(), 5);
        assert_eq!(
            decode(exe.code[0]).unwrap(),
            Inst::Addi(Reg::SP, Reg::SP, -68)
        );
        assert_eq!(
            decode(exe.code[1]).unwrap(),
            Inst::Addi(Reg::A0, Reg::SP, 0)
        );
        assert_eq!(decode(exe.code[2]).unwrap(), Inst::Sw(Reg::A0, Reg::SP, 64));
        assert_eq!(
            decode(exe.code[3]).unwrap(),
            Inst::Addi(Reg::SP, Reg::SP, 68)
        );
        assert_eq!(exe.locals.len(), 2);
        let names: Vec<_> = exe.locals.iter().map(|l| l.name.as_str()).collect();
        assert!(names.contains(&"buf"));
        assert!(names.contains(&"n"));
        assert_eq!(exe.funcs[0].params, vec!["x".to_string()]);
    }

    #[test]
    fn branches_resolve_labels() {
        let src = r#"
.func main
    li  t0, 3
loop:
    addi t0, t0, -1
    bne  t0, zero, loop
    ret
.endfunc
"#;
        let exe = Assembler::new().assemble(src).unwrap();
        // li(1) addi(1) bne(1) ret(1)
        assert_eq!(exe.code.len(), 4);
        assert_eq!(
            decode(exe.code[2]).unwrap(),
            Inst::Bne(Reg::T0, Reg::ZERO, -1)
        );
    }

    #[test]
    fn call_between_functions() {
        let src = r#"
.func helper
    ret
.endfunc
.func main
    call helper
    halt
.endfunc
"#;
        let exe = Assembler::new().assemble(src).unwrap();
        assert_eq!(exe.entry, CODE_BASE + 4, "entry is main");
        assert_eq!(decode(exe.code[1]).unwrap(), Inst::Jal(-1));
    }

    #[test]
    fn li_wide_expands_to_lui_ori() {
        let src = ".func main\n li a0, 0x401234\n ret\n.endfunc\n";
        let exe = Assembler::new().assemble(src).unwrap();
        assert_eq!(exe.code.len(), 3);
        assert_eq!(
            decode(exe.code[0]).unwrap(),
            Inst::Lui(Reg::A0, 0x401234 >> 14)
        );
        assert_eq!(
            decode(exe.code[1]).unwrap(),
            Inst::Ori(Reg::A0, Reg::A0, (0x401234 & 0x3FFF) as i16)
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let src = ".func main\n frob a0\n ret\n.endfunc\n";
        let err = Assembler::new().assemble(src).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.msg.contains("frob"));
    }

    #[test]
    fn rejects_local_after_code() {
        let src = ".func main\n nop\n.local x 4\n ret\n.endfunc\n";
        let err = Assembler::new().assemble(src).unwrap_err();
        assert!(err.msg.contains(".local"));
    }

    #[test]
    fn rejects_duplicate_function() {
        let src = ".func f\n ret\n.endfunc\n.func f\n ret\n.endfunc\n";
        let err = Assembler::new().assemble(src).unwrap_err();
        assert!(err.msg.contains("duplicate function"));
    }

    #[test]
    fn rejects_unknown_label() {
        let src = ".func main\n b nowhere\n ret\n.endfunc\n";
        let err = Assembler::new().assemble(src).unwrap_err();
        assert!(err.msg.contains("nowhere"));
    }

    #[test]
    fn rejects_empty_source() {
        assert!(Assembler::new().assemble("").is_err());
        assert!(Assembler::new().assemble("; just a comment\n").is_err());
    }

    #[test]
    fn comments_respect_strings() {
        let src = ".func main\n ret\n.endfunc\n.data\ns: .asciz \"a;b#c\"\n";
        let exe = Assembler::new().assemble(src).unwrap();
        assert_eq!(exe.data, b"a;b#c\0");
    }

    #[test]
    fn string_escapes() {
        let src = ".func main\n ret\n.endfunc\n.data\ns: .asciz \"a\\n\\\"b\\\\\"\n";
        let exe = Assembler::new().assemble(src).unwrap();
        assert_eq!(exe.data, b"a\n\"b\\\0");
    }

    #[test]
    fn word_byte_space_directives() {
        let src =
            ".func main\n ret\n.endfunc\n.data\nw: .word 1, 0x10\nb: .byte 7, 8\np: .space 3\n";
        let exe = Assembler::new().assemble(src).unwrap();
        assert_eq!(exe.data.len(), 8 + 2 + 3);
        assert_eq!(&exe.data[..4], &1u32.to_le_bytes());
        assert_eq!(exe.data[8], 7);
        let labels: BTreeMap<_, _> = exe.data_syms.iter().cloned().collect();
        assert_eq!(labels["w"], DATA_BASE);
        assert_eq!(labels["b"], DATA_BASE + 8);
        assert_eq!(labels["p"], DATA_BASE + 10);
    }

    #[test]
    fn laf_loads_function_address() {
        let src = r#"
.func handler
    ret
.endfunc
.func main
    laf t0, handler
    mov a0, t0
    callx register_callback
    halt
.endfunc
"#;
        let exe = Assembler::new().assemble(src).unwrap();
        assert_eq!(
            decode(exe.code[1]).unwrap(),
            Inst::Lui(Reg::T0, CODE_BASE >> 14)
        );
        assert_eq!(
            decode(exe.code[2]).unwrap(),
            Inst::Ori(Reg::T0, Reg::T0, (CODE_BASE & 0x3FFF) as i16)
        );
        let err = Assembler::new()
            .assemble(".func main\n laf t0, nowhere\n ret\n.endfunc\n")
            .unwrap_err();
        assert!(err.msg.contains("nowhere"));
    }

    #[test]
    fn import_indices_are_first_use_order() {
        let src = ".func main\n callx b_fn\n callx a_fn\n callx b_fn\n ret\n.endfunc\n";
        let exe = Assembler::new().assemble(src).unwrap();
        assert_eq!(exe.imports, vec!["b_fn".to_string(), "a_fn".to_string()]);
        assert_eq!(decode(exe.code[0]).unwrap(), Inst::Callx(0));
        assert_eq!(decode(exe.code[1]).unwrap(), Inst::Callx(1));
        assert_eq!(decode(exe.code[2]).unwrap(), Inst::Callx(0));
    }
}
