//! The MRE executable container format.
//!
//! MRE is the object format firmware executables in the synthetic corpus
//! are stored in: code and data images, an import table for library
//! functions, and a symbol table carrying the function/parameter/local
//! names that a real-world decompiler would recover (and which FIRMRES's
//! semantic enrichment relies on).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Load address of the first code word.
pub const CODE_BASE: u32 = 0x0001_0000;
/// Load address of the first data byte.
pub const DATA_BASE: u32 = 0x0040_0000;

const MAGIC: &[u8; 4] = b"MRE1";
const VERSION: u16 = 1;

/// A function symbol: entry address, name, and named parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncSymbol {
    /// Function name.
    pub name: String,
    /// Absolute entry address (within the code image).
    pub addr: u32,
    /// Parameter names, in ABI order (`a0`, `a1`, …).
    pub params: Vec<String>,
}

/// A named stack local of a function, identified by frame offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalSymbol {
    /// Index into the executable's function table.
    pub func_index: u32,
    /// Local variable name.
    pub name: String,
    /// Frame offset (negative, sp-relative after prologue).
    pub offset: i16,
}

/// A fully linked MR32 executable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Executable {
    /// Entry point address.
    pub entry: u32,
    /// Code image as instruction words, loaded at [`CODE_BASE`].
    pub code: Vec<u32>,
    /// Data image, loaded at [`DATA_BASE`].
    pub data: Vec<u8>,
    /// Import table; `Callx(i)` calls `imports[i]`.
    pub imports: Vec<String>,
    /// Function symbols, sorted by address.
    pub funcs: Vec<FuncSymbol>,
    /// Named stack locals.
    pub locals: Vec<LocalSymbol>,
    /// Named data objects `(name, absolute address)`.
    pub data_syms: Vec<(String, u32)>,
}

/// Errors from parsing an MRE image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExeError {
    /// The image does not start with the MRE magic.
    BadMagic,
    /// The format version is not supported.
    UnsupportedVersion(u16),
    /// The image ended before the declared contents.
    Truncated,
    /// The trailing checksum does not match the contents.
    BadChecksum {
        /// Checksum stored in the image.
        stored: u32,
        /// Checksum computed over the image contents.
        computed: u32,
    },
    /// A name field is not valid UTF-8.
    BadUtf8,
    /// A declared count or offset is impossibly large for the image.
    Corrupt(&'static str),
}

impl fmt::Display for ExeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExeError::BadMagic => write!(f, "not an MRE executable (bad magic)"),
            ExeError::UnsupportedVersion(v) => write!(f, "unsupported MRE version {v}"),
            ExeError::Truncated => write!(f, "truncated MRE image"),
            ExeError::BadChecksum { stored, computed } => {
                write!(
                    f,
                    "MRE checksum mismatch: stored {stored:#x}, computed {computed:#x}"
                )
            }
            ExeError::BadUtf8 => write!(f, "MRE symbol name is not valid UTF-8"),
            ExeError::Corrupt(what) => write!(f, "corrupt MRE image: {what}"),
        }
    }
}

impl std::error::Error for ExeError {}

fn fnv32(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u16_le(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String, ExeError> {
    if buf.remaining() < 2 {
        return Err(ExeError::Truncated);
    }
    let len = buf.get_u16_le() as usize;
    if buf.remaining() < len {
        return Err(ExeError::Truncated);
    }
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).map_err(|_| ExeError::BadUtf8)
}

impl Executable {
    /// Address one past the last code word.
    pub fn code_end(&self) -> u32 {
        CODE_BASE + (self.code.len() as u32) * 4
    }

    /// The instruction word at absolute address `addr`, if in range and
    /// word-aligned.
    pub fn word_at(&self, addr: u32) -> Option<u32> {
        if addr < CODE_BASE || !addr.is_multiple_of(4) {
            return None;
        }
        self.code.get(((addr - CODE_BASE) / 4) as usize).copied()
    }

    /// The function symbol covering `addr`, if any.
    pub fn func_at(&self, addr: u32) -> Option<&FuncSymbol> {
        self.funcs
            .iter()
            .filter(|f| f.addr <= addr)
            .max_by_key(|f| f.addr)
            .filter(|_| addr < self.code_end())
    }

    /// Find a function symbol by name.
    pub fn func_by_name(&self, name: &str) -> Option<&FuncSymbol> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Serialize to the MRE wire format.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u16_le(0); // flags
        buf.put_u32_le(self.entry);
        buf.put_u32_le(self.code.len() as u32);
        buf.put_u32_le(self.data.len() as u32);
        buf.put_u32_le(self.imports.len() as u32);
        buf.put_u32_le(self.funcs.len() as u32);
        buf.put_u32_le(self.locals.len() as u32);
        buf.put_u32_le(self.data_syms.len() as u32);
        for w in &self.code {
            buf.put_u32_le(*w);
        }
        buf.put_slice(&self.data);
        for imp in &self.imports {
            put_str(&mut buf, imp);
        }
        for f in &self.funcs {
            buf.put_u32_le(f.addr);
            put_str(&mut buf, &f.name);
            buf.put_u8(f.params.len() as u8);
            for p in &f.params {
                put_str(&mut buf, p);
            }
        }
        for l in &self.locals {
            buf.put_u32_le(l.func_index);
            buf.put_i16_le(l.offset);
            put_str(&mut buf, &l.name);
        }
        for (name, addr) in &self.data_syms {
            buf.put_u32_le(*addr);
            put_str(&mut buf, name);
        }
        let csum = fnv32(&buf);
        buf.put_u32_le(csum);
        buf.freeze()
    }

    /// Parse an MRE image.
    ///
    /// # Errors
    ///
    /// Returns an [`ExeError`] for bad magic, version, truncation,
    /// checksum mismatch, or malformed symbol data.
    pub fn from_bytes(image: &[u8]) -> Result<Executable, ExeError> {
        if image.len() < MAGIC.len() + 4 {
            return Err(ExeError::Truncated);
        }
        if &image[..4] != MAGIC {
            return Err(ExeError::BadMagic);
        }
        let (payload, csum_bytes) = image.split_at(image.len() - 4);
        let stored = u32::from_le_bytes(csum_bytes.try_into().expect("4 bytes"));
        let computed = fnv32(payload);
        if stored != computed {
            return Err(ExeError::BadChecksum { stored, computed });
        }
        let mut buf = Bytes::copy_from_slice(&payload[4..]);
        if buf.remaining() < 2 + 2 + 4 + 6 * 4 {
            return Err(ExeError::Truncated);
        }
        let version = buf.get_u16_le();
        if version != VERSION {
            return Err(ExeError::UnsupportedVersion(version));
        }
        let _flags = buf.get_u16_le();
        let entry = buf.get_u32_le();
        let ncode = buf.get_u32_le() as usize;
        let ndata = buf.get_u32_le() as usize;
        let nimports = buf.get_u32_le() as usize;
        let nfuncs = buf.get_u32_le() as usize;
        let nlocals = buf.get_u32_le() as usize;
        let ndatasyms = buf.get_u32_le() as usize;
        if ncode.checked_mul(4).is_none_or(|b| b > buf.remaining()) {
            return Err(ExeError::Corrupt("code length exceeds image"));
        }
        let mut code = Vec::with_capacity(ncode);
        for _ in 0..ncode {
            code.push(buf.get_u32_le());
        }
        if ndata > buf.remaining() {
            return Err(ExeError::Corrupt("data length exceeds image"));
        }
        let data = buf.copy_to_bytes(ndata).to_vec();
        let mut imports = Vec::with_capacity(nimports.min(1024));
        for _ in 0..nimports {
            imports.push(get_str(&mut buf)?);
        }
        let mut funcs = Vec::with_capacity(nfuncs.min(1024));
        for _ in 0..nfuncs {
            if buf.remaining() < 4 {
                return Err(ExeError::Truncated);
            }
            let addr = buf.get_u32_le();
            let name = get_str(&mut buf)?;
            if buf.remaining() < 1 {
                return Err(ExeError::Truncated);
            }
            let nparams = buf.get_u8() as usize;
            let mut params = Vec::with_capacity(nparams);
            for _ in 0..nparams {
                params.push(get_str(&mut buf)?);
            }
            funcs.push(FuncSymbol { name, addr, params });
        }
        let mut locals = Vec::with_capacity(nlocals.min(4096));
        for _ in 0..nlocals {
            if buf.remaining() < 6 {
                return Err(ExeError::Truncated);
            }
            let func_index = buf.get_u32_le();
            let offset = buf.get_i16_le();
            let name = get_str(&mut buf)?;
            if func_index as usize >= funcs.len() {
                return Err(ExeError::Corrupt(
                    "local symbol references unknown function",
                ));
            }
            locals.push(LocalSymbol {
                func_index,
                name,
                offset,
            });
        }
        let mut data_syms = Vec::with_capacity(ndatasyms.min(4096));
        for _ in 0..ndatasyms {
            if buf.remaining() < 4 {
                return Err(ExeError::Truncated);
            }
            let addr = buf.get_u32_le();
            let name = get_str(&mut buf)?;
            data_syms.push((name, addr));
        }
        Ok(Executable {
            entry,
            code,
            data,
            imports,
            funcs,
            locals,
            data_syms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Executable {
        Executable {
            entry: CODE_BASE,
            code: vec![0xdead_beef, 0x1234_5678, 0],
            data: b"hello\0world\0".to_vec(),
            imports: vec!["sprintf".into(), "SSL_write".into()],
            funcs: vec![
                FuncSymbol {
                    name: "main".into(),
                    addr: CODE_BASE,
                    params: vec![],
                },
                FuncSymbol {
                    name: "send_ident".into(),
                    addr: CODE_BASE + 8,
                    params: vec!["mac".into(), "sn".into()],
                },
            ],
            locals: vec![LocalSymbol {
                func_index: 1,
                name: "buf".into(),
                offset: -32,
            }],
            data_syms: vec![("fmt".into(), DATA_BASE)],
        }
    }

    #[test]
    fn round_trip() {
        let exe = sample();
        let bytes = exe.to_bytes();
        let back = Executable::from_bytes(&bytes).unwrap();
        assert_eq!(back, exe);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_bytes().to_vec();
        bytes[0] = b'X';
        assert_eq!(Executable::from_bytes(&bytes), Err(ExeError::BadMagic));
    }

    #[test]
    fn corruption_detected_by_checksum() {
        let mut bytes = sample().to_bytes().to_vec();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        match Executable::from_bytes(&bytes) {
            Err(ExeError::BadChecksum { .. }) => {}
            other => panic!("expected checksum error, got {other:?}"),
        }
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample().to_bytes();
        // Cut in the middle: checksum mismatch or truncated, never a panic.
        for cut in [0, 3, 10, bytes.len() - 5] {
            assert!(
                Executable::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn word_and_func_lookup() {
        let exe = sample();
        assert_eq!(exe.word_at(CODE_BASE), Some(0xdead_beef));
        assert_eq!(exe.word_at(CODE_BASE + 4), Some(0x1234_5678));
        assert_eq!(exe.word_at(CODE_BASE + 2), None, "unaligned");
        assert_eq!(exe.word_at(CODE_BASE - 4), None);
        assert_eq!(exe.word_at(exe.code_end()), None);
        assert_eq!(exe.func_at(CODE_BASE).unwrap().name, "main");
        assert_eq!(exe.func_at(CODE_BASE + 8).unwrap().name, "send_ident");
        assert_eq!(exe.func_at(CODE_BASE + 11).unwrap().name, "send_ident");
        assert!(exe.func_by_name("send_ident").is_some());
        assert!(exe.func_by_name("nope").is_none());
    }

    #[test]
    fn local_referencing_unknown_function_rejected() {
        let mut exe = sample();
        exe.locals[0].func_index = 99;
        let bytes = exe.to_bytes();
        assert_eq!(
            Executable::from_bytes(&bytes),
            Err(ExeError::Corrupt(
                "local symbol references unknown function"
            ))
        );
    }

    #[test]
    fn error_display() {
        assert!(ExeError::BadMagic.to_string().contains("magic"));
        assert!(ExeError::UnsupportedVersion(9).to_string().contains('9'));
    }
}
