//! Index builder: lift a directory of known-library executables and
//! record taint scripts for every function.
//!
//! Input files are either MRE executables (`Executable::to_bytes`
//! output, any extension) or MR32 assembly sources (`.s` / `.asm`),
//! which the builder assembles on the fly — handy for fixture
//! directories checked into a repo. Library name and version come from
//! the file stem: `zutil-1.2.s` indexes as `zutil` version `1.2`; a
//! stem without a `-<digit…>` suffix indexes as version `0`.

use crate::flix::FlixError;
use firmres_dataflow::TaintEngine;
use firmres_dataflow::{LibFunc, LibIndex};
use firmres_ir::{function_content_hash, Program};
use firmres_isa::{lift, Assembler, Executable};
use std::fs;
use std::path::Path;

/// What happened to one input file during a build.
#[derive(Debug)]
pub struct FileReport {
    /// File name (not the full path).
    pub file: String,
    /// Library name parsed from the stem.
    pub lib: String,
    /// Version parsed from the stem.
    pub version: String,
    /// Functions indexed with at least one recorded role.
    pub indexed: usize,
    /// Roles the recorder refused, across all functions.
    pub rejected_roles: usize,
    /// Functions skipped entirely (no recordable role).
    pub skipped: usize,
    /// Set when the file could not be assembled/parsed/lifted; the
    /// file contributes nothing to the index.
    pub error: Option<String>,
}

/// Summary of a [`build_index_from_dir`] run.
#[derive(Debug, Default)]
pub struct BuildReport {
    /// Per-file outcomes, in sorted file-name order.
    pub files: Vec<FileReport>,
}

impl BuildReport {
    /// Total functions indexed.
    pub fn indexed(&self) -> usize {
        self.files.iter().map(|f| f.indexed).sum()
    }

    /// Total refused roles (diagnostic only).
    pub fn rejected_roles(&self) -> usize {
        self.files.iter().map(|f| f.rejected_roles).sum()
    }

    /// Render the report as `libid build` prints it.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.files {
            match &f.error {
                Some(e) => out.push_str(&format!("  {}: ERROR {e}\n", f.file)),
                None => out.push_str(&format!(
                    "  {}: {}@{} indexed {} fn(s), {} role(s) refused, {} fn(s) skipped\n",
                    f.file, f.lib, f.version, f.indexed, f.rejected_roles, f.skipped
                )),
            }
        }
        out.push_str(&format!(
            "indexed {} function(s) total ({} role(s) refused)\n",
            self.indexed(),
            self.rejected_roles()
        ));
        out
    }
}

fn parse_stem(stem: &str) -> (String, String) {
    if let Some((lib, ver)) = stem.rsplit_once('-') {
        if ver.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            return (lib.to_string(), ver.to_string());
        }
    }
    (stem.to_string(), "0".to_string())
}

fn load_program(path: &Path, name: &str) -> Result<Program, String> {
    let is_source = matches!(
        path.extension().and_then(|e| e.to_str()),
        Some("s") | Some("asm")
    );
    let exe: Executable = if is_source {
        let src = fs::read_to_string(path).map_err(|e| format!("read: {e}"))?;
        Assembler::new()
            .assemble(&src)
            .map_err(|e| format!("assemble: {e}"))?
    } else {
        let bytes = fs::read(path).map_err(|e| format!("read: {e}"))?;
        Executable::from_bytes(&bytes).map_err(|e| format!("parse: {e}"))?
    };
    lift(&exe, name).map_err(|e| format!("lift: {e}"))
}

/// Lift every executable in `dir` and record taint scripts for every
/// function. Two name classes are skipped: `main` (library files need
/// an entry symbol for the toolchain but it is not library surface)
/// and `__`-prefixed functions (padding/placeholder slots that hold
/// library layouts address-stable; see the corpus roster).
///
/// Functions whose every role is refused still enter the report but
/// not the index. Files that fail to parse are reported and skipped;
/// the build only errors when the directory itself is unreadable or
/// contributes no entries at all.
pub fn build_index_from_dir(dir: &Path) -> Result<(LibIndex, BuildReport), FlixError> {
    let rd =
        fs::read_dir(dir).map_err(|e| FlixError(format!("read dir {}: {e}", dir.display())))?;
    let mut paths: Vec<_> = rd
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_file())
        .collect();
    paths.sort();

    let mut report = BuildReport::default();
    let mut entries = Vec::new();
    let mut const_ceiling: u64 = 0;
    for path in paths {
        let file = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("?")
            .to_string();
        let stem = path
            .file_stem()
            .and_then(|n| n.to_str())
            .unwrap_or("lib")
            .to_string();
        let (lib, version) = parse_stem(&stem);
        let mut fr = FileReport {
            file,
            lib: lib.clone(),
            version: version.clone(),
            indexed: 0,
            rejected_roles: 0,
            skipped: 0,
            error: None,
        };
        match load_program(&path, &stem) {
            Err(e) => fr.error = Some(e),
            Ok(program) => {
                // Replay is sound only in images whose data base is at
                // or above every recording image's: take the max.
                const_ceiling = const_ceiling.max(program.data_base());
                let recorder = TaintEngine::new(&program);
                for f in program.functions() {
                    if f.name() == "main" || f.name().starts_with("__") {
                        continue;
                    }
                    let Some(scripts) = recorder.record_lib_function(f.entry()) else {
                        fr.skipped += 1;
                        continue;
                    };
                    fr.rejected_roles += scripts.rejected.len();
                    if scripts.is_empty() {
                        fr.skipped += 1;
                        continue;
                    }
                    fr.indexed += 1;
                    entries.push((
                        function_content_hash(f),
                        LibFunc {
                            lib: lib.clone(),
                            version: version.clone(),
                            func: f.name().to_string(),
                            entry: f.entry(),
                            scripts,
                        },
                    ));
                }
            }
        }
        report.files.push(fr);
    }
    if entries.is_empty() {
        return Err(FlixError(format!(
            "no recordable library functions under {}\n{}",
            dir.display(),
            report.render()
        )));
    }
    Ok((LibIndex::new(entries, const_ceiling), report))
}

/// Render an index for `libid inspect`: one line per entry plus a
/// header, in content-hash order.
pub fn inspect_lines(index: &LibIndex) -> Vec<String> {
    let mut out = vec![format!(
        "flix index: {} entr{}, const ceiling {:#x}, fingerprint {:#018x}",
        index.len(),
        if index.len() == 1 { "y" } else { "ies" },
        index.const_ceiling(),
        index.fingerprint()
    )];
    for (hash, f) in index.iter() {
        let steps: usize = f
            .scripts
            .params
            .iter()
            .map(|(_, s)| s.steps.len())
            .sum::<usize>()
            + f.scripts.returns.as_ref().map_or(0, |s| s.steps.len());
        out.push(format!(
            "  {hash:032x} {}@{} {} entry={:#x} roles={} steps={steps}",
            f.lib,
            f.version,
            f.func,
            f.entry,
            f.role_label()
        ));
        for (role, reason) in &f.scripts.rejected {
            out.push(format!("    refused {role}: {reason}"));
        }
    }
    out
}
