//! # firmres-libid
//!
//! Known-library identification for FIRMRES (ROADMAP item 1(c), after
//! AutoFirm's reused-library observation): real fleets share large
//! third-party regions, so the analyzer keeps a sealed **`.flix`
//! index** mapping post-lift function-content hashes to recorded taint
//! scripts. Functions that hash-match the index are not traversed —
//! the taint engine replays the recording (see
//! `firmres_dataflow::LibIndex`), reproducing the full traversal's
//! report byte-for-byte while skipping the expensive library-body
//! def-use work.
//!
//! This crate owns the artifact side: the `.flix` codec
//! ([`encode_index`] / [`decode_index`] / [`write_index`] /
//! [`load_index`], FRAC-style sealed format), the index builder
//! ([`build_index_from_dir`], behind `libid build`), and the
//! [`inspect_lines`] renderer behind `libid inspect`. The runtime
//! match-and-replay machinery lives in `firmres-dataflow`; cache-key
//! plumbing (the index fingerprint folds into `CacheKey` and the
//! unit-bank family key) lives in `firmres-cache`.
//!
//! # Examples
//!
//! ```
//! use firmres_dataflow::LibIndex;
//!
//! let index = LibIndex::new(Vec::new(), 0x40_0000);
//! let bytes = firmres_libid::encode_index(&index);
//! let back = firmres_libid::decode_index(&bytes)?;
//! assert_eq!(back.fingerprint(), index.fingerprint());
//! # Ok::<(), firmres_libid::FlixError>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod build;
mod flix;

pub use build::{build_index_from_dir, inspect_lines, BuildReport, FileReport};
pub use flix::{
    decode_index, encode_index, load_index, write_index, FlixError, FLIX_MAGIC, FLIX_SCHEMA_VERSION,
};
