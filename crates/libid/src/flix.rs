//! The `.flix` sealed index artifact.
//!
//! Same codec discipline as the FRAC cache store: magic, schema
//! version, length-prefixed body, FNV-64 trailer computed over
//! everything before it, temp-file + atomic rename on write, and a
//! damage-tolerant checksum-first open — any corruption (truncation,
//! bit-flips, oversize counts, trailing garbage) surfaces as a
//! [`FlixError`] diagnostic, never a panic, and callers degrade to
//! full traversal.

use firmres_cache::codec::{
    get_field_source, get_pcode_op, get_varnode, put_field_source, put_pcode_op, put_varnode,
    DecodeError, Reader,
};
use firmres_dataflow::{
    intern_rejection_reason, LibFunc, LibFuncScripts, LibIndex, LibRegionKey, LibScript, LibStep,
    OpRef,
};
use firmres_firmware::content_hash_packed;
use firmres_ir::BlockId;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Magic bytes of a `.flix` known-library index.
pub const FLIX_MAGIC: &[u8; 4] = b"FLIX";

/// Schema version of the `.flix` layout. Bumped on any encoding
/// change; older files are refused with a diagnostic (the builder
/// re-runs in minutes, so no migration machinery).
pub const FLIX_SCHEMA_VERSION: u16 = 1;

/// Everything that can go wrong opening, decoding, or writing an
/// index. The message is operator-facing; the analysis itself treats
/// any error as "no index" and falls back to full traversal.
#[derive(Debug)]
pub struct FlixError(pub String);

impl fmt::Display for FlixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flix: {}", self.0)
    }
}

impl std::error::Error for FlixError {}

impl From<DecodeError> for FlixError {
    fn from(e: DecodeError) -> FlixError {
        FlixError(format!("malformed index: {e}"))
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_opref(out: &mut Vec<u8>, r: &OpRef) {
    out.extend_from_slice(&r.block.0.to_le_bytes());
    out.extend_from_slice(&(r.index as u64).to_le_bytes());
}

fn get_opref(r: &mut Reader) -> Result<OpRef, DecodeError> {
    let block = BlockId(r.u32()?);
    let index = r.u64()? as usize;
    Ok(OpRef { block, index })
}

fn put_region_key(out: &mut Vec<u8>, k: &LibRegionKey) {
    match k {
        LibRegionKey::Stack(o) => {
            out.push(0);
            out.extend_from_slice(&o.to_le_bytes());
        }
        LibRegionKey::Alloc(a) => {
            out.push(1);
            out.extend_from_slice(&a.to_le_bytes());
        }
        LibRegionKey::PtrParam(i) => {
            out.push(2);
            out.extend_from_slice(&i.to_le_bytes());
        }
    }
}

fn get_region_key(r: &mut Reader) -> Result<LibRegionKey, DecodeError> {
    match r.u8()? {
        0 => Ok(LibRegionKey::Stack(r.u64()? as i64)),
        1 => Ok(LibRegionKey::Alloc(r.u64()?)),
        2 => Ok(LibRegionKey::PtrParam(r.u32()?)),
        t => Err(DecodeError(format!("unknown region-key tag {t}"))),
    }
}

fn put_step(out: &mut Vec<u8>, step: &LibStep) {
    match step {
        LibStep::OpenValue {
            parent,
            at,
            v,
            depth,
        } => {
            out.push(0);
            out.extend_from_slice(&parent.to_le_bytes());
            put_opref(out, at);
            put_varnode(out, v);
            out.extend_from_slice(&depth.to_le_bytes());
        }
        LibStep::OpenRegion {
            parent,
            region,
            before,
            depth,
        } => {
            out.push(1);
            out.extend_from_slice(&parent.to_le_bytes());
            put_region_key(out, region);
            match before {
                Some(r) => {
                    out.push(1);
                    put_opref(out, r);
                }
                None => out.push(0),
            }
            out.extend_from_slice(&depth.to_le_bytes());
        }
        LibStep::Close => out.push(2),
        LibStep::Transform { id, parent, op } => {
            out.push(3);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&parent.to_le_bytes());
            put_pcode_op(out, op);
        }
        LibStep::Write {
            id,
            parent,
            op,
            via,
        } => {
            out.push(4);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&parent.to_le_bytes());
            put_pcode_op(out, op);
            put_string(out, via);
        }
        LibStep::ThroughCall {
            id,
            parent,
            op,
            callee,
        } => {
            out.push(5);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&parent.to_le_bytes());
            put_pcode_op(out, op);
            put_string(out, callee);
        }
        LibStep::Leaf { parent, source } => {
            out.push(6);
            out.extend_from_slice(&parent.to_le_bytes());
            put_field_source(out, source);
        }
        LibStep::Resume {
            id,
            parent,
            v,
            param,
            depth,
        } => {
            out.push(7);
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&parent.to_le_bytes());
            put_varnode(out, v);
            out.extend_from_slice(&param.to_le_bytes());
            out.extend_from_slice(&depth.to_le_bytes());
        }
    }
}

fn get_step(r: &mut Reader) -> Result<LibStep, DecodeError> {
    match r.u8()? {
        0 => Ok(LibStep::OpenValue {
            parent: r.u32()?,
            at: get_opref(r)?,
            v: get_varnode(r)?,
            depth: r.u32()?,
        }),
        1 => {
            let parent = r.u32()?;
            let region = get_region_key(r)?;
            let before = match r.u8()? {
                0 => None,
                1 => Some(get_opref(r)?),
                t => return Err(DecodeError(format!("bad before marker {t}"))),
            };
            Ok(LibStep::OpenRegion {
                parent,
                region,
                before,
                depth: r.u32()?,
            })
        }
        2 => Ok(LibStep::Close),
        3 => Ok(LibStep::Transform {
            id: r.u32()?,
            parent: r.u32()?,
            op: get_pcode_op(r)?,
        }),
        4 => Ok(LibStep::Write {
            id: r.u32()?,
            parent: r.u32()?,
            op: get_pcode_op(r)?,
            via: r.string()?,
        }),
        5 => Ok(LibStep::ThroughCall {
            id: r.u32()?,
            parent: r.u32()?,
            op: get_pcode_op(r)?,
            callee: r.string()?,
        }),
        6 => Ok(LibStep::Leaf {
            parent: r.u32()?,
            source: get_field_source(r)?,
        }),
        7 => Ok(LibStep::Resume {
            id: r.u32()?,
            parent: r.u32()?,
            v: get_varnode(r)?,
            param: r.u32()?,
            depth: r.u32()?,
        }),
        t => Err(DecodeError(format!("unknown step tag {t}"))),
    }
}

fn put_script(out: &mut Vec<u8>, s: &LibScript) {
    out.extend_from_slice(&(s.steps.len() as u32).to_le_bytes());
    for step in &s.steps {
        put_step(out, step);
    }
}

fn get_script(r: &mut Reader) -> Result<LibScript, DecodeError> {
    let n = r.seq_len()?;
    let mut steps = Vec::with_capacity(n);
    for _ in 0..n {
        steps.push(get_step(r)?);
    }
    Ok(LibScript { steps })
}

/// Encode an index into complete `.flix` file bytes (magic through
/// trailer).
pub fn encode_index(index: &LibIndex) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(FLIX_MAGIC);
    out.extend_from_slice(&FLIX_SCHEMA_VERSION.to_le_bytes());
    out.extend_from_slice(&index.const_ceiling().to_le_bytes());
    out.extend_from_slice(&(index.len() as u32).to_le_bytes());
    for (hash, f) in index.iter() {
        out.extend_from_slice(&hash.to_le_bytes());
        put_string(&mut out, &f.lib);
        put_string(&mut out, &f.version);
        put_string(&mut out, &f.func);
        out.extend_from_slice(&f.entry.to_le_bytes());
        out.extend_from_slice(&(f.scripts.params.len() as u32).to_le_bytes());
        for (i, s) in &f.scripts.params {
            out.extend_from_slice(&i.to_le_bytes());
            put_script(&mut out, s);
        }
        match &f.scripts.returns {
            Some(s) => {
                out.push(1);
                put_script(&mut out, s);
            }
            None => out.push(0),
        }
        out.extend_from_slice(&(f.scripts.rejected.len() as u32).to_le_bytes());
        for (role, reason) in &f.scripts.rejected {
            put_string(&mut out, role);
            put_string(&mut out, reason);
        }
    }
    let csum = content_hash_packed(&out);
    out.extend_from_slice(&csum.to_le_bytes());
    out
}

/// Decode complete `.flix` file bytes. Checksum-first: a valid trailer
/// is required before any field is interpreted, so corruption anywhere
/// in the file (including trailing garbage, which shifts the trailer)
/// is caught up front.
pub fn decode_index(bytes: &[u8]) -> Result<LibIndex, FlixError> {
    if bytes.len() < FLIX_MAGIC.len() + 2 + 8 {
        return Err(FlixError(format!(
            "file too short to be an index ({} bytes)",
            bytes.len()
        )));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
    let computed = content_hash_packed(body);
    if stored != computed {
        return Err(FlixError(format!(
            "checksum mismatch (stored {stored:#018x}, computed {computed:#018x}): \
             truncated or corrupt index"
        )));
    }
    if &body[..4] != FLIX_MAGIC {
        return Err(FlixError("bad magic: not a .flix index".to_string()));
    }
    let mut r = Reader::new(&body[4..]);
    let version = r.u16()?;
    if version != FLIX_SCHEMA_VERSION {
        return Err(FlixError(format!(
            "schema version {version} (this build reads {FLIX_SCHEMA_VERSION}); rebuild the index"
        )));
    }
    let const_ceiling = r.u64()?;
    let n = r.seq_len()?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let hash = r.u128()?;
        let lib = r.string()?;
        let version = r.string()?;
        let func = r.string()?;
        let entry = r.u64()?;
        let nparams = r.seq_len()?;
        let mut params = Vec::with_capacity(nparams);
        for _ in 0..nparams {
            let idx = r.u32()?;
            params.push((idx, get_script(&mut r)?));
        }
        let returns = match r.u8()? {
            0 => None,
            1 => Some(get_script(&mut r)?),
            t => return Err(FlixError(format!("bad returns marker {t}"))),
        };
        let nrej = r.seq_len()?;
        let mut rejected = Vec::with_capacity(nrej);
        for _ in 0..nrej {
            let role = r.string()?;
            let reason = r.string()?;
            rejected.push((role, intern_rejection_reason(&reason)));
        }
        entries.push((
            hash,
            LibFunc {
                lib,
                version,
                func,
                entry,
                scripts: LibFuncScripts {
                    params,
                    returns,
                    rejected,
                },
            },
        ));
    }
    if r.remaining() != 0 {
        return Err(FlixError(format!(
            "{} bytes of trailing payload after the last entry",
            r.remaining()
        )));
    }
    Ok(LibIndex::new(entries, const_ceiling))
}

/// Seal an index to disk: write to a sibling temp file, fsync, then
/// atomically rename into place (a reader never observes a half-written
/// index).
pub fn write_index(path: &Path, index: &LibIndex) -> Result<(), FlixError> {
    let bytes = encode_index(index);
    let tmp = path.with_extension("flix.tmp");
    let io = |what: &str, e: std::io::Error| FlixError(format!("{what} {}: {e}", tmp.display()));
    let mut f = fs::File::create(&tmp).map_err(|e| io("create", e))?;
    f.write_all(&bytes).map_err(|e| io("write", e))?;
    f.sync_all().map_err(|e| io("sync", e))?;
    drop(f);
    fs::rename(&tmp, path)
        .map_err(|e| FlixError(format!("rename into {}: {e}", path.display())))?;
    Ok(())
}

/// Open an index from disk. Any I/O or format problem is a diagnostic,
/// never a panic; callers treat an error as "analyze without an index".
pub fn load_index(path: &Path) -> Result<LibIndex, FlixError> {
    let bytes = fs::read(path).map_err(|e| FlixError(format!("read {}: {e}", path.display())))?;
    decode_index(&bytes)
}
