//! Hostile-input contract of the `.flix` reader: truncation, bit
//! flips, oversize length prefixes, trailing garbage, wrong magic and
//! wrong schema all surface as [`FlixError`] diagnostics — never a
//! panic, never an allocation blow-up. The analyzer treats every such
//! error as "no index" and falls back to full traversal.

use firmres_dataflow::{LibFunc, LibFuncScripts, LibIndex};
use firmres_firmware::content_hash_packed;
use firmres_libid::{decode_index, encode_index, load_index, FlixError, FLIX_SCHEMA_VERSION};
use proptest::prelude::*;

/// A small but non-trivial valid index: two entries with empty scripts
/// (hostile-input handling is about framing, not script content).
fn valid_bytes() -> Vec<u8> {
    let entries = vec![
        (
            0x0102_0304_0506_0708_090a_0b0c_0d0e_0f10u128,
            LibFunc {
                lib: "zlib".into(),
                version: "1.2.11".into(),
                func: "deflate".into(),
                entry: 0x1_0000,
                scripts: LibFuncScripts::default(),
            },
        ),
        (
            0xfefe_fefe_fefe_fefe_fefe_fefe_fefe_fefeu128,
            LibFunc {
                lib: "cjson".into(),
                version: "1.7".into(),
                func: "cJSON_Print".into(),
                entry: 0x1_0400,
                scripts: LibFuncScripts::default(),
            },
        ),
    ];
    encode_index(&LibIndex::new(entries, 0x40_0000))
}

/// Re-seal `body` (everything before the 8-byte trailer) with a fresh
/// checksum, so tests can corrupt fields *behind* the checksum and
/// prove the structural validation still refuses them.
fn reseal(mut body: Vec<u8>) -> Vec<u8> {
    let csum = content_hash_packed(&body);
    body.extend_from_slice(&csum.to_le_bytes());
    body
}

fn assert_rejected(bytes: &[u8], what: &str) {
    let err: FlixError = decode_index(bytes).expect_err(what);
    assert!(!err.0.is_empty(), "{what}: diagnostic has a message");
}

#[test]
fn every_truncation_is_rejected() {
    let bytes = valid_bytes();
    for n in 0..bytes.len() {
        assert_rejected(&bytes[..n], &format!("truncation to {n} bytes"));
    }
}

#[test]
fn single_bit_flips_are_rejected() {
    let bytes = valid_bytes();
    for i in 0..bytes.len() {
        for bit in [0, 3, 7] {
            let mut b = bytes.clone();
            b[i] ^= 1 << bit;
            assert_rejected(&b, &format!("bit {bit} of byte {i} flipped"));
        }
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let bytes = valid_bytes();
    for extra in [1usize, 7, 64] {
        let mut b = bytes.clone();
        b.extend(std::iter::repeat_n(0xAAu8, extra));
        assert_rejected(&b, &format!("{extra} bytes of trailing garbage"));
    }
}

#[test]
fn oversize_entry_count_is_rejected_without_allocating() {
    let bytes = valid_bytes();
    let mut body = bytes[..bytes.len() - 8].to_vec();
    // The entry count sits after magic (4) + schema (2) + ceiling (8).
    body[14..18].copy_from_slice(&u32::MAX.to_le_bytes());
    assert_rejected(&reseal(body), "u32::MAX entry count");
}

#[test]
fn oversize_string_length_is_rejected() {
    let bytes = valid_bytes();
    let mut body = bytes[..bytes.len() - 8].to_vec();
    // First string length prefix: entry header is count(4) at 14, then
    // hash (16) — the lib-name length sits at offset 18 + 16 = 34.
    body[34..38].copy_from_slice(&u32::MAX.to_le_bytes());
    assert_rejected(&reseal(body), "u32::MAX string length");
}

#[test]
fn wrong_magic_and_wrong_schema_are_rejected_even_when_sealed() {
    let bytes = valid_bytes();

    let mut body = bytes[..bytes.len() - 8].to_vec();
    body[..4].copy_from_slice(b"JUNK");
    assert_rejected(&reseal(body), "wrong magic, valid checksum");

    let mut body = bytes[..bytes.len() - 8].to_vec();
    body[4..6].copy_from_slice(&(FLIX_SCHEMA_VERSION + 1).to_le_bytes());
    let err = decode_index(&reseal(body)).expect_err("future schema");
    assert!(err.0.contains("schema version"), "{err}");
}

#[test]
fn empty_and_tiny_inputs_are_rejected() {
    assert_rejected(&[], "empty file");
    assert_rejected(b"FLIX", "magic only");
    assert_rejected(&[0u8; 13], "below minimum length");
}

#[test]
fn missing_file_is_a_diagnostic() {
    let err = load_index(std::path::Path::new("/nonexistent/known.flix"))
        .expect_err("missing file is an error");
    assert!(err.0.contains("read"), "{err}");
}

proptest! {
    /// Arbitrary corruption at arbitrary positions never panics: it
    /// either decodes (only when the corruption is a no-op, which the
    /// checksum makes impossible for in-place edits) or errors.
    #[test]
    fn random_corruption_never_panics(
        pos in 0usize..1024,
        val in any::<u8>(),
        chop in 0usize..64,
    ) {
        let mut b = valid_bytes();
        let i = pos % b.len();
        b[i] = val;
        b.truncate(b.len().saturating_sub(chop));
        let _ = decode_index(&b);
    }

    /// Fully random byte soup never panics.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_index(&bytes);
    }
}
