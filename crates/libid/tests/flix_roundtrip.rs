//! `.flix` codec round-trip contract: encode → decode → encode is the
//! identity on bytes, write → load is the identity on the index, and
//! the builder indexes the synthetic roster fixtures completely.

use firmres_dataflow::LibIndex;
use firmres_libid::{
    build_index_from_dir, decode_index, encode_index, inspect_lines, load_index, write_index,
    FLIX_MAGIC,
};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("flix-rt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Build the roster index the way `libid build` does: from fixture
/// sources on disk.
fn roster_index(tag: &str) -> LibIndex {
    let dir = temp_dir(tag);
    for k in 0..firmres_corpus::ROSTER.len() {
        std::fs::write(
            dir.join(firmres_corpus::library_fixture_file(k)),
            firmres_corpus::library_fixture_source(k),
        )
        .unwrap();
    }
    let (index, report) = build_index_from_dir(&dir).expect("roster fixtures index");
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(report.rejected_roles(), 0, "roster records every role");
    index
}

#[test]
fn builder_indexes_the_full_roster() {
    let index = roster_index("build");
    // Two functions per roster library; decoys and `main` are skipped.
    assert_eq!(index.len(), 2 * firmres_corpus::ROSTER.len());
    let lines = inspect_lines(&index).join("\n");
    for lib in &firmres_corpus::ROSTER {
        assert!(lines.contains(lib.name), "{lines}");
        assert!(lines.contains(lib.pack_fn), "{lines}");
        assert!(lines.contains(lib.fmt_fn), "{lines}");
    }
}

#[test]
fn encode_decode_encode_is_identity_on_bytes() {
    let index = roster_index("codec");
    let bytes = encode_index(&index);
    assert_eq!(&bytes[..4], FLIX_MAGIC);
    let back = decode_index(&bytes).expect("own encoding decodes");
    assert_eq!(back.len(), index.len());
    assert_eq!(back.fingerprint(), index.fingerprint());
    assert_eq!(back.const_ceiling(), index.const_ceiling());
    assert_eq!(encode_index(&back), bytes, "re-encoding is byte-stable");
}

#[test]
fn empty_index_round_trips() {
    let index = LibIndex::new(Vec::new(), 0x40_0000);
    let back = decode_index(&encode_index(&index)).unwrap();
    assert!(back.is_empty());
    assert_eq!(back.fingerprint(), index.fingerprint());
}

#[test]
fn write_then_load_round_trips_and_leaves_no_temp_file() {
    let index = roster_index("disk");
    let dir = temp_dir("disk-out");
    let path = dir.join("known.flix");
    write_index(&path, &index).expect("seal to disk");
    let back = load_index(&path).expect("load sealed index");
    assert_eq!(back.fingerprint(), index.fingerprint());
    assert_eq!(encode_index(&back), encode_index(&index));
    // The temp file was renamed into place, not left behind.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|n| n != "known.flix")
        .collect();
    assert!(leftovers.is_empty(), "stray files: {leftovers:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fingerprint_tracks_content() {
    let full = roster_index("fp-full");
    // An index built from a subset of the fixtures fingerprints
    // differently — swapping index files forces cache misses.
    let dir = temp_dir("fp-subset");
    std::fs::write(
        dir.join(firmres_corpus::library_fixture_file(0)),
        firmres_corpus::library_fixture_source(0),
    )
    .unwrap();
    let (subset, _) = build_index_from_dir(&dir).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    assert!(subset.len() < full.len());
    assert_ne!(subset.fingerprint(), full.fingerprint());
    assert_ne!(full.fingerprint(), LibIndex::EMPTY_FINGERPRINT);
}
