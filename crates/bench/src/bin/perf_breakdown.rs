//! Regenerates the paper's §V-E performance analysis: per-stage shares of
//! the total analysis time and the min/max per-device cost.
//!
//! Paper: min 154 s, max 1472 s per device; stage shares 37.67% (exeid),
//! 43.83% (field identification), 3.71% (semantics), 9.96%
//! (concatenation), 4.81% (form check). Absolute times differ (the
//! substrate is a synthetic ISA, not Ghidra over MIPS/ARM binaries); the
//! *ordering* of stage costs is the reproduced claim — executable
//! pinpointing and taint-based field identification dominate.
//!
//! Besides the console table, the per-stage shares and per-device
//! extremes are written to `BENCH_breakdown.json` (or the path given as
//! the first argument), alongside the other `BENCH_*.json` artifacts.
//!
//! Usage: `cargo run --release -p firmres-bench --bin perf_breakdown [out.json]`

use firmres::{analyze_corpus, AnalysisConfig, StageTimings};
use firmres_corpus::generate_corpus;
use std::time::{Duration, Instant};

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_breakdown.json".to_string());
    let corpus = generate_corpus(7);
    eprintln!("analyzing the full {}-device corpus…\n", corpus.len());
    let config = AnalysisConfig::default();
    // The whole Table-I corpus, script-handled devices included: their
    // stage-1 probe time belongs in the exeid share, and every other
    // BENCH_* sweep covers all 22 — this one must match.
    let devs: Vec<_> = corpus.iter().collect();
    let images: Vec<_> = devs.iter().map(|d| &d.firmware).collect();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let t_seq = Instant::now();
    let sequential = analyze_corpus(&images, None, &config, 1);
    let wall_seq = t_seq.elapsed();
    let t_par = Instant::now();
    let parallel = analyze_corpus(&images, None, &config, threads);
    let wall_par = t_par.elapsed();

    let mut totals = StageTimings::default();
    let mut per_device: Vec<(u8, Duration)> = Vec::new();
    for (dev, analysis) in devs.iter().zip(&sequential) {
        let t = analysis.timings;
        totals.exeid += t.exeid;
        totals.field_identification += t.field_identification;
        totals.semantics += t.semantics;
        totals.concatenation += t.concatenation;
        totals.form_check += t.form_check;
        per_device.push((dev.spec.id, t.total()));
    }
    drop(parallel);
    let shares = totals.shares();
    println!("§V-E — per-stage share of total analysis time, measured (paper):");
    let labels = [
        ("pinpointing device-cloud executables", 37.67),
        ("identifying message fields", 43.83),
        ("recovering field semantics", 3.71),
        ("concatenating message fields", 9.96),
        ("detecting incorrect forms", 4.81),
    ];
    for ((label, paper), share) in labels.iter().zip(shares.iter()) {
        println!("  {label:<42} {:6.2}%  ({paper:5.2}%)", share * 100.0);
    }
    let min = per_device.iter().min_by_key(|(_, d)| *d).unwrap();
    let max = per_device.iter().max_by_key(|(_, d)| *d).unwrap();
    println!("\nper-device total analysis time:");
    println!(
        "  fastest: device {} in {:?} (paper: 154 s)\n  slowest: device {} in {:?} (paper: 1472 s)",
        min.0, min.1, max.0, max.1
    );
    println!(
        "  max/min ratio: {:.1}× (paper: {:.1}×)",
        max.1.as_secs_f64() / min.1.as_secs_f64().max(1e-9),
        1472.0 / 154.0
    );
    println!(
        "  total: {:?} over {} devices",
        totals.total(),
        per_device.len()
    );
    println!("\ncorpus sweep wall-clock (analyze_corpus):");
    println!("  1 thread : {wall_seq:?}");
    println!(
        "  {threads} thread(s): {wall_par:?} ({:.2}× speedup)",
        wall_seq.as_secs_f64() / wall_par.as_secs_f64().max(1e-9)
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"perf_breakdown\",\n",
            "  \"devices\": {devices},\n",
            "  \"shares\": {{ \"exeid\": {s0:.4}, \"field_id\": {s1:.4}, \"semantics\": {s2:.4}, \"concat\": {s3:.4}, \"form_check\": {s4:.4} }},\n",
            "  \"stage_total_ms\": {total:.3},\n",
            "  \"fastest_device\": {{ \"id\": {min_id}, \"ms\": {min_ms:.3} }},\n",
            "  \"slowest_device\": {{ \"id\": {max_id}, \"ms\": {max_ms:.3} }},\n",
            "  \"sweep_threads\": {threads},\n",
            "  \"sweep_wall_ms\": {{ \"sequential\": {seq_ms:.3}, \"parallel\": {par_ms:.3} }}\n",
            "}}\n"
        ),
        devices = per_device.len(),
        s0 = shares[0],
        s1 = shares[1],
        s2 = shares[2],
        s3 = shares[3],
        s4 = shares[4],
        total = totals.total().as_secs_f64() * 1e3,
        min_id = min.0,
        min_ms = min.1.as_secs_f64() * 1e3,
        max_id = max.0,
        max_ms = max.1.as_secs_f64() * 1e3,
        threads = threads,
        seq_ms = wall_seq.as_secs_f64() * 1e3,
        par_ms = wall_par.as_secs_f64() * 1e3,
    );
    std::fs::write(&out_path, &json).expect("write benchmark output");
    println!("\nwrote {out_path}");
}
