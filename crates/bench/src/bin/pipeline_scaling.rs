//! Intra-image scaling benchmark of the message-unit execution model.
//!
//! Sweeps the synthetic corpus once at one unit job to find the most
//! expensive device (the paper's 154–1472 s spread, §V-E), then
//! re-analyzes that device at 1 and N unit jobs, verifies the N-thread
//! output is byte-identical to the 1-thread run (via the cache codec,
//! timings zeroed — they measure, they are not measured), and writes the
//! numbers to `BENCH_pipeline.json`.
//!
//! Usage: `cargo run --release -p firmres-bench --bin pipeline_scaling [out.json]`
//!
//! Exits non-zero when the parallel output diverges, or when 4+ workers
//! fail to reach a 2× speedup on the largest device (the message-unit
//! acceptance floor).

use firmres::{analyze_firmware_jobs, AnalysisConfig, FirmwareAnalysis};
use firmres_cache::codec;
use firmres_corpus::generate_corpus;
use std::time::Instant;

/// The cache codec's bytes for `analysis` with timings zeroed: the
/// strictest observable-equality check available.
fn canonical_bytes(mut analysis: FirmwareAnalysis) -> Vec<u8> {
    analysis.timings = Default::default();
    let mut out = Vec::new();
    codec::put_analysis(&mut out, &analysis);
    out
}

/// Best-of-`reps` wall-clock for one device at `jobs` unit workers.
fn measure(
    fw: &firmres_firmware::FirmwareImage,
    config: &AnalysisConfig,
    jobs: usize,
    reps: usize,
) -> (f64, FirmwareAnalysis) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let t = Instant::now();
        let analysis = analyze_firmware_jobs(fw, None, config, jobs);
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
        last = Some(analysis);
    }
    (best, last.expect("reps >= 1"))
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pipeline.json".to_string());
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let config = AnalysisConfig::default();

    eprintln!("generating corpus…");
    let corpus = generate_corpus(7);

    // Cold sweep at one job: times every device once and picks the most
    // expensive one as the scaling subject.
    eprintln!("cold sweep: {} devices at 1 unit job…", corpus.len());
    let t = Instant::now();
    let mut subject = 0;
    let mut subject_ms = 0.0;
    for (i, dev) in corpus.iter().enumerate() {
        let t = Instant::now();
        let _ = analyze_firmware_jobs(&dev.firmware, None, &config, 1);
        let ms = t.elapsed().as_secs_f64() * 1e3;
        if ms > subject_ms {
            subject = i;
            subject_ms = ms;
        }
    }
    let cold_ms = t.elapsed().as_secs_f64() * 1e3;
    let dev = &corpus[subject];
    eprintln!(
        "largest device: {} ({} {}, {subject_ms:.1} ms cold)",
        dev.spec.id, dev.spec.vendor, dev.spec.model
    );

    // The scaling pair: best-of-3 at 1 job and at N jobs, byte-compared.
    let reps = 3;
    let (seq_ms, seq) = measure(&dev.firmware, &config, 1, reps);
    let (par_ms, par) = measure(&dev.firmware, &config, threads, reps);
    let speedup = seq_ms / par_ms.max(1e-9);

    let identical = canonical_bytes(seq) == canonical_bytes(par);
    let mut failures = 0;
    if !identical {
        eprintln!(
            "FAIL: device {} output at {threads} jobs differs from 1 job",
            dev.spec.id
        );
        failures += 1;
    }
    if threads >= 4 && speedup < 2.0 {
        eprintln!("FAIL: {speedup:.2}x at {threads} workers is below the 2x floor");
        failures += 1;
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"pipeline_unit_scaling\",\n",
            "  \"devices\": {devices},\n",
            "  \"threads\": {threads},\n",
            "  \"cold_sweep_ms\": {cold_ms:.3},\n",
            "  \"largest_device\": {{ \"id\": {id}, \"vendor\": \"{vendor}\", \"model\": \"{model}\" }},\n",
            "  \"sequential_ms\": {seq_ms:.3},\n",
            "  \"parallel_ms\": {par_ms:.3},\n",
            "  \"speedup\": {speedup:.2},\n",
            "  \"byte_identical\": {identical}\n",
            "}}\n"
        ),
        devices = corpus.len(),
        threads = threads,
        cold_ms = cold_ms,
        id = dev.spec.id,
        vendor = dev.spec.vendor,
        model = dev.spec.model,
        seq_ms = seq_ms,
        par_ms = par_ms,
        speedup = speedup,
        identical = identical,
    );
    std::fs::write(&out_path, &json).expect("write benchmark output");

    println!(
        "pipeline scaling: device {} | 1 job {seq_ms:.1} ms | {threads} jobs {par_ms:.1} ms | {speedup:.2}x",
        dev.spec.id
    );
    println!("wrote {out_path}");
    if failures > 0 {
        std::process::exit(1);
    }
}
