//! Regenerates paper Table II: overall results of message reconstruction.
//!
//! Paper values are printed beside the measured ones. Absolute agreement
//! is not expected (the substrate is synthetic); the shape — per-device
//! identified/valid ratios, ~88% field confirmation, ~92% semantics — is.
//!
//! Usage: `cargo run -p firmres-bench --bin table2 [--no-overtaint]`

use firmres::{analyze_corpus, AnalysisConfig};
use firmres_bench::{build_slice_dataset, render_table, score_analysis, train_semantics_model};
use firmres_corpus::generate_corpus;

/// Paper Table II reference values per device id:
/// (identified, valid, fields identified, fields confirmed, accurate).
const PAPER: [(u8, usize, usize, usize, usize, usize); 20] = [
    (1, 21, 17, 82, 69, 64),
    (2, 16, 14, 74, 67, 60),
    (3, 18, 16, 102, 93, 84),
    (4, 17, 14, 97, 86, 79),
    (5, 8, 7, 52, 48, 43),
    (6, 14, 13, 82, 78, 71),
    (7, 18, 16, 98, 81, 74),
    (8, 13, 13, 101, 92, 86),
    (9, 15, 14, 96, 88, 80),
    (10, 7, 6, 62, 57, 54),
    (11, 13, 11, 76, 52, 47),
    (12, 15, 11, 85, 71, 65),
    (13, 17, 17, 162, 147, 135),
    (14, 30, 26, 323, 291, 279),
    (15, 5, 4, 58, 53, 49),
    (16, 7, 5, 71, 64, 57),
    (17, 9, 9, 101, 88, 75),
    (18, 13, 11, 117, 91, 83),
    (19, 13, 12, 93, 87, 80),
    (20, 12, 10, 87, 82, 76),
];

fn main() {
    let no_overtaint = std::env::args().any(|a| a == "--no-overtaint");
    let mut config = AnalysisConfig::default();
    config.taint.overtaint = !no_overtaint;

    eprintln!("generating corpus…");
    let corpus = generate_corpus(7);
    let devs: Vec<_> = corpus
        .iter()
        .filter(|d| d.cloud_executable.is_some())
        .collect();
    let images: Vec<_> = devs.iter().map(|d| &d.firmware).collect();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    eprintln!(
        "pass 1: analyzing {} devices on {threads} threads (keyword labels)…",
        devs.len()
    );
    let pass1 = analyze_corpus(&images, None, &config, threads);
    let analyses: Vec<_> = devs.iter().copied().zip(pass1).collect();

    eprintln!("training the semantics model on harvested slices…");
    let dataset = build_slice_dataset(&analyses);
    let (model, val_acc, test_acc) = train_semantics_model(&dataset, 7);
    eprintln!(
        "model: {} slices, validation accuracy {:.2}%, test accuracy {:.2}% (paper: 92.23% / 91.74%)",
        dataset.len(),
        val_acc * 100.0,
        test_acc * 100.0
    );

    eprintln!("pass 2: re-analyzing with the trained model and scoring…\n");
    let pass2 = analyze_corpus(&images, Some(&model), &config, threads);
    let mut rows = Vec::new();
    let mut tot = [0usize; 5];
    let mut paper_tot = [0usize; 5];
    for (dev, analysis) in devs.iter().zip(&pass2) {
        let s = score_analysis(dev, analysis);
        let p = PAPER.iter().find(|p| p.0 == s.id).expect("paper row");
        let clusters = s
            .clusters
            .map(|(a, b, c)| format!("{a}/{b}/{c}"))
            .unwrap_or_else(|| "-".to_string());
        rows.push(vec![
            s.id.to_string(),
            format!("{} ({})", s.identified_messages, p.1),
            format!("{} ({})", s.valid_messages, p.2),
            format!("{} ({})", s.fields_identified, p.3),
            format!("{} ({})", s.fields_confirmed, p.4),
            clusters,
            format!("{} ({})", s.semantics_accurate, p.5),
        ]);
        for (i, v) in [
            s.identified_messages,
            s.valid_messages,
            s.fields_identified,
            s.fields_confirmed,
            s.semantics_accurate,
        ]
        .into_iter()
        .enumerate()
        {
            tot[i] += v;
        }
        for (i, v) in [p.1, p.2, p.3, p.4, p.5].into_iter().enumerate() {
            paper_tot[i] += v;
        }
    }
    rows.push(vec![
        "Total".into(),
        format!("{} ({})", tot[0], paper_tot[0]),
        format!("{} ({})", tot[1], paper_tot[1]),
        format!("{} ({})", tot[2], paper_tot[2]),
        format!("{} ({})", tot[3], paper_tot[3]),
        String::new(),
        format!("{} ({})", tot[4], paper_tot[4]),
    ]);

    println!("Table II — message reconstruction, measured (paper):");
    println!(
        "{}",
        render_table(
            &[
                "Dev",
                "#Ident",
                "#Valid",
                "#Fields",
                "#Confirmed",
                "thd .5/.6/.7",
                "#Accurate"
            ],
            &rows
        )
    );
    println!(
        "field identification accuracy: {:.2}% (paper 88.41%)",
        100.0 * tot[3] as f64 / tot[2] as f64
    );
    println!(
        "semantics recovery accuracy:   {:.2}% (paper 91.93%)",
        100.0 * tot[4] as f64 / tot[3] as f64
    );
    println!(
        "message validity rate:         {:.2}% (paper {:.2}%)",
        100.0 * tot[1] as f64 / tot[0] as f64,
        100.0 * 246.0 / 281.0
    );
}
