//! Demonstrates paper Fig. 4: asynchronous handler identification.
//!
//! Shows anchor pairing, string-parsing scores (Eq. 1) and async verdicts
//! for a device-cloud agent (async handler, accepted), an IPC daemon
//! (synchronous handler, rejected) and a LAN httpd (rejected).
//!
//! Usage: `cargo run -p firmres-bench --bin fig4_handlers`

use firmres::{identify_device_cloud, score_handlers, ExeIdConfig};
use firmres_bench::render_table;
use firmres_corpus::{generate_device, ipc_daemon_source, local_httpd_source};
use firmres_isa::{lift, Assembler};

fn main() {
    let dev = generate_device(10, 7);
    let agent = dev
        .firmware
        .load_executable(dev.cloud_executable.as_deref().unwrap())
        .unwrap();
    let ipc = Assembler::new().assemble(&ipc_daemon_source()).unwrap();
    let httpd = Assembler::new().assemble(&local_httpd_source()).unwrap();

    let mut rows = Vec::new();
    for (name, exe) in [
        ("cloud_agent", agent),
        ("ipc_daemon", ipc),
        ("httpd_local", httpd),
    ] {
        let prog = lift(&exe, name).unwrap();
        let handlers = score_handlers(&prog);
        let accepted = !identify_device_cloud(&prog, &ExeIdConfig::default()).is_empty();
        if handlers.is_empty() {
            rows.push(vec![
                name.into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "no anchors".into(),
            ]);
            continue;
        }
        for h in handlers {
            rows.push(vec![
                name.into(),
                h.handler_name.clone(),
                format!(
                    "{:#x} ↔ {:#x} (d={})",
                    h.recv_callsite, h.send_callsite, h.distance
                ),
                format!("{:.2}", h.score),
                if h.is_async {
                    "async".into()
                } else {
                    "direct call".into()
                },
                if accepted && h.is_async && h.score >= 0.3 {
                    "DEVICE-CLOUD".into()
                } else {
                    "rejected".into()
                },
            ]);
        }
    }
    println!("Fig. 4 — asynchronous handler identification:");
    println!(
        "{}",
        render_table(
            &[
                "Executable",
                "Handler",
                "Anchor pair (recv ↔ send)",
                "P_f",
                "Invocation",
                "Verdict"
            ],
            &rows
        )
    );
}
