//! Demonstrates paper Fig. 5: MFT transformation — the original message
//! field tree, the simplified tree (branching + leaf nodes only), and the
//! inverted tree that restores field construction order.
//!
//! Usage: `cargo run -p firmres-bench --bin fig5_mft`

use firmres_dataflow::TaintEngine;
use firmres_isa::{lift, Assembler};
use firmres_mft::{reconstruct, Mft};

const DEMO: &str = r#"
.func send_register
.local buf 160
.local mac 32
    lea a0, mac
    callx get_mac_addr
    lea a0, buf
    la  a1, kser
    callx strcpy
    la  a0, kserval
    callx nvram_get
    mov a1, rv
    lea a0, buf
    callx strcat
    lea a0, buf
    la  a1, kmac
    callx strcat
    lea a0, buf
    lea a1, mac
    callx strcat
    lea a1, buf
    li  a0, 1
    li  a2, 0
    callx SSL_write
    ret
.endfunc
.data
kser: .asciz "serial="
kserval: .asciz "serial_no"
kmac: .asciz "&mac="
"#;

fn main() {
    let exe = Assembler::new().assemble(DEMO).expect("demo assembles");
    let prog = lift(&exe, "demo").expect("demo lifts");
    let f = prog.function_by_name("send_register").unwrap();
    let callsite = f
        .callsites()
        .find(|c| c.call_target().and_then(|t| prog.callee_name(t)) == Some("SSL_write"))
        .unwrap()
        .addr;
    let tree = TaintEngine::new(&prog).trace(f.entry(), callsite, 1);
    let mft = Mft::from_taint(&tree);

    println!("Fig. 5 — MFT transformation\n");
    println!(
        "(a) original MFT ({} nodes, backward-discovery order):",
        mft.len()
    );
    println!("{}", mft.render());
    let simplified = mft.simplified();
    println!(
        "(b) simplified MFT ({} nodes — branching + leaves):",
        simplified.len()
    );
    println!("{}", simplified.render());
    let inverted = simplified.inverted();
    println!("(c) inverted MFT (construction order restored):");
    println!("{}", inverted.render());

    let msg = reconstruct(&mft);
    println!("reconstructed message: {msg}");
    println!(
        "field order: {:?} (the device concatenates serial first, mac second)",
        msg.keys()
    );
}
