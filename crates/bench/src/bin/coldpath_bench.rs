//! Cold-path optimization gate: before/after sweep of the interned-IR /
//! bitset-dataflow / bit-parallel-LCS / memoized-classification rework.
//!
//! Analyzes the full synthetic corpus cold (no cache, one thread, one
//! unit job) twice — once with [`ColdPath::Reference`] (the
//! pre-optimization data structures, kept in-tree) and once with
//! [`ColdPath::Optimized`] — and verifies the two sweeps produce
//! **byte-identical** reports under the cache codec (timings zeroed —
//! they measure, they are not measured). Writes wall-clock numbers and
//! per-stage shares for both modes to `BENCH_coldpath.json`.
//!
//! Usage:
//! `cargo run --release -p firmres-bench --bin coldpath_bench [out.json] [min-speedup]`
//!
//! Exits non-zero when any device's optimized report differs from its
//! reference report, or when the single-thread cold-sweep speedup falls
//! below `min-speedup` (no floor is enforced when the argument is
//! omitted; `scripts/check.sh` passes the 1.5× acceptance floor).

use firmres::{analyze_firmware, AnalysisConfig, FirmwareAnalysis, StageTimings};
use firmres_cache::codec;
use firmres_corpus::GeneratedDevice;
use firmres_ir::ColdPath;
use std::time::Instant;

/// The cache codec's bytes for `analysis` with timings zeroed: the
/// strictest observable-equality check available.
fn canonical_bytes(mut analysis: FirmwareAnalysis) -> Vec<u8> {
    analysis.timings = Default::default();
    let mut out = Vec::new();
    codec::put_analysis(&mut out, &analysis);
    out
}

struct Sweep {
    /// Wall-clock of the whole corpus sweep, milliseconds.
    wall_ms: f64,
    /// Per-stage timing totals across all devices.
    totals: StageTimings,
    /// Canonical report bytes per device.
    reports: Vec<Vec<u8>>,
}

/// One cold sweep over the corpus in `mode`: every device analyzed from
/// scratch on the calling thread.
fn sweep(corpus: &[GeneratedDevice], mode: ColdPath) -> Sweep {
    let mut config = AnalysisConfig::default();
    config.taint.cold_path = mode;
    let mut totals = StageTimings::default();
    let mut reports = Vec::with_capacity(corpus.len());
    let t = Instant::now();
    for dev in corpus {
        let analysis = analyze_firmware(&dev.firmware, None, &config);
        let timings = analysis.timings;
        totals.exeid += timings.exeid;
        totals.field_identification += timings.field_identification;
        totals.semantics += timings.semantics;
        totals.concatenation += timings.concatenation;
        totals.form_check += timings.form_check;
        reports.push(canonical_bytes(analysis));
    }
    Sweep {
        wall_ms: t.elapsed().as_secs_f64() * 1e3,
        totals,
        reports,
    }
}

/// Best-of-`reps` sweep (first result kept for the byte comparison; the
/// reports are deterministic, so every rep encodes identically).
fn best_sweep(corpus: &[GeneratedDevice], mode: ColdPath, reps: usize) -> Sweep {
    let mut best: Option<Sweep> = None;
    for _ in 0..reps {
        let s = sweep(corpus, mode);
        best = match best {
            Some(b) if b.wall_ms <= s.wall_ms => Some(b),
            _ => Some(s),
        };
    }
    best.expect("reps >= 1")
}

fn shares_json(totals: &StageTimings) -> String {
    let s = totals.shares();
    format!(
        concat!(
            "{{ \"exeid\": {:.4}, \"field_id\": {:.4}, \"semantics\": {:.4}, ",
            "\"concat\": {:.4}, \"form_check\": {:.4} }}"
        ),
        s[0], s[1], s[2], s[3], s[4]
    )
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_coldpath.json".to_string());
    let min_speedup: Option<f64> = std::env::args().nth(2).map(|s| {
        s.parse()
            .unwrap_or_else(|_| panic!("min-speedup must be a number, got {s:?}"))
    });

    eprintln!("generating corpus…");
    let corpus = firmres_corpus::generate_corpus(7);

    // Warm the allocator / page cache so the first timed sweep is not
    // penalized for going first.
    eprintln!("warmup sweep…");
    let _ = sweep(&corpus, ColdPath::Optimized);

    let reps = 3;
    eprintln!("reference sweep: {} devices × {reps} reps…", corpus.len());
    let reference = best_sweep(&corpus, ColdPath::Reference, reps);
    eprintln!("optimized sweep: {} devices × {reps} reps…", corpus.len());
    let optimized = best_sweep(&corpus, ColdPath::Optimized, reps);

    let speedup = reference.wall_ms / optimized.wall_ms.max(1e-9);
    let mut failures = 0;
    let mut identical = true;
    for (i, (r, o)) in reference.reports.iter().zip(&optimized.reports).enumerate() {
        if r != o {
            eprintln!(
                "FAIL: device {} optimized report differs from reference",
                corpus[i].spec.id
            );
            identical = false;
            failures += 1;
        }
    }
    if let Some(floor) = min_speedup {
        if speedup < floor {
            eprintln!("FAIL: {speedup:.2}x cold-sweep speedup is below the {floor}x floor");
            failures += 1;
        }
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"coldpath_optimization\",\n",
            "  \"devices\": {devices},\n",
            "  \"threads\": 1,\n",
            "  \"reps\": {reps},\n",
            "  \"reference\": {{ \"wall_ms\": {ref_ms:.3}, \"stage_total_ms\": {ref_total:.3}, \"shares\": {ref_shares} }},\n",
            "  \"optimized\": {{ \"wall_ms\": {opt_ms:.3}, \"stage_total_ms\": {opt_total:.3}, \"shares\": {opt_shares} }},\n",
            "  \"speedup\": {speedup:.2},\n",
            "  \"byte_identical\": {identical}\n",
            "}}\n"
        ),
        devices = corpus.len(),
        reps = reps,
        ref_ms = reference.wall_ms,
        ref_total = reference.totals.total().as_secs_f64() * 1e3,
        ref_shares = shares_json(&reference.totals),
        opt_ms = optimized.wall_ms,
        opt_total = optimized.totals.total().as_secs_f64() * 1e3,
        opt_shares = shares_json(&optimized.totals),
        speedup = speedup,
        identical = identical,
    );
    std::fs::write(&out_path, &json).expect("write benchmark output");

    println!(
        "cold path: reference {:.1} ms | optimized {:.1} ms | {speedup:.2}x | byte-identical: {identical}",
        reference.wall_ms, optimized.wall_ms
    );
    println!("wrote {out_path}");
    if failures > 0 {
        std::process::exit(1);
    }
}
