//! Cold-then-warm benchmark of the resident analysis daemon.
//!
//! Boots a [`firmres_service::Server`] on an ephemeral port with a fresh
//! analysis cache, submits the full synthetic corpus over the wire
//! (cold pass: every job runs the pipeline), then resubmits every image
//! by content hash (warm pass: every job must be answered from the
//! cache without shipping the bytes again). Verifies each served
//! analysis is byte-identical — through the cache codec, timings
//! zeroed — to a local `analyze_firmware` of the same image, and writes
//! the timings to `BENCH_service.json`.
//!
//! Usage: `cargo run --release -p firmres-bench --bin service_bench [out.json]`
//!
//! Exits non-zero when a served result diverges from its local run,
//! when the warm pass reaches the pipeline at all, or when the warm
//! pass fails to beat the cold pass by at least 5×.

use firmres::{analyze_firmware, AnalysisConfig, FirmwareAnalysis};
use firmres_cache::codec;
use firmres_corpus::generate_corpus;
use firmres_firmware::content_hash_packed_wide;
use firmres_service::{Client, Server, ServerConfig, SubmitImage};
use std::time::Instant;

/// The cache codec's encoding with the (run-dependent) stage timings
/// zeroed — the canonical equality form used across the test suite.
fn canonical(mut analysis: FirmwareAnalysis) -> Vec<u8> {
    analysis.timings = Default::default();
    let mut out = Vec::new();
    codec::put_analysis(&mut out, &analysis);
    out
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_service.json".to_string());

    eprintln!("generating corpus…");
    let corpus = generate_corpus(7);
    let packed: Vec<Vec<u8>> = corpus.iter().map(|d| d.firmware.pack().to_vec()).collect();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let config = AnalysisConfig::default();

    let dir = std::env::temp_dir().join(format!("firmres-service-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: threads,
            unit_jobs: 1,
            queue_cap: corpus.len() + 1,
            conn_inflight_cap: corpus.len() as u32 + 1,
            cache_dir: Some(dir.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let daemon = std::thread::spawn(move || server.run());

    let mut failures = 0;
    let mut client = Client::connect(addr).expect("connect");

    eprintln!(
        "cold pass: {} devices over the wire ({threads} workers)…",
        corpus.len()
    );
    let t = Instant::now();
    let mut cold_payloads = Vec::new();
    for (dev, bytes) in corpus.iter().zip(&packed) {
        let served = client
            .submit(SubmitImage::Bytes(bytes.clone()), &config, false, 0)
            .expect("cold submit");
        if served.from_cache {
            eprintln!("FAIL: cold submit of device {} hit the cache", dev.spec.id);
            failures += 1;
        }
        cold_payloads.push(served.payload);
        let local = canonical(analyze_firmware(&dev.firmware, None, &config));
        if canonical(served.analysis) != local {
            eprintln!(
                "FAIL: served analysis of device {} differs from local",
                dev.spec.id
            );
            failures += 1;
        }
    }
    let cold_ms = t.elapsed().as_secs_f64() * 1e3;

    eprintln!("warm pass: resubmitting every device by content hash…");
    let t = Instant::now();
    for ((dev, bytes), cold_payload) in corpus.iter().zip(&packed).zip(&cold_payloads) {
        let served = client
            .submit(
                SubmitImage::Hash(content_hash_packed_wide(bytes)),
                &config,
                false,
                0,
            )
            .expect("warm hash submit");
        if !served.from_cache {
            eprintln!(
                "FAIL: warm hash submit of device {} missed the cache",
                dev.spec.id
            );
            failures += 1;
        }
        if &served.payload != cold_payload {
            eprintln!(
                "FAIL: device {} warm payload differs from cold",
                dev.spec.id
            );
            failures += 1;
        }
    }
    let warm_ms = t.elapsed().as_secs_f64() * 1e3;

    let status = client.status().expect("status");
    client.drain().expect("drain");
    let final_status = daemon.join().expect("daemon thread");
    let _ = std::fs::remove_dir_all(&dir);

    if status.cache_misses != corpus.len() as u64 {
        eprintln!(
            "FAIL: expected {} pipeline runs, saw {}",
            corpus.len(),
            status.cache_misses
        );
        failures += 1;
    }
    let speedup = cold_ms / warm_ms.max(1e-9);
    if speedup < 5.0 {
        eprintln!("FAIL: warm speedup {speedup:.1}x is below the 5x floor");
        failures += 1;
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"service_cold_vs_warm_hash\",\n",
            "  \"devices\": {devices},\n",
            "  \"workers\": {threads},\n",
            "  \"cold_ms\": {cold_ms:.3},\n",
            "  \"warm_ms\": {warm_ms:.3},\n",
            "  \"speedup\": {speedup:.2},\n",
            "  \"jobs_served\": {served},\n",
            "  \"cache_hits\": {hits},\n",
            "  \"cache_misses\": {misses}\n",
            "}}\n",
        ),
        devices = corpus.len(),
        threads = threads,
        cold_ms = cold_ms,
        warm_ms = warm_ms,
        speedup = speedup,
        served = final_status.jobs_served,
        hits = final_status.cache_hits,
        misses = final_status.cache_misses,
    );
    std::fs::write(&out_path, &json).expect("write benchmark output");

    println!(
        "service bench: {} devices | cold {:.1} ms | warm-by-hash {:.1} ms | {:.1}x | {} served",
        corpus.len(),
        cold_ms,
        warm_ms,
        speedup,
        final_status.jobs_served
    );
    println!("wrote {out_path}");
    if failures > 0 {
        std::process::exit(1);
    }
}
