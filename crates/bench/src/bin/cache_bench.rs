//! Cold-then-warm benchmark of the content-addressed analysis cache.
//!
//! Runs the full synthetic corpus through
//! [`firmres_cache::analyze_corpus_incremental`] twice against a fresh
//! store: the cold pass analyzes and populates, the warm pass must serve
//! every device from disk. Verifies the warm results are byte-identical
//! to the cold ones (via the cache codec itself) and writes the timings
//! to `BENCH_cache.json`.
//!
//! Usage: `cargo run --release -p firmres-bench --bin cache_bench [out.json]`
//!
//! Exits non-zero when the warm pass misses, diverges from the cold
//! results, or fails to beat it by at least 5× (the incremental-driver
//! acceptance floor). Both passes are timed as the best of
//! [`REPS`] runs — single-shot wall clock on a shared container is
//! noisy enough to trip the floor spuriously.

use firmres::{AnalysisConfig, CollectingObserver, FirmwareAnalysis};
use firmres_cache::{analyze_corpus_incremental, codec, AnalysisCache, CacheStats};
use firmres_corpus::generate_corpus;
use std::time::Instant;

/// The exact bytes the cache would persist for `analysis` — the
/// strictest observable-equality check available.
fn encoded(analysis: &FirmwareAnalysis) -> Vec<u8> {
    let mut out = Vec::new();
    codec::put_analysis(&mut out, analysis);
    out
}

/// Timing repetitions per pass; the minimum wall clock is reported.
const REPS: usize = 3;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_cache.json".to_string());

    eprintln!("generating corpus…");
    let corpus = generate_corpus(7);
    let images: Vec<_> = corpus.iter().map(|d| &d.firmware).collect();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let config = AnalysisConfig::default();

    let base = std::env::temp_dir().join(format!("firmres-cache-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    // Each cold rep populates a fresh store; the last one is kept for the
    // warm reps (every rep writes identical bytes, so which one survives
    // is immaterial).
    eprintln!("cold pass: {} devices on {threads} threads…", images.len());
    let mut cold_ms = f64::INFINITY;
    let mut cold = None;
    let mut dir = base.join("rep0");
    for rep in 0..REPS {
        dir = base.join(format!("rep{rep}"));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = AnalysisCache::new(&dir);
        let t = Instant::now();
        let mut obs = CollectingObserver::default();
        let run = analyze_corpus_incremental(&images, None, &config, threads, &cache, &mut obs);
        cold_ms = cold_ms.min(t.elapsed().as_secs_f64() * 1e3);
        cold = Some(run);
    }
    let cold = cold.expect("at least one cold rep");
    let cache = AnalysisCache::new(&dir);

    eprintln!("warm pass…");
    let mut warm_ms = f64::INFINITY;
    let mut warm = None;
    for _ in 0..REPS {
        let t = Instant::now();
        let mut obs = CollectingObserver::default();
        let run = analyze_corpus_incremental(&images, None, &config, threads, &cache, &mut obs);
        warm_ms = warm_ms.min(t.elapsed().as_secs_f64() * 1e3);
        warm = Some(run);
    }
    let warm = warm.expect("at least one warm rep");
    let _ = std::fs::remove_dir_all(&base);

    let mut failures = 0;
    if warm.stats.misses > 0 {
        eprintln!("FAIL: warm pass missed {} device(s)", warm.stats.misses);
        failures += 1;
    }
    for (i, (c, w)) in cold.analyses.iter().zip(&warm.analyses).enumerate() {
        if encoded(c) != encoded(w) {
            eprintln!(
                "FAIL: device {} warm result differs from cold",
                corpus[i].spec.id
            );
            failures += 1;
        }
    }
    let speedup = cold_ms / warm_ms.max(1e-9);
    if speedup < 5.0 {
        eprintln!("FAIL: warm speedup {speedup:.1}x is below the 5x floor");
        failures += 1;
    }

    let json = render_json(
        images.len(),
        threads,
        cold_ms,
        warm_ms,
        speedup,
        &cold.stats,
        &warm.stats,
    );
    std::fs::write(&out_path, &json).expect("write benchmark output");

    println!(
        "cache bench: {} devices | cold {:.1} ms | warm {:.1} ms | {:.1}x | warm hit rate {:.0}%",
        images.len(),
        cold_ms,
        warm_ms,
        speedup,
        warm.stats.hit_rate() * 100.0
    );
    println!("wrote {out_path}");
    if failures > 0 {
        std::process::exit(1);
    }
}

fn render_json(
    devices: usize,
    threads: usize,
    cold_ms: f64,
    warm_ms: f64,
    speedup: f64,
    cold: &CacheStats,
    warm: &CacheStats,
) -> String {
    format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"analysis_cache_cold_vs_warm\",\n",
            "  \"devices\": {devices},\n",
            "  \"threads\": {threads},\n",
            "  \"cold_ms\": {cold_ms:.3},\n",
            "  \"warm_ms\": {warm_ms:.3},\n",
            "  \"speedup\": {speedup:.2},\n",
            "  \"cold\": {{ \"hits\": {ch}, \"misses\": {cm}, \"bytes_written\": {cw} }},\n",
            "  \"warm\": {{ \"hits\": {wh}, \"misses\": {wm}, \"bytes_read\": {wr}, \"hit_rate\": {wrate:.4} }}\n",
            "}}\n"
        ),
        devices = devices,
        threads = threads,
        cold_ms = cold_ms,
        warm_ms = warm_ms,
        speedup = speedup,
        ch = cold.hits,
        cm = cold.misses,
        cw = cold.bytes_written,
        wh = warm.hits,
        wm = warm.misses,
        wr = warm.bytes_read,
        wrate = warm.hit_rate(),
    )
}
