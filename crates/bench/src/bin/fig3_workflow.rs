//! Demonstrates paper Fig. 3: the FIRMRES workflow, stage by stage, on
//! one device (the Teltonika RUT241 carrying the CVE-2023-2586 pattern).
//!
//! Usage: `cargo run -p firmres-bench --bin fig3_workflow`

use firmres::{analyze_firmware, extract_endpoint, fill_message, probe_cloud, AnalysisConfig};
use firmres_corpus::generate_device;

fn main() {
    println!("Fig. 3 — FIRMRES workflow on device 11 (Teltonika RUT241)\n");
    let dev = generate_device(11, 7);
    println!(
        "input: firmware image of {} {} ({} files, {} executables)",
        dev.spec.vendor,
        dev.spec.model,
        dev.firmware.file_count(),
        dev.firmware.executables().count()
    );

    let analysis = analyze_firmware(&dev.firmware, None, &AnalysisConfig::default());

    println!("\n[1] pinpointing device-cloud executables");
    println!("    → {}", analysis.executable.as_deref().unwrap_or("none"));
    for h in &analysis.handlers {
        println!(
            "      async handler `{}` (P_f = {:.2})",
            h.handler_name, h.score
        );
    }

    println!("\n[2] identifying message fields (backward taint)");
    let fields: usize = analysis.identified().map(|m| m.slices.len()).sum();
    println!(
        "    → {} messages, {} taint-identified fields",
        analysis.identified().count(),
        fields
    );

    println!("\n[3] recovering field semantics");
    let reg = analysis
        .identified()
        .find(|m| m.function == "snd_00")
        .expect("registration message");
    for f in &reg.message.fields {
        println!(
            "      {:<12} {:<32} → {}",
            f.key.as_deref().unwrap_or("_"),
            f.origin.to_string(),
            f.semantic.as_deref().unwrap_or("?")
        );
    }

    println!("\n[4] concatenating message fields");
    println!("      {}", reg.message);

    println!("\n[5] message form check");
    for flaw in &reg.flaws {
        println!("      ALARM: {flaw}");
    }

    println!("\n[6] probing the vendor cloud (manual verification, automated here)");
    let filled = fill_message(&reg.message, &dev.firmware);
    println!(
        "      forged request to {} with {:?}",
        extract_endpoint(&reg.message).unwrap_or_default(),
        filled.params.keys().collect::<Vec<_>>()
    );
    let outcome = probe_cloud(&dev.cloud, &filled);
    println!("      cloud says: {}", outcome.status);
    for (k, v) in &outcome.leaked {
        println!("      LEAKED {k} = {v}");
    }
    assert!(
        outcome
            .leaked
            .iter()
            .any(|(_, v)| v == &dev.identity.secret),
        "the device certificate leaks, as in CVE-2023-2586"
    );
    println!("\nresult: registration with serial+MAC alone returns the device certificate —");
    println!("the known CVE-2023-2586 pattern, rediscovered end-to-end from the firmware.");
}
